//! Dump every registered application's XSPCL document to a directory.
//!
//! CI feeds the result to `xspclc analyze` to prove the shipped specs are
//! diagnostic-free; it is also a convenient way to eyeball the generated
//! XML for all eleven applications.
//!
//! ```sh
//! cargo run --example dump_specs -- target/specs
//! ```

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/specs".to_string());
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).expect("create output dir");

    for (label, xml) in apps::verify::app_specs() {
        let file = format!(
            "{}.xml",
            label
                .to_lowercase()
                .replace(|c: char| !c.is_ascii_alphanumeric(), "_")
        );
        let path = dir.join(file);
        std::fs::write(&path, &xml).expect("write spec");
        println!("wrote {} ({} bytes)", path.display(), xml.len());
    }
}
