//! Dynamic reconfiguration: the paper's PiP-12 and Blur-35 scenarios.
//!
//! An injector component sends asynchronous events to a manager's queue;
//! the manager toggles option subgraphs (PiP: the whole second-picture
//! chain) or broadcasts reconfiguration requests to live components
//! (Blur: the kernel size), quiescing the pipeline for each change.
//!
//! ```sh
//! cargo run --release --example reconfiguration
//! ```

use apps::blur::{baseline_ksize, build as build_blur, sequential as blur_seq, BlurConfig};
use apps::pip::{build as build_pip, PipConfig};
use hinch::engine::{run_native, RunConfig};
use hinch::meter::NullMeter;

fn main() {
    pip12();
    blur35();
}

/// PiP-12: the second picture appears and disappears every 8 frames.
fn pip12() {
    let cfg = PipConfig {
        reconfig_every: Some(8),
        ..PipConfig::small(2)
    };
    let app = build_pip(&cfg).expect("compiles");
    let frames = 32u64;
    let report = run_native(&app.elaborated.spec, &RunConfig::new(frames).workers(3)).unwrap();
    println!(
        "PiP-12: {} frames, {} reconfigurations (toggle every 8)",
        report.iterations, report.reconfigs
    );

    // The second picture overlays the top-right corner. Classify each
    // output frame by comparing against the one-picture reference: frames
    // where they differ have the second picture visible.
    let one_pip = PipConfig {
        pips: 1,
        reconfig_every: None,
        ..cfg.clone()
    };
    let mut meter = NullMeter;
    let reference = apps::pip::sequential(&one_pip, &app.assets, frames, &mut meter);
    let y_frames = app.assets.captured("out", 0);
    let visibility: String = y_frames
        .iter()
        .enumerate()
        .map(|(i, f)| if f == &reference[i][0] { '.' } else { '2' })
        .collect();
    println!("  second picture visible per frame: {visibility}");
    assert!(
        visibility.contains('2') && visibility.contains('.'),
        "both states must occur"
    );
}

/// Blur-35: the Gaussian kernel switches 3x3 ↔ 5x5 every 6 frames via a
/// broadcast reconfiguration request.
fn blur35() {
    let cfg = BlurConfig {
        reconfig_every: Some(6),
        ..BlurConfig::small(3)
    };
    let app = build_blur(&cfg).expect("compiles");
    let frames = 24u64;
    let report = run_native(&app.elaborated.spec, &RunConfig::new(frames).workers(3)).unwrap();
    println!(
        "Blur-35: {} frames, {} reconfigurations (kernel switch every 6)",
        report.iterations, report.reconfigs
    );

    // classify each output frame by which kernel produced it
    let got = app.assets.captured("out", 0);
    let mut meter = NullMeter;
    let want3 = blur_seq(&cfg, &app.assets, frames, |_| 3, &mut meter);
    let want5 = blur_seq(&cfg, &app.assets, frames, |_| 5, &mut meter);
    let schedule: String = got
        .iter()
        .enumerate()
        .map(|(i, f)| {
            if f == &want3[i] {
                '3'
            } else if f == &want5[i] {
                '5'
            } else {
                '?'
            }
        })
        .collect();
    println!("  kernel per frame: {schedule}");
    let intended: String = (0..frames)
        .map(|i| {
            if baseline_ksize(i, 6, 3) == 3 {
                '3'
            } else {
                '5'
            }
        })
        .collect();
    println!("  intended        : {intended}");
    assert!(
        !schedule.contains('?'),
        "every frame must match one kernel exactly"
    );
}
