//! The JPEG Picture-in-Picture pipeline and its cache story.
//!
//! Runs JPiP-1 (MJPEG decode → IDCT → down scale → blend, the paper's
//! Fig. 7) at reduced size on the simulated tile and shows *why* its
//! XSPCL version pays more than PiP's: the coefficient planes buffered in
//! streams between the decode and IDCT components miss in the cache,
//! whereas the fused sequential baseline transforms each block while it is
//! still hot (§4.1).
//!
//! ```sh
//! cargo run --release --example jpip_pipeline
//! ```

use apps::experiment::{run_baseline, run_sim, App, AppConfig};
use spacecake::Solo;

fn main() {
    let cfg = AppConfig::small(App::Jpip1).frames(12);

    // the elaborated task graph (Fig. 7)
    let built = apps::experiment::build(cfg);
    let mut classes = std::collections::BTreeMap::new();
    built.spec.visit_leaves(&mut |c| {
        *classes.entry(c.class.clone()).or_insert(0usize) += 1;
    });
    println!("JPiP-1 task graph (component specs):");
    for (class, n) in &classes {
        println!("  {n} x {class}");
    }

    // XSPCL version on one simulated core
    let sim = run_sim(cfg, 1);
    println!(
        "\nXSPCL @1 core : {:>12} cycles  ({} L1 misses, {} mem-stall cycles)",
        sim.cycles, sim.stats.l1_misses, sim.stats.mem_cycles
    );

    // fused sequential baseline on the same cache model
    let mut solo = Solo::new();
    let assets = built.assets.clone();
    let (_, seq_cycles) = solo.run(|meter| run_baseline(cfg, &assets, meter));
    let seq = solo.stats();
    println!(
        "sequential    : {:>12} cycles  ({} L1 misses, {} mem-stall cycles)",
        seq_cycles, seq.l1_misses, seq.mem_cycles
    );

    println!(
        "\noverhead: {:+.1}%  — L1 miss ratio {:.2}x, mem stalls {:.2}x (the paper's §4.1 observation)",
        (sim.cycles as f64 / seq_cycles as f64 - 1.0) * 100.0,
        sim.stats.l1_misses as f64 / seq.l1_misses.max(1) as f64,
        sim.stats.mem_cycles as f64 / seq.mem_cycles.max(1) as f64,
    );

    // and the parallel payoff
    let s4 = run_sim(cfg, 4);
    let s9 = run_sim(cfg, 9);
    println!(
        "\nscaling: 1 core {} → 4 cores {} ({:.2}x) → 9 cores {} ({:.2}x)",
        sim.cycles,
        s4.cycles,
        sim.cycles as f64 / s4.cycles as f64,
        s9.cycles,
        sim.cycles as f64 / s9.cycles as f64,
    );
}
