//! The §6 HPC future-work application: a radio-telescope spectrometer.
//!
//! Four antennas' sample streams are channelized (window + 1024-point
//! FFT, data-parallel over the spectra of each block), power-detected,
//! combined and integrated — a streaming application far from consumer
//! electronics, expressed in the same coordination language.
//!
//! ```sh
//! cargo run --release --example radio_telescope
//! ```

use apps::telescope::{build, mean_spectrum, TelescopeConfig};
use hinch::engine::{run_native, run_sim, RunConfig};
use spacecake::Machine;

fn main() {
    let cfg = TelescopeConfig::standard();
    let app = build(&cfg).expect("telescope compiles");
    println!(
        "spectrometer: {} antennas, {}-point FFT, {} spectra/block ({} component specs)",
        cfg.antennas,
        cfg.fft_size,
        cfg.spectra_per_block,
        app.elaborated.spec.leaf_count()
    );

    let blocks = 24u64;
    let report = run_native(&app.elaborated.spec, &RunConfig::new(blocks).workers(4)).unwrap();
    println!(
        "native (4 workers): {} blocks ({} spectra/antenna) in {:.2?}",
        report.iterations,
        report.iterations * cfg.spectra_per_block as u64,
        report.elapsed
    );

    // the science: where are the peaks?
    let mean = mean_spectrum(&app);
    let mut ranked: Vec<(usize, f64)> = mean.iter().cloned().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nstrongest channels (bin → normalized frequency, power):");
    for (bin, power) in ranked.iter().take(3) {
        println!(
            "  bin {:>4} → f = {:.4} fs   power {:.1}",
            bin,
            *bin as f64 / cfg.fft_size as f64,
            power
        );
    }
    for tone in &cfg.tones {
        let expected_bin = (tone.freq * cfg.fft_size as f32).round() as usize;
        assert!(
            ranked[..3]
                .iter()
                .any(|(b, _)| (*b as i64 - expected_bin as i64).abs() <= 1),
            "tone at f={} (bin {expected_bin}) must rank in the top 3",
            tone.freq
        );
    }
    println!("(both injected tones recovered)");

    // and the throughput question the paper's §6 poses: does it scale?
    println!("\nsimulated SpaceCAKE tile scaling:");
    let mut first = 0u64;
    for cores in [1usize, 3, 6, 9] {
        let app = build(&cfg).unwrap();
        app.assets.clear_captures();
        let mut m = Machine::with_cores(cores);
        let sim = run_sim(&app.elaborated.spec, &RunConfig::new(8), &mut m).unwrap();
        if cores == 1 {
            first = sim.cycles;
        }
        println!(
            "  {cores} core(s): {:>12} cycles  (speedup {:.2}x, utilization {:.0}%)",
            sim.cycles,
            first as f64 / sim.cycles as f64,
            sim.utilization() * 100.0
        );
    }
}
