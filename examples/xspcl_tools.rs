//! The XSPCL processing tool chain, programmatically.
//!
//! Writes the Blur application's XSPCL document to disk, then exercises
//! everything `xspclc` offers: checking, pretty-printing, DOT export and
//! Rust glue-code generation (the analogue of the paper's generated C
//! program).
//!
//! ```sh
//! cargo run --example xspcl_tools
//! ```

use apps::blur::{blur_xml, BlurConfig};
use xspcl::elaborate::ComponentRegistry;

fn main() {
    let xml = blur_xml(&BlurConfig::paper(5));
    let dir = std::env::temp_dir().join("xspcl-tools-demo");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("blur.xml");
    std::fs::write(&path, &xml).expect("write spec");
    println!("wrote {} ({} bytes)", path.display(), xml.len());

    // check: parse + validate + elaborate against a stub registry
    let doc = xspcl::parse_and_validate(&xml).expect("valid");
    let elaborated = xspcl::elaborate(&doc, &ComponentRegistry::stubbed()).expect("elaborates");
    println!(
        "check: {} procedures, {} queues, {} component instances",
        doc.procedures.len(),
        elaborated.queues.len(),
        elaborated.spec.leaf_count()
    );

    // format: canonical pretty-print (round-trips)
    let pretty = xspcl::codegen::to_xml(&doc);
    let reparsed = xspcl::parse_and_validate(&pretty).expect("round-trips");
    assert_eq!(pretty, xspcl::codegen::to_xml(&reparsed));
    println!("format: {} bytes canonical form, round-trips", pretty.len());

    // dot: the task graph for documentation
    let dot = xspcl::codegen::to_dot(&elaborated.spec);
    let dot_path = dir.join("blur.dot");
    std::fs::write(&dot_path, &dot).expect("write dot");
    println!(
        "dot: wrote {} ({} graph lines)",
        dot_path.display(),
        dot.lines().count()
    );

    // rust: generated glue source
    let queues: Vec<String> = elaborated.queues.keys().cloned().collect();
    let glue = xspcl::codegen::emit_rust(&elaborated.spec, &queues);
    let glue_path = dir.join("blur_glue.rs");
    std::fs::write(&glue_path, &glue).expect("write glue");
    println!(
        "rust: wrote {} ({} lines of initialization-time glue)",
        glue_path.display(),
        glue.lines().count()
    );
    println!("\n--- first lines of the generated glue ---");
    for line in glue.lines().take(12) {
        println!("{line}");
    }
}
