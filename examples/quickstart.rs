//! Quickstart: write an XSPCL application from scratch and run it.
//!
//! Builds the paper's Fig. 2/3 example — a down scaler in a sliced group,
//! wrapped in a procedure — wires it to components, and runs it on both
//! engines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hinch::engine::{run_native, run_sim, RunConfig};
use spacecake::Machine;
use std::sync::Arc;
use xspcl::elaborate::ComponentRegistry;

// The coordination side: the application graph in XSPCL. One source, a
// down scaler replicated over 4 data-parallel slices (the paper's Fig. 2
// component inside a Fig. 4 parallel group, abstracted behind a Fig. 3
// procedure), and a sink.
const APP: &str = r#"
<xspcl>
  <procedure name="scale_stage">
    <formal name="factor" default="2"/>
    <formal name="slices" default="4"/>
    <formalstream name="big"/><formalstream name="small"/>
    <body>
      <parallel shape="slice" n="$slices" name="sc">
        <parblock>
          <component name="scaler" class="downscale">
            <in port="input" stream="big"/>
            <out port="output" stream="small"/>
            <param name="factor" value="$factor"/>
          </component>
        </parblock>
      </parallel>
    </body>
  </procedure>
  <procedure name="main">
    <stream name="frames"/><stream name="scaled"/>
    <body>
      <component name="camera" class="plane_source">
        <out port="output" stream="frames"/>
        <param name="file" value="input"/>
        <param name="field" value="0"/>
      </component>
      <call procedure="scale_stage">
        <bind formal="big" stream="frames"/>
        <bind formal="small" stream="scaled"/>
        <param name="factor" value="4"/>
      </call>
      <component name="display" class="frame_sink">
        <in port="y" stream="scaled"/>
        <param name="capture" value="out"/>
        <param name="ports" value="1"/>
      </component>
    </body>
  </procedure>
</xspcl>
"#;

fn main() {
    // The component side: bind the classes the document names. The `apps`
    // crate ships a full registry; here we use it with a tiny test video.
    let assets = apps::registry::AppAssets::new();
    assets.add_raw(
        "input",
        Arc::new(media::video::RawVideo::generate(
            media::video::VideoSpec::new(128, 96, 4, 1234),
        )),
    );
    assets.capture_set("out", 1);
    let registry: ComponentRegistry = apps::registry::registry(&assets);

    // Compile: parse → validate → elaborate (all initialization-time).
    let elaborated = xspcl::compile(APP, &registry).expect("valid XSPCL");
    println!(
        "compiled: {} component instances (before slice expansion)",
        elaborated.spec.leaf_count()
    );

    // Run 12 frames on 2 native worker threads ...
    let report = run_native(&elaborated.spec, &RunConfig::new(12).workers(2)).unwrap();
    println!(
        "native: {} iterations in {:.2?} ({} jobs)",
        report.iterations, report.elapsed, report.jobs_executed
    );
    let frames = assets.captured("out", 0);
    println!(
        "captured {} frames of {}x{} pixels",
        frames.len(),
        128 / 4,
        96 / 4
    );

    // ... and the same 12 frames on a simulated 4-core SpaceCAKE tile.
    assets.clear_captures();
    let elaborated = xspcl::compile(APP, &registry).expect("valid XSPCL");
    let mut machine = Machine::with_cores(4);
    let sim = run_sim(&elaborated.spec, &RunConfig::new(12), &mut machine).unwrap();
    println!(
        "simulated: {} cycles on 4 cores (utilization {:.0}%), {} L1 misses",
        sim.cycles,
        sim.utilization() * 100.0,
        sim.stats.l1_misses
    );

    // Outputs are engine-independent: verify against a direct computation.
    let frames_sim = assets.captured("out", 0);
    assert_eq!(
        frames, frames_sim,
        "both engines must produce identical pixels"
    );
    println!("ok: native and simulated outputs are bit-identical");
}
