//! The Picture-in-Picture application end-to-end.
//!
//! Builds the paper's PiP-2 (two pictures blended into a background) at a
//! reduced size, runs it on the native engine and on simulated tiles with
//! 1 and 4 cores, and verifies the pipeline output against the
//! hand-written fused sequential baseline, pixel for pixel.
//!
//! ```sh
//! cargo run --release --example pip_demo
//! ```

use apps::pip::{build, sequential, PipConfig};
use apps::verify::assert_frames_equal;
use hinch::engine::{run_native, run_sim, RunConfig};
use hinch::meter::NullMeter;
use spacecake::Machine;

fn main() {
    let frames = 24u64;
    let cfg = PipConfig {
        width: 240,
        height: 192,
        slices: 6,
        ..PipConfig::small(2)
    };
    let app = build(&cfg).expect("PiP compiles");
    println!("PiP-2 XSPCL document: {} bytes", app.xml.len());
    println!("components: {} specs", app.elaborated.spec.leaf_count());

    // native run
    let report = run_native(&app.elaborated.spec, &RunConfig::new(frames).workers(4)).unwrap();
    println!(
        "native (4 workers): {} frames in {:.2?}",
        report.iterations, report.elapsed
    );

    // verify against the fused sequential baseline
    let mut meter = NullMeter;
    let want = sequential(&cfg, &app.assets, frames, &mut meter);
    for field in 0..3 {
        let got = app.assets.captured("out", field);
        let reference: Vec<Vec<u8>> = want.iter().map(|f| f[field].clone()).collect();
        assert_frames_equal(&got, &reference, &format!("field {field}"));
    }
    println!(
        "ok: all {} frames bit-identical to the fused sequential baseline",
        frames
    );

    // simulated speedup
    let mut cycles = Vec::new();
    for cores in [1usize, 4] {
        let app = build(&cfg).unwrap();
        let mut machine = Machine::with_cores(cores);
        let sim = run_sim(&app.elaborated.spec, &RunConfig::new(frames), &mut machine).unwrap();
        println!(
            "simulated {cores} core(s): {} cycles ({:.2} Mcycles/frame)",
            sim.cycles,
            sim.cycles as f64 / 1e6 / frames as f64
        );
        cycles.push(sim.cycles);
    }
    println!(
        "speedup 1→4 cores: {:.2}x",
        cycles[0] as f64 / cycles[1] as f64
    );
}
