//! Deadline verification with the SPC predictor (§2: "performance
//! prediction can be used to verify that the application meets its
//! deadlines"; §6 lists WCET estimation by graph traversal as future
//! work).
//!
//! Question: on a 450 MHz tile, how many cores does PiP-2 need to sustain
//! 25 frames per second? Calibrate the predictor from one single-core
//! simulation, then answer analytically — no further simulation.
//!
//! ```sh
//! cargo run --release --example deadline_check
//! ```

use apps::experiment::{build, run_sim, App, AppConfig};
use predict::{predict, CostDb, PredictConfig};

const CLOCK_HZ: f64 = 450e6;
const TARGET_FPS: f64 = 25.0;

fn main() {
    let cfg = AppConfig::paper(App::Pip2).frames(8);

    // one calibration run on a single simulated core
    let profile = run_sim(cfg, 1);
    let mut db = CostDb::new();
    db.absorb_profile(&profile.per_node);
    println!(
        "calibrated from a 1-core profile: {} node measurements, {} cycles total",
        profile.per_node.len(),
        profile.cycles
    );

    let built = build(cfg);
    let budget = CLOCK_HZ / TARGET_FPS; // cycles per frame
    println!(
        "\nframe budget at {:.0} MHz / {} fps: {:.2} Mcycles",
        CLOCK_HZ / 1e6,
        TARGET_FPS,
        budget / 1e6
    );
    println!(
        "\n{:<7} {:>14} {:>14} {:>9}",
        "cores", "period (Mcyc)", "fps @450MHz", "meets?"
    );
    let mut needed = None;
    for cores in 1..=9 {
        let mut pcfg = PredictConfig::new(cores, cfg.frames);
        pcfg.overhead.job_base = 0; // folded into the measured means
        let p = predict(&built.spec, &db, &pcfg);
        let fps = CLOCK_HZ / p.period;
        let ok = p.meets_deadline(budget);
        println!(
            "{:<7} {:>14.2} {:>14.1} {:>9}",
            cores,
            p.period / 1e6,
            fps,
            if ok { "yes" } else { "no" }
        );
        if ok && needed.is_none() {
            needed = Some(cores);
        }
    }
    match needed {
        Some(n) => {
            println!("\n→ {n} core(s) suffice for {TARGET_FPS} fps.");
            // cross-check the analytical answer against the simulator
            let sim = run_sim(cfg, n);
            let sim_period = sim.cycles as f64 / sim.iterations as f64;
            println!(
                "   simulator check at {n} core(s): {:.2} Mcycles/frame ({:.1} fps)",
                sim_period / 1e6,
                CLOCK_HZ / sim_period
            );
        }
        None => println!("\n→ not sustainable on this tile; reduce work or raise the clock."),
    }
}
