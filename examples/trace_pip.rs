//! Flight-recorder demo: trace PiP on 4 simulated cores.
//!
//! Runs the paper's PiP-1 (reduced size) on the simulation engine with a
//! [`hinch::trace::Recorder`] attached, then exports the trace three ways:
//!
//! * `pip-trace.json` — Chrome-trace format; open with Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing` to see the per-core
//!   Gantt chart, iteration admission/retirement marks and stream
//!   occupancy counters;
//! * `pip-trace.csv` — one row per event, for ad-hoc analysis;
//! * the per-core utilization summary and the top-3 bottleneck
//!   components from the `insight` critical-path analysis, printed
//!   below.
//!
//! ```sh
//! cargo run --release --example trace_pip
//! ```

use apps::experiment::{run_sim_traced, App, AppConfig};
use hinch::trace::export::{chrome_trace_json, csv, utilization_summary};
use hinch::trace::{check_invariants, TraceEvent};

fn main() {
    let cores = 4;
    let cfg = AppConfig::small(App::Pip1).frames(16);
    println!(
        "tracing PiP-1: {} frames on {cores} simulated cores...",
        cfg.frames
    );
    let (report, recorder) = run_sim_traced(cfg, cores);

    let events = recorder.events();
    check_invariants(&events).expect("well-formed trace");
    let spans = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::JobSpan { .. }))
        .count();
    println!(
        "{} events ({spans} job spans) over {} cycles, {} iterations",
        events.len(),
        report.cycles,
        report.iterations
    );

    std::fs::write(
        "pip-trace.json",
        chrome_trace_json(&events, recorder.clock()),
    )
    .expect("write pip-trace.json");
    std::fs::write("pip-trace.csv", csv(&events)).expect("write pip-trace.csv");
    println!("wrote pip-trace.json (Perfetto / chrome://tracing) and pip-trace.csv");
    println!();
    println!("{}", utilization_summary(&events, recorder.clock()));

    // Critical-path analysis: which components bound the makespan?
    let insight = insight::analyze(&events, recorder.clock());
    let cp = &insight.critical_path;
    println!(
        "critical path: {} cycles over {} steps (busy {} + wait {})",
        cp.busy + cp.wait,
        cp.steps.len(),
        cp.busy,
        cp.wait
    );
    println!("top bottleneck components (by critical-path share):");
    for (label, stats) in insight.bottlenecks().iter().take(3) {
        println!(
            "  {label:<32} {:>4} path step(s), {:>8} cycles on the path, {:>8} busy total",
            stats.cp_steps, stats.cp_busy, stats.busy
        );
    }
    println!("(full report: cargo run -p insight --bin hinch-insight -- --app pip1)");
}
