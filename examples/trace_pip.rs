//! Flight-recorder demo: trace PiP on 4 simulated cores.
//!
//! Runs the paper's PiP-1 (reduced size) on the simulation engine with a
//! [`hinch::trace::Recorder`] attached, then exports the trace three ways:
//!
//! * `pip-trace.json` — Chrome-trace format; open with Perfetto
//!   (<https://ui.perfetto.dev>) or `chrome://tracing` to see the per-core
//!   Gantt chart, iteration admission/retirement marks and stream
//!   occupancy counters;
//! * `pip-trace.csv` — one row per event, for ad-hoc analysis;
//! * the per-core utilization summary, printed below.
//!
//! ```sh
//! cargo run --release --example trace_pip
//! ```

use apps::experiment::{run_sim_traced, App, AppConfig};
use hinch::trace::export::{chrome_trace_json, csv, utilization_summary};
use hinch::trace::{check_invariants, TraceEvent};

fn main() {
    let cores = 4;
    let cfg = AppConfig::small(App::Pip1).frames(16);
    println!(
        "tracing PiP-1: {} frames on {cores} simulated cores...",
        cfg.frames
    );
    let (report, recorder) = run_sim_traced(cfg, cores);

    let events = recorder.events();
    check_invariants(&events).expect("well-formed trace");
    let spans = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::JobSpan { .. }))
        .count();
    println!(
        "{} events ({spans} job spans) over {} cycles, {} iterations",
        events.len(),
        report.cycles,
        report.iterations
    );

    std::fs::write(
        "pip-trace.json",
        chrome_trace_json(&events, recorder.clock()),
    )
    .expect("write pip-trace.json");
    std::fs::write("pip-trace.csv", csv(&events)).expect("write pip-trace.csv");
    println!("wrote pip-trace.json (Perfetto / chrome://tracing) and pip-trace.csv");
    println!();
    println!("{}", utilization_summary(&events, recorder.clock()));
}
