//! The paper's §1 motivating scenario: multiple compressed video streams
//! on one screen.
//!
//! Four MJPEG streams are decoded, scaled and composed into quadrants —
//! an application assembled purely as a new XSPCL document over the
//! existing component classes. Runs natively and on the simulated tile,
//! and prints a per-class cycle profile (who eats the cycles?).
//!
//! ```sh
//! cargo run --release --example video_wall
//! ```

use apps::mosaic::{build, MosaicConfig};
use hinch::engine::{run_native, run_sim, RunConfig};
use spacecake::Machine;

fn main() {
    let cfg = MosaicConfig {
        width: 256,
        height: 128,
        ..MosaicConfig::small(4)
    };
    let app = build(&cfg).expect("mosaic compiles");
    println!(
        "video wall: {} tiles of {}x{} → one {}x{} screen ({} component specs)",
        cfg.tiles,
        cfg.width,
        cfg.height,
        cfg.width,
        cfg.height,
        app.elaborated.spec.leaf_count()
    );

    let frames = 12u64;
    let report = run_native(&app.elaborated.spec, &RunConfig::new(frames).workers(4)).unwrap();
    println!(
        "native (4 workers): {} frames in {:.2?}",
        report.iterations, report.elapsed
    );

    // simulated run with a per-class cycle profile
    let app = build(&cfg).unwrap();
    let mut machine = Machine::with_cores(6);
    let sim = run_sim(&app.elaborated.spec, &RunConfig::new(frames), &mut machine).unwrap();
    println!(
        "simulated (6 cores): {} cycles, utilization {:.0}%",
        sim.cycles,
        sim.utilization() * 100.0
    );

    println!("\ncycle profile by component (top 8):");
    let profile = sim.profile_by(|label| {
        // strip scopes and copy suffixes: "main/jpeg_in#1/decode#4" → "decode"
        let last = label.rsplit('/').next().unwrap_or(label);
        last.split(['#', '.']).next().unwrap_or(last).to_string()
    });
    let total: u64 = profile.iter().map(|(_, p)| p.cycles).sum();
    for (name, p) in profile.iter().take(8) {
        println!(
            "  {:<12} {:>12} cycles ({:>4.1}%)  {:>6} jobs",
            name,
            p.cycles,
            p.cycles as f64 / total as f64 * 100.0,
            p.jobs
        );
    }

    let frames_out = app.assets.captured("out", 0);
    println!("\ncaptured {} composed frames", frames_out.len());
    assert_eq!(frames_out.len(), frames as usize);
}
