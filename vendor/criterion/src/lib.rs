//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Provides the `criterion_group!`/`criterion_main!` harness, benchmark
//! groups, and a [`Bencher`] that reports a mean ns/iter from a short
//! warm-up + fixed measurement window. No statistics, plots, or baseline
//! comparison — just honest wall-clock means printed to stdout, so
//! `cargo bench` works without network access.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Units processed per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// Drives the closure under measurement.
pub struct Bencher {
    /// (total elapsed, total iterations) accumulated by `iter`.
    measured: Option<(Duration, u64)>,
    measurement_time: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up and estimate the per-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let target = (self.measurement_time.as_secs_f64() / per_iter.max(1e-9)).ceil();
        let iters = (target as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one(
    group: Option<&str>,
    id: &BenchmarkId,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        measured: None,
        measurement_time,
    };
    f(&mut b);
    let full_name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match b.measured {
        Some((elapsed, iters)) => {
            let ns = elapsed.as_secs_f64() * 1e9 / iters as f64;
            let mut line = format!("{full_name:<50} {:>12}/iter", human_time(ns));
            if let Some(t) = throughput {
                let per_sec = match t {
                    Throughput::Elements(n) => format!("{:.1} Melem/s", n as f64 / ns * 1e3),
                    Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                        format!("{:.1} MiB/s", n as f64 / ns * 1e9 / (1 << 20) as f64)
                    }
                };
                line.push_str(&format!("  ({per_sec})"));
            }
            println!("{line}");
        }
        None => println!("{full_name:<50} (no measurement)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            &id.into_benchmark_id(),
            self.throughput,
            self.criterion.measurement_time,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            Some(&self.name),
            &id.into_benchmark_id(),
            self.throughput,
            self.criterion.measurement_time,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            None,
            &id.into_benchmark_id(),
            None,
            self.measurement_time,
            &mut f,
        );
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("unit");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
