//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! A sampling-only property tester: each `#[test]` inside a [`proptest!`]
//! block runs `ProptestConfig::cases` times with inputs drawn from the
//! given strategies, seeded deterministically per (test name, case index)
//! so failures reproduce. There is no shrinking — on failure the panic
//! message carries the case number and the sampled inputs instead.
//!
//! Supported strategy surface: integer ranges, a regex-subset string
//! strategy on `&str` (character classes with `{n,m}`/`{n}`/`*`/`+`/`?`
//! quantifiers), `Just`, tuples, `prop_map`, `prop_recursive`,
//! `collection::vec`, `bool::ANY`, `bool::weighted`, `prop_oneof!`,
//! and boxed strategies.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "empty size range for collection::vec"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly random booleans (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// `true` with probability `p`.
    #[derive(Debug, Clone, Copy)]
    pub struct Weighted(f64);

    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "weight must be a probability");
        Weighted(p)
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.f64() < self.0
        }
    }
}

/// Declare property tests. Mirrors `proptest!`'s common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0usize..100, flip in proptest::bool::ANY) {
///         prop_assert!(x < 100 || flip);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        #[test]
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| { $body })
                );
                if let Err(payload) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs: {}",
                        __case + 1, config.cases, stringify!($name), __inputs
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

/// Assert within a property body (no shrinking — plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
