//! Strategies: deterministic samplers for test inputs.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A source of random values of one type. Unlike real proptest there is no
/// value tree and no shrinking; a strategy is just a seeded sampler.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(move |rng| self.sample(rng))
    }

    /// Recursive strategies: `recurse` receives a strategy for the inner
    /// level and builds the outer one. `depth` bounds the nesting; the
    /// sampler takes the leaf branch one time in four at every level
    /// (roughly mirroring proptest's size-driven decay). `desired_size`
    /// and `expected_branch_size` are accepted for signature compatibility
    /// but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            let fallback = leaf.clone();
            strat = BoxedStrategy::new(move |rng: &mut TestRng| {
                if rng.next_u64().is_multiple_of(4) {
                    fallback.sample(rng)
                } else {
                    deeper.sample(rng)
                }
            });
        }
        strat
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> BoxedStrategy<T> {
    pub(crate) fn new<F: Fn(&mut TestRng) -> T + 'static>(f: F) -> Self {
        Self(Rc::new(f))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self(options)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.usize_in(0, self.0.len());
        self.0[idx].sample(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

// ---------------------------------------------------------------------
// Regex-subset string strategy: `"[a-z][a-z0-9_]{0,8}"` etc.
// ---------------------------------------------------------------------

/// One regex atom: a set of candidate characters and a repetition range.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        '0' => '\0',
        other => other,
    }
}

/// Parse the supported regex subset into atoms. Panics on unsupported
/// syntax — a loud failure beats silently wrong test data.
fn parse_regex(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let set: Vec<char> = match c {
            '[' => {
                let mut class: Vec<char> = Vec::new();
                let mut pending: Vec<char> = Vec::new();
                loop {
                    let item = chars.next().unwrap_or_else(|| {
                        panic!("unterminated character class in regex {pattern:?}")
                    });
                    match item {
                        ']' => break,
                        '\\' => {
                            let esc = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                            pending.push(unescape(esc));
                        }
                        '-' if !pending.is_empty() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = pending.pop().expect("range start");
                            let hi = match chars.next() {
                                Some('\\') => unescape(chars.next().unwrap_or_else(|| {
                                    panic!("dangling escape in regex {pattern:?}")
                                })),
                                Some(h) => h,
                                None => panic!("unterminated range in regex {pattern:?}"),
                            };
                            assert!(lo <= hi, "inverted range {lo:?}-{hi:?} in {pattern:?}");
                            class.extend(lo..=hi);
                        }
                        other => pending.push(other),
                    }
                }
                class.extend(pending);
                assert!(
                    !class.is_empty(),
                    "empty character class in regex {pattern:?}"
                );
                class
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in regex {pattern:?}"));
                vec![unescape(esc)]
            }
            '.' => (' '..='~').collect(),
            '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex syntax {c:?} in {pattern:?}")
            }
            literal => vec![literal],
        };
        // optional quantifier
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for q in chars.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted quantifier in regex {pattern:?}");
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_regex(self);
        let mut out = String::new();
        for atom in &atoms {
            let reps = if atom.min == atom.max {
                atom.min
            } else {
                rng.usize_in(atom.min, atom.max + 1)
            };
            for _ in 0..reps {
                out.push(atom.chars[rng.usize_in(0, atom.chars.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_case("strategy_unit", 0)
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (0usize..4000).sample(&mut r);
            assert!(v < 4000);
            let w = (-32_000i32..32_000).sample(&mut r);
            assert!((-32_000..32_000).contains(&w));
        }
    }

    #[test]
    fn regex_ident_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".sample(&mut r);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn regex_class_with_escapes_and_ranges() {
        let mut r = rng();
        let mut saw_newline = false;
        for _ in 0..400 {
            let s = "[ -~<>&\"'/=\\n]{0,200}".sample(&mut r);
            assert!(s.len() <= 200);
            for c in s.chars() {
                assert!(c == '\n' || (' '..='~').contains(&c), "{c:?}");
                saw_newline |= c == '\n';
            }
        }
        assert!(saw_newline, "newline escape should be reachable");
    }

    #[test]
    fn oneof_union_hits_every_arm() {
        let u = crate::prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(u.sample(&mut r) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_strategy_terminates_and_varies() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 1..4).prop_map(T::Node)
        });
        let mut r = rng();
        let mut max_depth = 0;
        for _ in 0..200 {
            let t = strat.sample(&mut r);
            max_depth = max_depth.max(depth(&t));
        }
        assert!(max_depth >= 1, "recursion should produce nested nodes");
        assert!(max_depth <= 3, "depth bound violated: {max_depth}");
    }
}
