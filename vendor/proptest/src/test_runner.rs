//! Deterministic per-case RNG and run configuration.

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// SplitMix64 generator seeded from (test name, case index): every case
/// draws a reproducible input stream, independent of execution order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e3779b97f4a7c15);
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
