//! Offline stand-in for the subset of `parking_lot` this workspace uses.
//!
//! The sandboxed build environment has no access to crates.io, so the
//! workspace vendors the API surface it needs on top of `std::sync`. The
//! semantics mirror `parking_lot`'s: locks are not poisoned by panics
//! (a panic while holding a guard leaves the data accessible), `lock()`
//! returns the guard directly, and `Condvar::wait` takes the guard by
//! mutable reference.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual exclusion primitive (no poisoning, guard returned directly).
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`]. The `Option` indirection lets [`Condvar::wait`]
/// temporarily hand the underlying std guard back to the condition variable.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Condition variable compatible with [`MutexGuard`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Reader-writer lock (no poisoning).
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner: guard }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner: guard }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let mc = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = mc.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pc = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pc;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 14);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
