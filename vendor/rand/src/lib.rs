//! Offline stand-in for the subset of `rand` this workspace uses.
//!
//! Deterministic, seedable generation only — `StdRng::seed_from_u64` plus
//! `Rng::gen_range` over integer and float ranges. The generator is
//! xoshiro256++ seeded via SplitMix64; sequences are stable across runs
//! and platforms (which the workspace's reproducibility tests rely on),
//! though they intentionally do *not* match upstream `rand`'s streams.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        sample_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A range that can produce one uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn sample_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (sample_f64(rng) as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                start + (sample_f64(rng) as $t) * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // avoid the degenerate all-zero state
            if s == [0; 4] {
                s[0] = 0x9e3779b97f4a7c15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            self.s = [s0n, s1n, s2n, s3n.rotate_left(45)];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(7);
        let other: Vec<u64> = (0..16).map(|_| d.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-9i32..=9);
            assert!((-9..=9).contains(&v));
            let u = rng.gen_range(0u8..=255);
            let _ = u; // full domain, trivially in range
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let n = rng.gen_range(3usize..7);
            assert!((3..7).contains(&n));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..3)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }
}
