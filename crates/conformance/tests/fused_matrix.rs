//! Differential matrix with tile-granular decode+IDCT fusion enabled.
//!
//! Two claims, checked literally:
//!
//! 1. the fused JPiP graphs are schedule-independent like any static
//!    app — every sim cell (seeded policies included) and every native
//!    cell from 2 to 8 workers stays FNV-1a fingerprint-equal to the
//!    app's `run_reference` oracle;
//! 2. fusion is output-invariant — the fused oracle itself is
//!    fingerprint-equal to the *unfused* app's oracle, so the whole
//!    fused matrix transitively agrees with the unfused pipeline.

use apps::experiment::App;
use conformance::{corpus, run_matrix, ConfApp, MatrixConfig};

#[test]
fn fused_jpip_matrix_is_fingerprint_equal_to_reference() {
    let cfg = MatrixConfig {
        apps: vec![ConfApp::Fused(App::Jpip1), ConfApp::Fused(App::Jpip2)],
        cores: vec![1, 4],
        depths: vec![1, 5],
        seeds: 4,
        base_seed: 0xC0FFEE,
        frames: 12,
        workers: vec![2, 8],
        policy_override: None,
    };
    let summary = run_matrix(&cfg);
    let failures: Vec<String> = summary.divergences().map(|d| format!("{d:?}")).collect();
    assert!(failures.is_empty(), "fused matrix diverged:\n{failures:#?}");
    for app in &summary.apps {
        // Static fused apps: one digest across the whole schedule sweep.
        assert_eq!(
            app.sim_digests.len(),
            1,
            "{}: schedule-dependent output",
            app.app
        );
        assert!(app.sim_runs > 0 && app.native_runs > 0);
    }
}

#[test]
fn fused_oracle_matches_unfused_oracle() {
    for (fused, unfused) in [
        (ConfApp::Fused(App::Jpip1), ConfApp::Experiment(App::Jpip1)),
        (ConfApp::Fused(App::Jpip2), ConfApp::Experiment(App::Jpip2)),
    ] {
        let frames = 6;
        let f = corpus::run_reference(fused, frames).expect("fused reference");
        let u = corpus::run_reference(unfused, frames).expect("unfused reference");
        assert_eq!(
            f.digest(),
            u.digest(),
            "{}: fusion changed the output fingerprint",
            fused.id()
        );
    }
}
