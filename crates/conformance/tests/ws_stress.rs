//! Work-stealing stress layer.
//!
//! The native engine's `SchedPolicy::Default` path (hinch's work-stealing
//! runtime: per-worker deques, atomic dependency window, stream slot
//! rings) gets hammered with random XA-clean SPC graphs at 2–8 worker
//! threads and cross-checked against the sequential reference executor.
//! Unlike the metamorphic layer — which explores *seeded* schedules on
//! the centralized path — every run here is genuinely racy: thread
//! preemption decides the schedule, so each proptest case explores a
//! fresh interleaving of steals, parks and retirements.
//!
//! Failures reproduce from the printed `(shape, iters, depth, workers)`
//! sample (the vendored proptest runner seeds deterministically per test
//! name and case index); the interleaving itself is not replayable, which
//! is exactly why the checked property must be schedule-independent:
//! identical per-iteration outputs, identical iteration count, and no
//! lease conflicts.

use conformance::randspec::{build_app, shape_strategy};
use hinch::engine::{run_native, run_reference, RunConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn work_stealing_matches_reference_at_any_worker_count(
        shape in shape_strategy(),
        iters in 1u64..10,
        depth in 1usize..6,
        workers in 2usize..9,
    ) {
        // The oracle: program order, one iteration in flight.
        let (spec, out) = build_app(&shape);
        let oracle = run_reference(&spec, &RunConfig::new(iters))
            .unwrap_or_else(|e| panic!("reference run failed: {e}"));
        let want = out.lock().clone();
        prop_assert_eq!(oracle.iterations, iters);

        // The work-stealing run (Default policy dispatches to it).
        let (spec, out) = build_app(&shape);
        let cfg = RunConfig::new(iters).workers(workers).pipeline_depth(depth);
        let report = run_native(&spec, &cfg).unwrap_or_else(|e| {
            panic!("work-stealing run failed (workers={workers} depth={depth}): {e}")
        });
        prop_assert_eq!(
            report.iterations, iters,
            "work-stealing retired a wrong iteration count (workers={}, depth={})",
            workers, depth
        );
        prop_assert_eq!(
            &*out.lock(),
            &want,
            "work-stealing diverged from the oracle (workers={}, depth={})",
            workers,
            depth
        );
    }
}
