//! Golden-snapshot gate for the conformance matrix.
//!
//! Runs a small fixed matrix and compares its JSON summary byte-for-byte
//! against a committed fixture. The fixture config deliberately stays at
//! pipeline depth 1: reconfigurable apps are byte-exact against the
//! oracle there, so every digest in the document is deterministic.
//! Regenerate after an intentional behaviour change with:
//!
//! ```text
//! BLESS_FIXTURES=1 cargo test -p conformance --test matrix_gate
//! ```

use conformance::{run_matrix, to_json, ConfApp, MatrixConfig};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/gate_summary.json"
);

fn fixture_config() -> MatrixConfig {
    MatrixConfig {
        apps: vec![
            ConfApp::parse("pip1").unwrap(),
            ConfApp::parse("pip12").unwrap(),
        ],
        cores: vec![1, 2],
        depths: vec![1],
        seeds: 2,
        base_seed: 0xC0FFEE,
        // 14 frames: the pip12 toggle event lands mid-run, so the matrix
        // exercises a reconfiguration while staying depth-1 deterministic.
        frames: 14,
        workers: vec![2],
        policy_override: None,
    }
}

#[test]
fn gate_matrix_matches_golden_snapshot() {
    let summary = run_matrix(&fixture_config());
    let json = to_json(&summary);

    // The renderer itself must be deterministic before we compare
    // against anything on disk.
    assert_eq!(json, to_json(&summary), "to_json is not deterministic");

    if std::env::var_os("BLESS_FIXTURES").is_some() {
        std::fs::write(FIXTURE, &json).expect("write fixture");
        return;
    }

    let want = std::fs::read_to_string(FIXTURE)
        .expect("missing fixture; run with BLESS_FIXTURES=1 to create it");
    assert_eq!(
        json, want,
        "matrix JSON diverged from the golden snapshot; if the change is \
         intentional, regenerate with BLESS_FIXTURES=1"
    );
    assert!(summary.passed(), "golden gate matrix must pass");
}
