//! Serving-runtime lifecycle conformance.
//!
//! The multi-graph runtime ([`hinch::Runtime`]) multiplexes many graph
//! instances over one worker pool with chunked admission, cross-graph
//! stealing, quiesce-based reconfiguration and per-graph teardown. This
//! layer proptests the whole lifecycle against the sequential reference
//! executor: random fleets of ≥4 concurrent app instances on 2–8
//! workers, frames drip-fed in random chunk sizes through the admission
//! bound (so backpressure and re-admission genuinely engage), drained
//! per graph — and every instance's captured output must fingerprint
//! identically to a dedicated [`conformance::corpus::run_reference`] run
//! of the same app. Isolated per-instance assets
//! ([`apps::experiment::build_isolated`]) are what make the concurrent
//! fleet possible at all: captures are private per tenant, inputs shared
//! refcount-only.
//!
//! Reconfiguration rides along two ways: PiP-12 tenants reconfigure
//! *internally* (the in-graph injector flips the second picture every 12
//! frames), and optionally over the *wire* — a canceling `flip,flip`
//! pair injected at a quiescent point, which must leave the output
//! untouched while still driving a full quiesce/re-flatten cycle
//! (`reconfigs` grows). PiP-12 runs at pipeline depth 1: a
//! reconfigurable app's toggle boundary is schedule-independent only
//! there (see `conformance::matrix`); the static apps run at depths 2–5.

use apps::experiment::{build_isolated, App, AppConfig};
use conformance::corpus::{self, ConfApp};
use conformance::fingerprint::{digest_ports, Digest};
use hinch::{Event, GraphId, Runtime, RuntimeConfig, SpawnOpts};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One tenant of a generated fleet.
#[derive(Debug, Clone)]
struct TenantPlan {
    app: App,
    frames: u64,
    depth: usize,
    /// Frames offered per submit call (drip feed).
    chunk: u64,
    /// Inject a canceling flip pair mid-run (PiP-12 only).
    wire_flip: bool,
}

fn static_plan() -> impl Strategy<Value = TenantPlan> {
    (
        prop_oneof![
            Just(App::Pip1),
            Just(App::Pip2),
            Just(App::Blur3),
            Just(App::Blur5),
        ],
        3u64..10,
        2usize..6,
        1u64..4,
    )
        .prop_map(|(app, frames, depth, chunk)| TenantPlan {
            app,
            frames,
            depth,
            chunk,
            wire_flip: false,
        })
}

fn reconfig_plan() -> impl Strategy<Value = TenantPlan> {
    // ≥13 frames so the internal injector flips at least once.
    (13u64..20, 1u64..4, proptest::bool::ANY).prop_map(|(frames, chunk, wire_flip)| TenantPlan {
        app: App::Pip12,
        frames,
        depth: 1,
        chunk,
        wire_flip,
    })
}

/// Reference digests, cached per (app, frames) — the oracle is
/// deterministic, re-running it per case would only burn time.
fn reference_digest(app: App, frames: u64) -> Digest {
    static CACHE: Mutex<Option<HashMap<(&'static str, u64), Digest>>> = Mutex::new(None);
    let key = (app.id(), frames);
    if let Some(d) = CACHE.lock().get_or_insert_with(HashMap::new).get(&key) {
        return *d;
    }
    let outcome = corpus::run_reference(ConfApp::Experiment(app), frames)
        .unwrap_or_else(|e| panic!("reference {} x{frames}: {e}", app.id()));
    let digest = outcome.digest();
    CACHE.lock().as_mut().unwrap().insert(key, digest);
    digest
}

fn wait_quiescent(rt: &Runtime, id: GraphId) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = rt.stats(id).expect("stats");
        if s.inflight == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "tenant never quiesced: {s:?}");
        std::thread::yield_now();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn fleet_lifecycle_matches_per_graph_reference(
        statics in proptest::collection::vec(static_plan(), 3..5),
        reconfig in reconfig_plan(),
        workers in 2usize..9,
    ) {
        let mut plans = statics;
        plans.push(reconfig); // ≥4 concurrent graphs, ≥1 reconfigurable

        let rt = Runtime::new(RuntimeConfig::new(workers));
        // Spawn the whole fleet up front; tight backlog bounds so the
        // drip feed actually hits admission control.
        let tenants: Vec<_> = plans
            .iter()
            .map(|plan| {
                let built = build_isolated(AppConfig::small(plan.app).frames(plan.frames));
                let id = rt
                    .spawn(
                        &built.spec,
                        SpawnOpts::new(plan.app.id())
                            .pipeline_depth(plan.depth)
                            .max_backlog(plan.chunk.max(2)),
                    )
                    .expect("spawn tenant");
                (id, built, plan.clone(), 0u64)
            })
            .collect();

        // Drip-feed all tenants round-robin: a submit may be partially
        // accepted or fully shed (backlog full) — offer the remainder on
        // the next pass. The PiP-12 wire flip fires once its tenant has
        // pushed half its frames and quiesced: a canceling flip pair in
        // one poll batch must not change output, only drive a reconfig.
        let mut tenants: Vec<_> = tenants;
        let mut flipped = false;
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let mut all_done = true;
            for (id, _, plan, submitted) in tenants.iter_mut() {
                if *submitted >= plan.frames {
                    continue;
                }
                if plan.wire_flip && !flipped && *submitted >= plan.frames / 2 {
                    wait_quiescent(&rt, *id);
                    rt.inject(*id, "mq", Event::new("flip")).expect("inject");
                    rt.inject(*id, "mq", Event::new("flip")).expect("inject");
                    flipped = true;
                }
                let want = plan.chunk.min(plan.frames - *submitted);
                *submitted += rt.submit(*id, want).expect("submit");
                all_done &= *submitted >= plan.frames;
            }
            if all_done {
                break;
            }
            prop_assert!(Instant::now() < deadline, "fleet submit stalled");
            std::thread::yield_now();
        }

        // Drain per graph and fingerprint against the oracle.
        for (id, built, plan, _) in tenants {
            let stats = rt.drain(id).expect("drain");
            prop_assert_eq!(stats.completed, plan.frames, "{} retired", plan.app.id());
            if plan.app == App::Pip12 {
                prop_assert!(
                    stats.reconfigs >= 1,
                    "PiP-12 never reconfigured (frames={}, wire_flip={})",
                    plan.frames,
                    plan.wire_flip
                );
            }
            let output: Vec<Vec<Vec<u8>>> = (0..built.capture_ports)
                .map(|p| built.assets.captured(built.capture, p))
                .collect();
            prop_assert_eq!(
                digest_ports(&output),
                reference_digest(plan.app, plan.frames),
                "{} x{} diverged from reference (depth={}, chunk={}, wire_flip={}, workers={})",
                plan.app.id(),
                plan.frames,
                plan.depth,
                plan.chunk,
                plan.wire_flip,
                workers
            );
        }
        prop_assert_eq!(rt.graph_count(), 0);
        rt.shutdown();
    }
}
