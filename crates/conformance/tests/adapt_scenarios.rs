//! Controller-driven differential conformance.
//!
//! The closed-loop SLO controller (`crates/adapt`) decides quality
//! toggles, slice resizes and pipeline-depth steps from a seeded
//! virtual-time scenario; the serving runtime actuates them at
//! quiescent, frame-exact boundaries. This suite replays each
//! reconfigurable app's decision schedule on the real
//! [`hinch::Runtime`] and holds the adaptation plane to the matrix's
//! admissibility criterion ([`conformance::matrix::check_admissible`]):
//! **every** captured output frame must be byte-identical to the
//! same-index frame of one of the app's two static counterpart
//! renderings, all ports agreeing on the variant. Adaptation may move
//! the toggle boundary; it must never invent a third output variant or
//! tear one frame across variants.
//!
//! Resize / depth-step decisions drain and respawn the graph, so a
//! replay is a sequence of *incarnations*, each a fresh instance whose
//! source restarts at frame 0 — admissibility is therefore checked per
//! incarnation against counterpart prefixes. The decision schedule
//! itself is a pure function of the scenario seed (proptested in
//! `crates/adapt`), which makes these runs deterministic end to end.

use adapt::{run_scenario, Action, Quality, ScenarioSpec};
use apps::experiment::{build_isolated_adaptive, reconfig_handle, App, AppConfig, Built};
use conformance::corpus::{self, ConfApp, Ports};
use conformance::matrix::check_admissible;
use hinch::{Event, GraphId, Runtime, RuntimeConfig, SpawnOpts};
use std::time::{Duration, Instant};

fn wait_quiescent(rt: &Runtime, id: GraphId) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = rt.stats(id).expect("stats");
        if s.inflight == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "replay never quiesced: {s:?}");
        std::thread::yield_now();
    }
}

struct Replayed {
    /// Captured outputs per incarnation (a rebuild starts a new one).
    incarnations: Vec<Ports>,
    toggles: u64,
    rebuilds: u64,
    completed: u64,
}

/// Replay the scenario's decision schedule on the real runtime,
/// collecting every incarnation's captured output (mirrors
/// `serve::load::run_burst_replay`, which reduces the same outputs to a
/// digest instead of keeping them).
fn replay(spec: &ScenarioSpec, max_frames: u64) -> Replayed {
    let scenario = run_scenario(spec);
    let frames = scenario.arrivals.min(max_frames);
    let app = spec.app;
    let handle = reconfig_handle(app).expect("reconfigurable app");

    let runtime = Runtime::new(RuntimeConfig::new(2));
    let spawn = |slices: usize, depth: usize| -> (Built, GraphId) {
        let built = build_isolated_adaptive(
            AppConfig {
                app,
                scale: spec.scale,
                frames: 0,
            },
            Some(slices),
        );
        let id = runtime
            .spawn(
                &built.spec,
                SpawnOpts::new(app.id())
                    .pipeline_depth(depth)
                    .max_backlog(frames.max(1)),
            )
            .expect("spawn replay graph");
        (built, id)
    };
    // Reconfig graphs spawn degraded; one idempotent event brings a
    // fresh incarnation to the wanted quality before any frame flows.
    let sync_quality = |id: GraphId, live: &mut Quality, want: Quality| {
        if *live != want {
            let payload = match want {
                Quality::Full => handle.full_payload,
                Quality::Degraded => handle.degraded_payload,
            };
            runtime
                .inject(id, handle.queue, Event::with_payload(handle.event, payload))
                .expect("replay inject");
            *live = want;
        }
    };
    let collect = |built: &Built| -> Ports {
        (0..built.capture_ports)
            .map(|p| built.assets.captured(built.capture, p))
            .collect()
    };

    let mut current = scenario.initial;
    let (mut built, mut id) = spawn(current.slices, current.pipeline_depth);
    let mut live_quality = Quality::Degraded;
    sync_quality(id, &mut live_quality, current.quality);

    let mut out = Replayed {
        incarnations: Vec::new(),
        toggles: 0,
        rebuilds: 0,
        completed: 0,
    };
    let mut done = 0u64;
    for d in scenario
        .decisions
        .iter()
        .filter(|d| d.after_frames < frames)
    {
        if d.after_frames > done {
            let n = d.after_frames - done;
            assert_eq!(runtime.submit(id, n).expect("replay submit"), n);
            done = d.after_frames;
        }
        wait_quiescent(&runtime, id);
        match d.action {
            Action::Hold => {}
            Action::Toggle { to } => {
                sync_quality(id, &mut live_quality, to);
                out.toggles += 1;
            }
            Action::Resize { .. } | Action::StepDepth { .. } => {
                current = d.config_after;
                let stats = runtime.drain(id).expect("replay drain");
                out.completed += stats.completed;
                out.incarnations.push(collect(&built));
                out.rebuilds += 1;
                (built, id) = spawn(current.slices, current.pipeline_depth);
                live_quality = Quality::Degraded;
                sync_quality(id, &mut live_quality, current.quality);
            }
        }
    }
    if frames > done {
        let n = frames - done;
        assert_eq!(runtime.submit(id, n).expect("replay submit"), n);
    }
    let stats = runtime.drain(id).expect("replay drain");
    out.completed += stats.completed;
    out.incarnations.push(collect(&built));
    runtime.shutdown();
    out
}

/// Does `output` equal the same-length prefix of `variant` on every
/// port? (Admissibility is necessary but weak — a replay whose toggles
/// were silently dropped would still be admissible. A run that toggled
/// must *differ* from every single-variant rendering.)
fn equals_prefix(output: &Ports, variant: &Ports) -> bool {
    output.iter().enumerate().all(|(p, port)| {
        port.iter()
            .enumerate()
            .all(|(i, f)| variant[p].get(i) == Some(f))
    })
}

/// Run one scenario end to end and hold every incarnation's output to
/// the admissibility criterion.
fn scenario_is_admissible(spec: ScenarioSpec, max_frames: u64) {
    let app = spec.app;
    let scenario = run_scenario(&spec);
    let frames = scenario.arrivals.min(max_frames);
    let in_range = |d: &&adapt::DecisionRecord| d.after_frames < frames;
    let expect_toggles = scenario
        .decisions
        .iter()
        .filter(in_range)
        .filter(|d| matches!(d.action, Action::Toggle { .. }))
        .count() as u64;
    let expect_rebuilds = scenario
        .decisions
        .iter()
        .filter(in_range)
        .filter(|d| matches!(d.action, Action::Resize { .. } | Action::StepDepth { .. }))
        .count() as u64;
    assert!(
        expect_toggles >= 1,
        "{} seed {} schedules no toggle within {frames} frames — the case tests nothing",
        app.id(),
        spec.seed
    );

    let variants: Vec<Ports> = ConfApp::parse(app.id())
        .expect("corpus app")
        .counterparts()
        .iter()
        .map(|&c| {
            corpus::run_reference(c, frames)
                .unwrap_or_else(|e| panic!("counterpart {}: {e}", c.id()))
                .output
        })
        .collect();
    assert_eq!(variants.len(), 2, "{}", app.id());

    let r = replay(&spec, max_frames);
    assert_eq!(r.completed, frames, "{} retired every frame", app.id());
    assert_eq!(r.toggles, expect_toggles, "{}", app.id());
    assert_eq!(r.rebuilds, expect_rebuilds, "{}", app.id());
    assert_eq!(r.incarnations.len() as u64, expect_rebuilds + 1);

    let mut replayed_frames = 0u64;
    for (i, inc) in r.incarnations.iter().enumerate() {
        check_admissible(inc, &variants).unwrap_or_else(|why| {
            panic!(
                "{} incarnation {i}: controller-driven output not admissible: {why}",
                app.id()
            )
        });
        replayed_frames += inc.first().map(Vec::len).unwrap_or(0) as u64;
    }
    assert_eq!(replayed_frames, frames, "{} captured every frame", app.id());

    // The adaptation must be *visible*: a run that toggled mid-stream
    // cannot equal either pure static rendering end to end.
    let whole_run_single_incarnation = r.incarnations.len() == 1;
    if whole_run_single_incarnation {
        for (v, variant) in variants.iter().enumerate() {
            assert!(
                !equals_prefix(&r.incarnations[0], variant),
                "{}: toggled run is byte-equal to static counterpart {v} — toggle not applied?",
                app.id()
            );
        }
    }
}

/// Golden snapshot of the controller's decision plane: the rendered
/// replay log of every reconfigurable app at the benchmark seed,
/// byte-for-byte against a committed fixture. The log is a pure
/// function of the seed (virtual time, no wall clock), so any diff is a
/// *behaviour* change in the planner/controller — re-bless after an
/// intentional one with:
///
/// ```text
/// BLESS_FIXTURES=1 cargo test -p conformance --test adapt_scenarios
/// ```
#[test]
fn adapt_replay_logs_match_golden_snapshot() {
    const FIXTURE: &str = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/adapt_replay.txt"
    );
    let mut log = String::new();
    for app in App::RECONFIG {
        log.push_str(&run_scenario(&ScenarioSpec::small(app, 42)).render_replay());
    }
    log.push_str(&run_scenario(&ScenarioSpec::stepped(App::Blur35, 42)).render_replay());

    if std::env::var_os("BLESS_FIXTURES").is_some() {
        std::fs::write(FIXTURE, &log).expect("write fixture");
        return;
    }
    let want = std::fs::read_to_string(FIXTURE)
        .expect("missing fixture; run with BLESS_FIXTURES=1 to create it");
    assert_eq!(
        log, want,
        "adapt replay log diverged from the golden snapshot; if the \
         change is intentional, regenerate with BLESS_FIXTURES=1"
    );
}

/// Every reconfigurable app, the benchmark seed, toggle-only window:
/// the first SLO degrade lands at frame 11, so 24 frames cover full →
/// degraded output with no rebuild.
#[test]
fn pip12_controller_outputs_are_admissible() {
    scenario_is_admissible(ScenarioSpec::small(App::Pip12, 42), 24);
}

#[test]
fn jpip12_controller_outputs_are_admissible() {
    scenario_is_admissible(ScenarioSpec::small(App::Jpip12, 42), 24);
}

#[test]
fn blur35_controller_outputs_are_admissible() {
    scenario_is_admissible(ScenarioSpec::small(App::Blur35, 42), 24);
}

/// The stepped variant schedules a depth step (frame 49) and a slice
/// resize (frame 99) for Blur-35 at seed 42: three incarnations, each
/// of which must independently satisfy counterpart admissibility.
#[test]
fn blur35_stepped_scenario_with_rebuilds_is_admissible() {
    scenario_is_admissible(ScenarioSpec::stepped(App::Blur35, 42), 110);
}
