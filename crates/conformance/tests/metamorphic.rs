//! Metamorphic schedule-independence layer.
//!
//! Property: every XA-clean random SPC graph produces the same output on
//! the reference sequential executor, the simulation engine (any core
//! count × pipeline depth × schedule policy) and the native thread
//! engine — and no schedule ever raises `LeaseConflict`.
//!
//! On failure the harness prints the failing case's sampled inputs
//! (`shape`, `iters`, `depth`, `seed`); the case is reproducible because
//! the vendored proptest runner seeds deterministically per (test name,
//! case index). The engine configuration of the failing run is named in
//! the assertion message, completing the `(spec, seed, config)` triple.

use apps::experiment::App;
use conformance::randspec::{build_app, shape_strategy};
use conformance::{corpus, ConfApp};
use hinch::engine::{run_native, run_reference, run_sim, RunConfig};
use hinch::meter::NullPlatform;
use hinch::SchedPolicy;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn xa_clean_random_graphs_are_schedule_independent(
        shape in shape_strategy(),
        iters in 1u64..6,
        depth in 1usize..5,
        seed in 0u64..1 << 48,
    ) {
        // The generator must only emit analyze-clean specs; a diagnostic
        // here is a generator bug, not a runtime divergence.
        let (spec, _) = build_app(&shape);
        let diags = analyze::check_spec(&spec);
        prop_assert!(diags.is_empty(), "generated spec not XA-clean:\n{}", diags.render_human());

        // The oracle.
        let (spec, out) = build_app(&shape);
        run_reference(&spec, &RunConfig::new(iters))
            .unwrap_or_else(|e| panic!("reference run failed: {e}"));
        let want = out.lock().clone();
        prop_assert_eq!(want.len(), iters as usize);

        // The sim sweep: every policy must reproduce the oracle exactly.
        let policies = [
            SchedPolicy::Default,
            SchedPolicy::Fifo,
            SchedPolicy::Lifo,
            SchedPolicy::Shuffle(seed),
            SchedPolicy::Perturb(seed),
        ];
        for policy in policies {
            for cores in [1usize, 3] {
                let (spec, out) = build_app(&shape);
                let mut platform = NullPlatform::new(cores);
                let cfg = RunConfig::new(iters).pipeline_depth(depth).sched(policy);
                let r = run_sim(&spec, &cfg, &mut platform).unwrap_or_else(|e| {
                    panic!(
                        "sim run failed (policy={} cores={cores} depth={depth}): {e}",
                        policy.label()
                    )
                });
                prop_assert_eq!(r.iterations, iters);
                prop_assert_eq!(
                    &*out.lock(),
                    &want,
                    "sim diverged from the oracle: policy={} cores={} depth={} iters={}",
                    policy.label(),
                    cores,
                    depth,
                    iters
                );
            }
        }

        // One native run, seeded pop order (threads add their own
        // nondeterminism on top of the policy).
        let (spec, out) = build_app(&shape);
        let cfg = RunConfig::new(iters)
            .workers(3)
            .pipeline_depth(depth)
            .sched(SchedPolicy::Shuffle(seed));
        run_native(&spec, &cfg).unwrap_or_else(|e| panic!("native run failed: {e}"));
        prop_assert_eq!(
            &*out.lock(),
            &want,
            "native diverged from the oracle: depth={} seed={}",
            depth,
            seed
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    // Metamorphic relation for the fusion transform: merging a JPiP
    // app's decode and IDCT stages into the tile-granular fused
    // component is an *identity* on the output — for any app variant,
    // frame count, pipeline depth, worker count and schedule seed, the
    // fused graph's fingerprint equals the unfused oracle's.
    #[test]
    fn fused_jpip_is_output_invariant_under_random_schedules(
        pip in prop_oneof![Just(App::Jpip1), Just(App::Jpip2)],
        frames in 3u64..8,
        depth in 1usize..4,
        workers in 2usize..9,
        seed in 0u64..1 << 48,
    ) {
        let want = corpus::run_reference(ConfApp::Experiment(pip), frames)
            .unwrap_or_else(|e| panic!("unfused reference failed: {e}"))
            .digest();
        let fused_ref = corpus::run_reference(ConfApp::Fused(pip), frames)
            .unwrap_or_else(|e| panic!("fused reference failed: {e}"))
            .digest();
        prop_assert_eq!(fused_ref, want, "fusion changed the reference output");
        let sim = corpus::run_sim(ConfApp::Fused(pip), frames, 3, depth, SchedPolicy::Perturb(seed))
            .unwrap_or_else(|e| panic!("fused sim run failed: {e}"));
        prop_assert_eq!(
            sim.digest(), want,
            "fused sim diverged: depth={} seed={}", depth, seed
        );
        let native =
            corpus::run_native(ConfApp::Fused(pip), frames, workers, depth, SchedPolicy::Shuffle(seed))
                .unwrap_or_else(|e| panic!("fused native run failed: {e}"));
        prop_assert_eq!(
            native.digest(), want,
            "fused native diverged: workers={} depth={} seed={}", workers, depth, seed
        );
    }
}
