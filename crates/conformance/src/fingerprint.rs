//! Byte-exact output fingerprints.
//!
//! The differential driver compares application outputs across engines,
//! core counts, pipeline depths and schedule policies. Holding every
//! captured frame of every run in memory would be wasteful, so each run
//! is reduced to a [`Digest`]: an FNV-1a/64 hash over the complete
//! output structure (port count, frame counts, frame lengths, frame
//! bytes). Two runs with the same digest produced the same bytes for all
//! practical purposes; where the harness needs the actual frames (the
//! reconfiguration admissibility check) it keeps them alongside.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A 64-bit FNV-1a output digest, rendered as fixed-width hex so JSON
/// summaries are byte-stable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Digest(pub u64);

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({:016x})", self.0)
    }
}

/// Plain FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(FNV_OFFSET, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

fn mix_u64(h: u64, v: u64) -> u64 {
    v.to_le_bytes()
        .iter()
        .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

fn mix_bytes(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Digest of a structured output: `ports[p][frame]` are the captured
/// frames of output port `p`, in production order. Structure (counts and
/// lengths) is folded in before content, so a missing frame can never
/// alias a shifted one.
pub fn digest_ports(ports: &[Vec<Vec<u8>>]) -> Digest {
    let mut h = mix_u64(FNV_OFFSET, ports.len() as u64);
    for port in ports {
        h = mix_u64(h, port.len() as u64);
        for frame in port {
            h = mix_u64(h, frame.len() as u64);
            h = mix_bytes(h, frame);
        }
    }
    Digest(h)
}

/// Encode an `f64` spectrum as the byte frames the harness compares:
/// one frame of little-endian `f64::to_bits` words. Bit-exact — no
/// epsilon — because a schedule-independent runtime must produce the
/// same floating-point reduction order everywhere.
pub fn spectrum_frame(bins: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bins.len() * 8);
    for b in bins {
        out.extend_from_slice(&b.to_bits().to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a/64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn digest_is_structure_sensitive() {
        // Same bytes, different framing => different digests.
        let flat = vec![vec![vec![1u8, 2, 3, 4]]];
        let split = vec![vec![vec![1u8, 2], vec![3u8, 4]]];
        let two_ports = vec![vec![vec![1u8, 2]], vec![vec![3u8, 4]]];
        assert_ne!(digest_ports(&flat), digest_ports(&split));
        assert_ne!(digest_ports(&split), digest_ports(&two_ports));
        assert_eq!(digest_ports(&flat), digest_ports(&flat.clone()));
    }

    #[test]
    fn digest_renders_fixed_width_hex() {
        assert_eq!(Digest(0xab).to_string(), "00000000000000ab");
        assert_eq!(format!("{:?}", Digest(1)), "Digest(0000000000000001)");
    }

    #[test]
    fn spectrum_encoding_is_bit_exact() {
        let a = spectrum_frame(&[1.0, -0.0]);
        let b = spectrum_frame(&[1.0, 0.0]);
        assert_ne!(a, b, "-0.0 and 0.0 must not alias");
        assert_eq!(a.len(), 16);
    }
}
