//! The differential matrix driver.
//!
//! For every selected application the driver establishes an oracle with
//! the reference sequential executor, then sweeps the simulation engine
//! across `cores × depths × policies` and the native engine across
//! `workers × depths`, comparing outputs byte-exactly and cross-checking
//! the report invariants the trace/insight subsystems rely on.
//!
//! ## What "byte-identical" means per application class
//!
//! * **Static apps** (no manager): output must equal the oracle under
//!   *every* engine, core count, pipeline depth and schedule policy —
//!   this is the paper's schedule-independence claim, checked literally.
//! * **Reconfigurable apps** (PiP-12, JPiP-12, Blur-35): at pipeline
//!   depth 1 a manager entry polls its event queue at a deterministic
//!   iteration boundary, so the output equals the oracle under every
//!   schedule. At depth > 1 the *toggle boundary* depends on which
//!   in-flight entry first observes the event — a documented degree of
//!   freedom of the quiesce protocol, not a bug. There the driver checks
//!   *admissibility* instead: every output frame must be byte-identical
//!   to the corresponding frame of one of the app's two static
//!   counterpart renderings (all ports agreeing on the same variant).
//!
//! Every sim run additionally checks the PR 3 report invariants:
//! iteration retirement counts, and the per-core `busy + idle == cycles`
//! tiling. One traced run per app feeds `trace::check_invariants` (span
//! overlap, quiesce pairing, event/reconfig ordering).
//!
//! A failed comparison becomes a [`Divergence`] carrying the exact
//! `(app, engine, cores, depth, policy, frames)` tuple; the CLI renders
//! it as a ready-to-paste `hinch-conformance` reproduction command.

use crate::corpus::{self, ConfApp, Ports};
use crate::fingerprint::Digest;
use hinch::SchedPolicy;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Which (cores, depths, seeds, ...) to sweep.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    pub apps: Vec<ConfApp>,
    pub cores: Vec<usize>,
    pub depths: Vec<usize>,
    /// Number of seeded policies (alternating shuffle / perturb).
    pub seeds: u64,
    /// Base seed the seeded policies derive from.
    pub base_seed: u64,
    pub frames: u64,
    /// Native-engine worker counts (empty skips the native sweep).
    pub workers: Vec<usize>,
    /// Restrict the sim sweep to exactly these policies (divergence
    /// reproduction); `None` uses the standard set.
    pub policy_override: Option<Vec<SchedPolicy>>,
}

impl MatrixConfig {
    /// The full matrix from the conformance issue: all 11 apps,
    /// cores {1,2,4,9}, depths {1,2,5}, 8 schedule seeds, plus native.
    pub fn full() -> Self {
        MatrixConfig {
            apps: corpus::ALL.to_vec(),
            cores: vec![1, 2, 4, 9],
            depths: vec![1, 2, 5],
            seeds: 8,
            base_seed: 0xC0FFEE,
            frames: 30,
            workers: vec![1, 4],
            policy_override: None,
        }
    }

    /// The quick CI gate: 3 apps × {1,4} cores × 2 seeds.
    pub fn gate() -> Self {
        MatrixConfig {
            apps: vec![
                ConfApp::parse("pip1").unwrap(),
                ConfApp::parse("blur3").unwrap(),
                ConfApp::parse("pip12").unwrap(),
            ],
            cores: vec![1, 4],
            depths: vec![1, 5],
            seeds: 2,
            base_seed: 0xC0FFEE,
            frames: 16,
            workers: vec![2],
            policy_override: None,
        }
    }

    /// The sim policies this configuration sweeps: the three fixed
    /// tie-break orders plus `seeds` seeded ones, alternating shuffle
    /// and priority-perturbation.
    pub fn policies(&self) -> Vec<SchedPolicy> {
        if let Some(p) = &self.policy_override {
            return p.clone();
        }
        let mut out = vec![SchedPolicy::Default, SchedPolicy::Fifo, SchedPolicy::Lifo];
        for k in 0..self.seeds {
            let seed = self.base_seed.wrapping_add(k);
            out.push(if k % 2 == 0 {
                SchedPolicy::Shuffle(seed)
            } else {
                SchedPolicy::Perturb(seed)
            });
        }
        out
    }
}

/// One observed disagreement (or invariant violation, or error).
#[derive(Debug, Clone)]
pub struct Divergence {
    pub app: &'static str,
    /// `"reference"`, `"sim"` or `"native"`.
    pub engine: &'static str,
    /// Virtual cores (sim) or worker threads (native).
    pub cores: usize,
    pub depth: usize,
    /// Schedule policy label (`SchedPolicy::label`).
    pub policy: String,
    /// `"output"`, `"invariant"` or `"error"`.
    pub kind: &'static str,
    pub detail: String,
}

impl Divergence {
    /// A ready-to-run CLI invocation reproducing this divergence.
    pub fn reproduce(&self, cfg: &MatrixConfig) -> String {
        let mut cmd = format!(
            "hinch-conformance --apps {} --depths {} --frames {} --seed {}",
            self.app, self.depth, cfg.frames, cfg.base_seed
        );
        match self.engine {
            "native" => {
                let _ = write!(cmd, " --cores {} --workers {}", cfg.cores[0], self.cores);
            }
            _ => {
                let _ = write!(
                    cmd,
                    " --cores {} --policy {} --no-native",
                    self.cores, self.policy
                );
            }
        }
        cmd
    }
}

/// Per-application result.
#[derive(Debug, Clone)]
pub struct AppSummary {
    pub app: &'static str,
    pub oracle_digest: Digest,
    pub oracle_iterations: u64,
    pub oracle_jobs: u64,
    pub oracle_reconfigs: u64,
    pub sim_runs: u64,
    pub native_runs: u64,
    /// Distinct sim output digests. 1 for schedule-independent apps;
    /// reconfigurable apps may legitimately show more at depth > 1.
    pub sim_digests: BTreeSet<Digest>,
    pub divergences: Vec<Divergence>,
}

/// The whole matrix result.
#[derive(Debug, Clone)]
pub struct MatrixSummary {
    pub config: MatrixConfig,
    pub apps: Vec<AppSummary>,
    pub total_runs: u64,
}

impl MatrixSummary {
    pub fn divergences(&self) -> impl Iterator<Item = &Divergence> {
        self.apps.iter().flat_map(|a| a.divergences.iter())
    }

    pub fn passed(&self) -> bool {
        self.divergences().next().is_none()
    }
}

/// Check that every output frame matches the same-index frame of one of
/// the counterpart renderings, all ports agreeing on the variant. Public
/// because the controller-driven differential runs
/// (`tests/adapt_scenarios.rs`) apply the same admissibility criterion
/// to replayed SLO-scenario outputs.
pub fn check_admissible(output: &Ports, variants: &[Ports]) -> Result<(), String> {
    let frames = output.first().map(Vec::len).unwrap_or(0);
    for (p, port) in output.iter().enumerate() {
        if port.len() != frames {
            return Err(format!(
                "port {p} produced {} frames, port 0 produced {frames}",
                port.len()
            ));
        }
    }
    for v in variants {
        if v.len() != output.len() {
            return Err(format!(
                "variant has {} ports, run produced {}",
                v.len(),
                output.len()
            ));
        }
    }
    'frame: for i in 0..frames {
        for (v, variant) in variants.iter().enumerate() {
            if output
                .iter()
                .enumerate()
                .all(|(p, port)| variant[p].get(i) == Some(&port[i]))
            {
                let _ = v;
                continue 'frame;
            }
        }
        return Err(format!(
            "frame {i} matches none of the {} static counterpart renderings",
            variants.len()
        ));
    }
    Ok(())
}

struct AppRunner {
    app: ConfApp,
    frames: u64,
    summary: AppSummary,
    /// Counterpart oracle outputs (reconfigurable apps only).
    variants: Vec<Ports>,
}

impl AppRunner {
    fn diverge(
        &mut self,
        engine: &'static str,
        cores: usize,
        depth: usize,
        policy: String,
        kind: &'static str,
        detail: String,
    ) {
        self.summary.divergences.push(Divergence {
            app: self.app.id(),
            engine,
            cores,
            depth,
            policy,
            kind,
            detail,
        });
    }

    /// Shared output + report checks for one engine run.
    #[allow(clippy::too_many_arguments)]
    fn check_run(
        &mut self,
        engine: &'static str,
        cores: usize,
        depth: usize,
        policy: String,
        iterations: u64,
        jobs: u64,
        reconfigs: u64,
        output: &Ports,
        digest: Digest,
    ) {
        if iterations != self.frames {
            self.diverge(
                engine,
                cores,
                depth,
                policy.clone(),
                "invariant",
                format!("retired {iterations} iterations, expected {}", self.frames),
            );
        }
        let exact = !self.app.is_reconfig() || depth == 1;
        if exact {
            if digest != self.summary.oracle_digest {
                self.diverge(
                    engine,
                    cores,
                    depth,
                    policy.clone(),
                    "output",
                    format!(
                        "output digest {digest} != oracle {}",
                        self.summary.oracle_digest
                    ),
                );
            }
            if jobs != self.summary.oracle_jobs {
                self.diverge(
                    engine,
                    cores,
                    depth,
                    policy.clone(),
                    "invariant",
                    format!(
                        "executed {jobs} jobs, oracle executed {}",
                        self.summary.oracle_jobs
                    ),
                );
            }
            if reconfigs != self.summary.oracle_reconfigs {
                self.diverge(
                    engine,
                    cores,
                    depth,
                    policy,
                    "invariant",
                    format!(
                        "applied {reconfigs} reconfigurations, oracle applied {}",
                        self.summary.oracle_reconfigs
                    ),
                );
            }
        } else if let Err(why) = check_admissible(output, &self.variants) {
            self.diverge(engine, cores, depth, policy, "output", why);
        }
    }

    fn sim_run(&mut self, cores: usize, depth: usize, policy: SchedPolicy, traced: bool) {
        self.summary.sim_runs += 1;
        let label = policy.label();
        let (outcome, events) = if traced {
            match corpus::run_sim_traced(self.app, self.frames, cores, depth, policy) {
                Ok((o, e)) => (o, Some(e)),
                Err(e) => {
                    self.diverge("sim", cores, depth, label, "error", e.to_string());
                    return;
                }
            }
        } else {
            match corpus::run_sim(self.app, self.frames, cores, depth, policy) {
                Ok(o) => (o, None),
                Err(e) => {
                    self.diverge("sim", cores, depth, label, "error", e.to_string());
                    return;
                }
            }
        };
        let r = &outcome.report;
        let digest = outcome.digest();
        self.summary.sim_digests.insert(digest);

        // Per-core busy+idle tiling (PR 3 invariant).
        if r.core_busy.len() != cores || r.core_idle.len() != cores {
            self.diverge(
                "sim",
                cores,
                depth,
                label.clone(),
                "invariant",
                format!(
                    "report covers {} busy / {} idle cores, platform has {cores}",
                    r.core_busy.len(),
                    r.core_idle.len()
                ),
            );
        }
        for (c, (&busy, &idle)) in r.core_busy.iter().zip(&r.core_idle).enumerate() {
            if busy + idle != r.cycles {
                self.diverge(
                    "sim",
                    cores,
                    depth,
                    label.clone(),
                    "invariant",
                    format!(
                        "core {c}: busy {busy} + idle {idle} != makespan {}",
                        r.cycles
                    ),
                );
            }
        }

        if let Some(events) = events {
            if let Err(why) = trace::check_invariants(&events) {
                self.diverge(
                    "sim",
                    cores,
                    depth,
                    label.clone(),
                    "invariant",
                    format!("trace invariants: {why}"),
                );
            }
            let spans = events
                .iter()
                .filter(|e| matches!(e, trace::TraceEvent::JobSpan { .. }))
                .count() as u64;
            if spans != r.jobs_executed {
                self.diverge(
                    "sim",
                    cores,
                    depth,
                    label.clone(),
                    "invariant",
                    format!("{spans} trace spans vs {} executed jobs", r.jobs_executed),
                );
            }
        }

        let (iterations, jobs, reconfigs) = (r.iterations, r.jobs_executed, r.reconfigs);
        self.check_run(
            "sim",
            cores,
            depth,
            label,
            iterations,
            jobs,
            reconfigs,
            &outcome.output,
            digest,
        );
    }

    fn native_run(&mut self, workers: usize, depth: usize, policy: SchedPolicy) {
        self.summary.native_runs += 1;
        let outcome = match corpus::run_native(self.app, self.frames, workers, depth, policy) {
            Ok(o) => o,
            Err(e) => {
                self.diverge(
                    "native",
                    workers,
                    depth,
                    "threads".into(),
                    "error",
                    e.to_string(),
                );
                return;
            }
        };
        let digest = outcome.digest();
        let (iterations, jobs, reconfigs) = (
            outcome.report.iterations,
            outcome.report.jobs_executed,
            outcome.report.reconfigs,
        );
        self.check_run(
            "native",
            workers,
            depth,
            "threads".into(),
            iterations,
            jobs,
            reconfigs,
            &outcome.output,
            digest,
        );
    }
}

/// Run the whole matrix. Runs are sequential and deterministic: the
/// summary (and its JSON rendering) is byte-stable for a given
/// configuration.
pub fn run_matrix(cfg: &MatrixConfig) -> MatrixSummary {
    let mut apps = Vec::new();
    let mut total_runs = 0u64;
    for &app in &cfg.apps {
        let runner = run_app(cfg, app);
        total_runs += runner.sim_runs + runner.native_runs + 1; // +1 oracle
        apps.push(runner);
    }
    MatrixSummary {
        config: cfg.clone(),
        apps,
        total_runs,
    }
}

fn run_app(cfg: &MatrixConfig, app: ConfApp) -> AppSummary {
    // 1. The oracle.
    let oracle = match corpus::run_reference(app, cfg.frames) {
        Ok(o) => o,
        Err(e) => {
            return AppSummary {
                app: app.id(),
                oracle_digest: Digest(0),
                oracle_iterations: 0,
                oracle_jobs: 0,
                oracle_reconfigs: 0,
                sim_runs: 0,
                native_runs: 0,
                sim_digests: BTreeSet::new(),
                divergences: vec![Divergence {
                    app: app.id(),
                    engine: "reference",
                    cores: 1,
                    depth: 1,
                    policy: "program-order".into(),
                    kind: "error",
                    detail: e.to_string(),
                }],
            };
        }
    };
    let mut runner = AppRunner {
        app,
        frames: cfg.frames,
        summary: AppSummary {
            app: app.id(),
            oracle_digest: oracle.digest(),
            oracle_iterations: oracle.report.iterations,
            oracle_jobs: oracle.report.jobs_executed,
            oracle_reconfigs: oracle.report.reconfigs,
            sim_runs: 0,
            native_runs: 0,
            sim_digests: BTreeSet::new(),
            divergences: Vec::new(),
        },
        variants: Vec::new(),
    };
    if oracle.report.iterations != cfg.frames {
        runner.diverge(
            "reference",
            1,
            1,
            "program-order".into(),
            "invariant",
            format!(
                "oracle retired {} iterations, expected {}",
                oracle.report.iterations, cfg.frames
            ),
        );
    }

    // 2. Counterpart renderings for the admissibility check.
    for counterpart in app.counterparts() {
        match corpus::run_reference(counterpart, cfg.frames) {
            Ok(o) => runner.variants.push(o.output),
            Err(e) => runner.diverge(
                "reference",
                1,
                1,
                "program-order".into(),
                "error",
                format!("counterpart {}: {e}", counterpart.id()),
            ),
        }
    }

    // 3. The sim sweep; the first cell runs traced.
    let policies = cfg.policies();
    let mut traced = true;
    for &cores in &cfg.cores {
        for &depth in &cfg.depths {
            for &policy in &policies {
                runner.sim_run(cores, depth, policy, traced);
                traced = false;
            }
        }
    }

    // 4. The native sweep. A seeded pop-order policy biases each cell
    // into a different schedule-space corner (thread interleaving adds
    // its own nondeterminism on top — outputs must still conform), and a
    // `Default` run per cell covers the work-stealing fast path, which
    // must stay fingerprint-equal to the oracle like any other schedule.
    for &workers in &cfg.workers {
        for &depth in &cfg.depths {
            let policy = SchedPolicy::Shuffle(cfg.base_seed ^ depth as u64);
            runner.native_run(workers, depth, policy);
            runner.native_run(workers, depth, SchedPolicy::Default);
        }
    }
    runner.summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_set_contains_fixed_and_seeded_orders() {
        let cfg = MatrixConfig {
            seeds: 4,
            ..MatrixConfig::gate()
        };
        let p = cfg.policies();
        assert_eq!(p.len(), 7);
        assert_eq!(p[0], SchedPolicy::Default);
        assert!(p.contains(&SchedPolicy::Shuffle(0xC0FFEE)));
        assert!(p.contains(&SchedPolicy::Perturb(0xC0FFEF)));
    }

    #[test]
    fn policy_override_wins() {
        let cfg = MatrixConfig {
            policy_override: Some(vec![SchedPolicy::Lifo]),
            ..MatrixConfig::gate()
        };
        assert_eq!(cfg.policies(), vec![SchedPolicy::Lifo]);
    }

    #[test]
    fn admissibility_accepts_variant_mixtures_and_rejects_others() {
        let v1: Ports = vec![vec![vec![1u8], vec![2], vec![3]]];
        let v2: Ports = vec![vec![vec![9u8], vec![8], vec![7]]];
        let mixed: Ports = vec![vec![vec![1u8], vec![8], vec![3]]];
        assert!(check_admissible(&mixed, &[v1.clone(), v2.clone()]).is_ok());
        let alien: Ports = vec![vec![vec![1u8], vec![0], vec![3]]];
        assert!(check_admissible(&alien, &[v1.clone(), v2.clone()]).is_err());
        // Ports must agree on the variant per frame.
        let two_port_v1: Ports = vec![vec![vec![1u8]], vec![vec![2u8]]];
        let two_port_v2: Ports = vec![vec![vec![9u8]], vec![vec![8u8]]];
        let torn: Ports = vec![vec![vec![1u8]], vec![vec![8u8]]];
        assert!(check_admissible(&torn, &[two_port_v1, two_port_v2]).is_err());
    }

    #[test]
    fn divergence_reproduction_command_names_the_cell() {
        let cfg = MatrixConfig::gate();
        let d = Divergence {
            app: "pip12",
            engine: "sim",
            cores: 4,
            depth: 5,
            policy: "shuffle:12648430".into(),
            kind: "output",
            detail: "digest mismatch".into(),
        };
        let cmd = d.reproduce(&cfg);
        assert!(cmd.contains("--apps pip12"), "{cmd}");
        assert!(cmd.contains("--cores 4"), "{cmd}");
        assert!(cmd.contains("--depths 5"), "{cmd}");
        assert!(cmd.contains("--policy shuffle:12648430"), "{cmd}");
    }
}
