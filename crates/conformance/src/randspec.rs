//! Random SPC graph generation for metamorphic testing.
//!
//! Factored out of the repository's `tests/random_graphs.rs` so both the
//! root proptest suite and the conformance crate's metamorphic layer
//! share one generator. A [`Shape`] is an abstract SPC tree; [`build_app`]
//! lowers it to a concrete [`GraphSpec`] of deterministic integer-mixing
//! components: every stream carries a shared `RegionBuf<i64>`, leaves
//! fold their inputs with a salt and fill their slice's slots, and a
//! final `record` sink appends one folded value per iteration to a
//! shared vector — the run's observable output.
//!
//! The workload is deliberately schedule-independent *by construction*
//! (pure functions of the iteration index and upstream values, disjoint
//! slice leases), so any cross-schedule divergence the metamorphic layer
//! observes is a runtime bug, not test noise.

use hinch::component::{Component, Params, ReconfigRequest, RunCtx, SliceAssign};
use hinch::graph::{factory, ComponentSpec, GraphSpec};
use hinch::sharedbuf::RegionBuf;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic 2-to-1 mixer (the workload's "computation").
pub fn mix(a: i64, b: i64) -> i64 {
    a.wrapping_mul(6364136223846793005)
        .wrapping_add(b)
        .rotate_left(17)
}

/// Fold a whole shared buffer to one value.
pub fn fold(buf: &RegionBuf<i64>) -> i64 {
    buf.lease_read_all()
        .iter()
        .fold(0i64, |acc, &v| mix(acc, v))
}

struct Mix {
    salt: i64,
    assign: SliceAssign,
}

impl Component for Mix {
    fn class(&self) -> &'static str {
        "mix"
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>) {
        let mut acc = mix(ctx.iteration() as i64, self.salt);
        for p in 0..ctx.num_inputs() {
            let buf = ctx.read::<RegionBuf<i64>>(p);
            acc = mix(acc, fold(&buf));
        }
        let total = self.assign.total;
        let out = ctx.write_shared::<RegionBuf<i64>, _>(0, || RegionBuf::new("mix", total));
        out.lease_write(self.assign.range(total)).fill(acc);
        ctx.charge(7);
    }
    fn reconfigure(&mut self, req: &ReconfigRequest) {
        if let ReconfigRequest::Slice(a) = req {
            self.assign = *a;
        }
    }
}

struct Record {
    out: Arc<Mutex<Vec<i64>>>,
}

impl Component for Record {
    fn class(&self) -> &'static str {
        "record"
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>) {
        let buf = ctx.read::<RegionBuf<i64>>(0);
        self.out.lock().push(fold(&buf));
    }
}

/// A leaf mixing `inputs` into `output` with the given salt.
pub fn mix_leaf(name: String, inputs: Vec<String>, output: String, salt: i64) -> GraphSpec {
    let mut c = ComponentSpec::new(
        name,
        "mix",
        factory(
            move |_p: &Params| -> Box<dyn Component> {
                Box::new(Mix {
                    salt,
                    assign: SliceAssign::WHOLE,
                })
            },
            Params::new(),
        ),
    );
    for i in inputs {
        c = c.input(i);
    }
    c = c.output(output);
    GraphSpec::Leaf(c)
}

/// An abstract SPC tree shape.
#[derive(Debug, Clone)]
pub enum Shape {
    Leaf,
    Seq(Vec<Shape>),
    Task(Vec<Shape>),
    Slice(usize, Box<Shape>),
}

/// Proptest strategy over [`Shape`]s: up to 3 nesting levels, ~24 nodes.
pub fn shape_strategy() -> impl Strategy<Value = Shape> {
    let leaf = Just(Shape::Leaf);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Shape::Seq),
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Shape::Task),
            (2usize..5, inner).prop_map(|(n, s)| Shape::Slice(n, Box::new(s))),
        ]
    })
}

struct GraphGen {
    counter: usize,
}

impl GraphGen {
    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    /// Build a subtree consuming `input` and producing `output`.
    fn build(&mut self, shape: &Shape, input: &str, output: &str) -> GraphSpec {
        match shape {
            Shape::Leaf => {
                let name = self.fresh("leaf");
                mix_leaf(
                    name,
                    vec![input.to_string()],
                    output.to_string(),
                    self.counter as i64,
                )
            }
            Shape::Seq(children) => {
                let mut parts = Vec::new();
                let mut current = input.to_string();
                for (i, child) in children.iter().enumerate() {
                    let next = if i + 1 == children.len() {
                        output.to_string()
                    } else {
                        self.fresh("s")
                    };
                    parts.push(self.build(child, &current, &next));
                    current = next;
                }
                GraphSpec::Seq(parts)
            }
            Shape::Task(children) => {
                // children in parallel on separate outputs, then a join
                let mut parts = Vec::new();
                let mut outs = Vec::new();
                for child in children {
                    let out = self.fresh("t");
                    parts.push(self.build(child, input, &out));
                    outs.push(out);
                }
                let join = mix_leaf(self.fresh("join"), outs, output.to_string(), 99);
                GraphSpec::seq(vec![GraphSpec::Task(parts), join])
            }
            Shape::Slice(n, body) => {
                let name = self.fresh("slice");
                GraphSpec::Slice {
                    name,
                    n: *n,
                    body: Box::new(self.build(body, input, output)),
                }
            }
        }
    }
}

/// Lower `shape` to a runnable spec. The returned vector receives one
/// folded output value per iteration — the run's observable output.
pub fn build_app(shape: &Shape) -> (GraphSpec, Arc<Mutex<Vec<i64>>>) {
    let mut gen = GraphGen { counter: 0 };
    let body = gen.build(shape, "src_out", "final");
    let src = mix_leaf("src".into(), vec![], "src_out".into(), 1);
    let out = Arc::new(Mutex::new(Vec::new()));
    let sink_out = out.clone();
    let sink = GraphSpec::Leaf(
        ComponentSpec::new(
            "sink",
            "record",
            factory(
                move |_p: &Params| -> Box<dyn Component> {
                    Box::new(Record {
                        out: sink_out.clone(),
                    })
                },
                Params::new(),
            ),
        )
        .input("final"),
    );
    (GraphSpec::seq(vec![src, body, sink]), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinch::engine::{run_reference, RunConfig};

    #[test]
    fn built_specs_validate_and_run() {
        let shape = Shape::Seq(vec![
            Shape::Leaf,
            Shape::Task(vec![Shape::Leaf, Shape::Slice(3, Box::new(Shape::Leaf))]),
        ]);
        let (spec, out) = build_app(&shape);
        spec.validate().expect("generated spec validates");
        run_reference(&spec, &RunConfig::new(3)).unwrap();
        assert_eq!(out.lock().len(), 3);
    }

    #[test]
    fn generated_specs_are_analyze_clean() {
        let shape = Shape::Slice(4, Box::new(Shape::Task(vec![Shape::Leaf, Shape::Leaf])));
        let (spec, _) = build_app(&shape);
        let diags = analyze::check_spec(&spec);
        assert!(diags.is_empty(), "{}", diags.render_human());
    }
}
