//! # conformance — differential + schedule-exploration harness
//!
//! The paper's central claim is that Hinch's dataflow execution is
//! *schedule-independent*: any interleaving the central job queue
//! produces yields the same application output. This crate checks that
//! claim systematically, three ways:
//!
//! * **Differential** ([`matrix`]): every shipped application is run on
//!   the reference sequential executor ([`hinch::run_reference`], the
//!   oracle), then swept across the simulation engine (core counts ×
//!   pipeline depths × [`hinch::SchedPolicy`] schedule policies) and the
//!   native thread engine, comparing outputs byte-exactly ([`fingerprint`])
//!   and cross-checking report/trace invariants.
//! * **Metamorphic** (`tests/metamorphic.rs`): random XA-clean SPC
//!   graphs from [`randspec`] must produce schedule-independent outputs
//!   and never raise `LeaseConflict`; failures reproduce from the
//!   printed `(shape, seed, config)` triple.
//! * **Golden** (`tests/matrix_gate.rs`): a small fixed matrix whose
//!   JSON summary is committed as a fixture (`BLESS_FIXTURES=1`
//!   regenerates it).
//!
//! The `hinch-conformance` binary drives the same library from the
//! command line; `scripts/ci.sh` runs the quick gate, and
//! `scripts/conformance.sh` the full matrix. See `docs/TESTING.md`.

pub mod corpus;
pub mod fingerprint;
pub mod matrix;
pub mod randspec;
pub mod report;

pub use corpus::{ConfApp, RunOutcome, ALL};
pub use fingerprint::Digest;
pub use matrix::{run_matrix, AppSummary, Divergence, MatrixConfig, MatrixSummary};
pub use report::{render_human, to_json};
