//! `hinch-conformance` — run the differential conformance matrix.
//!
//! ```text
//! hinch-conformance                                  # quick gate matrix
//! hinch-conformance --full                           # the paper matrix
//! hinch-conformance --apps pip1,blur3 --cores 1,4 --depths 1,5 --seeds 2
//! hinch-conformance --apps pip12 --cores 4 --depths 5 --policy shuffle:12648431 --no-native
//! ```
//!
//! Exit status: 0 when every run conforms, 1 on any divergence, 2 on
//! usage errors. `--format json` prints a deterministic document that is
//! byte-identical across runs of the same configuration and seed.

use conformance::{render_human, run_matrix, to_json, ConfApp, MatrixConfig};
use hinch::SchedPolicy;

const USAGE: &str = "usage: hinch-conformance [options]

options:
  --full               run the full paper matrix (all apps, cores 1,2,4,9,
                       depths 1,2,5, 8 seeds, 30 frames)
  --apps a,b,..|all    applications to run (default: gate set pip1,blur3,pip12)
  --cores 1,4          sim core counts
  --depths 1,5         pipeline depths
  --seeds N            number of seeded schedule policies
  --seed N             base seed for the seeded policies
  --frames N           iterations per run
  --workers 1,4        native-engine worker counts
  --no-native          skip the native-engine sweep
  --policy P           run exactly one schedule policy
                       (default|fifo|lifo|shuffle:N|perturb:N)
  --format human|json  output format (default human)

apps: pip1 pip2 jpip1 jpip2 blur3 blur5 pip12 jpip12 blur35 mosaic telescope";

struct Args {
    cfg: MatrixConfig,
    json: bool,
}

fn parse_usize_list(raw: &str, flag: &str) -> Result<Vec<usize>, String> {
    raw.split(',')
        .map(|p| {
            p.trim()
                .parse::<usize>()
                .map_err(|e| format!("{flag}: {e}"))
        })
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut cfg = MatrixConfig::gate();
    let mut json = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--full" => cfg = MatrixConfig::full(),
            "--apps" => {
                let raw = value()?;
                if raw == "all" {
                    cfg.apps = conformance::ALL.to_vec();
                } else {
                    cfg.apps = raw
                        .split(',')
                        .map(|id| {
                            ConfApp::parse(id.trim())
                                .ok_or_else(|| format!("unknown app '{}'", id.trim()))
                        })
                        .collect::<Result<_, _>>()?;
                }
            }
            "--cores" => cfg.cores = parse_usize_list(&value()?, "--cores")?,
            "--depths" => cfg.depths = parse_usize_list(&value()?, "--depths")?,
            "--workers" => cfg.workers = parse_usize_list(&value()?, "--workers")?,
            "--no-native" => cfg.workers.clear(),
            "--seeds" => cfg.seeds = value()?.parse().map_err(|e| format!("--seeds: {e}"))?,
            "--seed" => cfg.base_seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--frames" => cfg.frames = value()?.parse().map_err(|e| format!("--frames: {e}"))?,
            "--policy" => {
                let raw = value()?;
                let policy = SchedPolicy::parse(&raw)
                    .ok_or_else(|| format!("unknown policy '{raw}' (see --help)"))?;
                cfg.policy_override = Some(vec![policy]);
            }
            "--format" => {
                json = match value()?.as_str() {
                    "human" => false,
                    "json" => true,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if cfg.apps.is_empty() {
        return Err("--apps selected no applications".into());
    }
    Ok(Args { cfg, json })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return;
            }
            eprintln!("error: {msg}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let summary = run_matrix(&args.cfg);
    let rendered = if args.json {
        to_json(&summary)
    } else {
        render_human(&summary)
    };
    print!("{rendered}");
    if !summary.passed() {
        std::process::exit(1);
    }
}
