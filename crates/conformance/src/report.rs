//! Deterministic renderings of a [`MatrixSummary`].
//!
//! The JSON form is hand-rolled with alphabetically ordered keys and no
//! wall-clock values, so two runs of the same configuration produce
//! byte-identical documents — `scripts/ci.sh` compares them with `cmp`.

use crate::matrix::{AppSummary, Divergence, MatrixConfig, MatrixSummary};
use std::fmt::Write;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_list<T, F: FnMut(&T) -> String>(items: &[T], f: F) -> String {
    let parts: Vec<String> = items.iter().map(f).collect();
    format!("[{}]", parts.join(","))
}

fn divergence_json(d: &Divergence, cfg: &MatrixConfig) -> String {
    format!(
        "{{\"app\":\"{}\",\"cores\":{},\"depth\":{},\"detail\":\"{}\",\"engine\":\"{}\",\"kind\":\"{}\",\"policy\":\"{}\",\"reproduce\":\"{}\"}}",
        d.app,
        d.cores,
        d.depth,
        json_escape(&d.detail),
        d.engine,
        d.kind,
        json_escape(&d.policy),
        json_escape(&d.reproduce(cfg)),
    )
}

fn app_json(a: &AppSummary, cfg: &MatrixConfig) -> String {
    let digests: Vec<String> = a.sim_digests.iter().map(|d| d.to_string()).collect();
    format!(
        "{{\"app\":\"{}\",\"divergences\":{},\"native_runs\":{},\"oracle\":{{\"digest\":\"{}\",\"iterations\":{},\"jobs\":{},\"reconfigs\":{}}},\"sim_digests\":{},\"sim_runs\":{}}}",
        a.app,
        json_list(&a.divergences, |d| divergence_json(d, cfg)),
        a.native_runs,
        a.oracle_digest,
        a.oracle_iterations,
        a.oracle_jobs,
        a.oracle_reconfigs,
        json_list(&digests, |d| format!("\"{d}\"")),
        a.sim_runs,
    )
}

/// Render the summary as a deterministic JSON document.
pub fn to_json(s: &MatrixSummary) -> String {
    let cfg = &s.config;
    let apps_ids: Vec<String> = cfg.apps.iter().map(|a| a.id().to_string()).collect();
    let config = format!(
        "{{\"apps\":{},\"base_seed\":{},\"cores\":{},\"depths\":{},\"frames\":{},\"policies\":{},\"seeds\":{},\"workers\":{}}}",
        json_list(&apps_ids, |a| format!("\"{a}\"")),
        cfg.base_seed,
        json_list(&cfg.cores, |c| c.to_string()),
        json_list(&cfg.depths, |d| d.to_string()),
        cfg.frames,
        json_list(&cfg.policies(), |p| format!("\"{}\"", p.label())),
        cfg.seeds,
        json_list(&cfg.workers, |w| w.to_string()),
    );
    let divergences = s.divergences().count();
    format!(
        "{{\"apps\":{},\"config\":{},\"divergences\":{},\"status\":\"{}\",\"total_runs\":{}}}\n",
        json_list(&s.apps, |a| app_json(a, cfg)),
        config,
        divergences,
        if s.passed() { "pass" } else { "fail" },
        s.total_runs,
    )
}

/// Render the summary for humans.
pub fn render_human(s: &MatrixSummary) -> String {
    let cfg = &s.config;
    let mut out = format!(
        "conformance matrix: {} apps × cores {:?} × depths {:?} × {} policies, {} frames\n",
        cfg.apps.len(),
        cfg.cores,
        cfg.depths,
        cfg.policies().len(),
        cfg.frames,
    );
    for a in &s.apps {
        let verdict = if a.divergences.is_empty() {
            "OK"
        } else {
            "FAIL"
        };
        let _ = writeln!(
            out,
            "  {:<10} oracle {}  sim {:>3} runs ({} digest{})  native {} runs  {}",
            a.app,
            a.oracle_digest,
            a.sim_runs,
            a.sim_digests.len(),
            if a.sim_digests.len() == 1 { "" } else { "s" },
            a.native_runs,
            verdict,
        );
    }
    let divergences: Vec<&Divergence> = s.divergences().collect();
    if divergences.is_empty() {
        let _ = writeln!(
            out,
            "PASS: {} runs, all outputs conform to the reference oracle",
            s.total_runs
        );
    } else {
        let _ = writeln!(out, "FAIL: {} divergences", divergences.len());
        for d in divergences {
            let _ = writeln!(
                out,
                "  {} {} cores={} depth={} policy={} [{}]: {}\n    reproduce: {}",
                d.app,
                d.engine,
                d.cores,
                d.depth,
                d.policy,
                d.kind,
                d.detail,
                d.reproduce(cfg),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Digest;
    use std::collections::BTreeSet;

    fn tiny_summary() -> MatrixSummary {
        let config = MatrixConfig {
            apps: vec![crate::corpus::ConfApp::parse("pip1").unwrap()],
            cores: vec![1],
            depths: vec![1],
            seeds: 1,
            base_seed: 7,
            frames: 2,
            workers: vec![],
            policy_override: None,
        };
        MatrixSummary {
            config,
            apps: vec![AppSummary {
                app: "pip1",
                oracle_digest: Digest(0xab),
                oracle_iterations: 2,
                oracle_jobs: 10,
                oracle_reconfigs: 0,
                sim_runs: 4,
                native_runs: 0,
                sim_digests: BTreeSet::from([Digest(0xab)]),
                divergences: vec![],
            }],
            total_runs: 5,
        }
    }

    #[test]
    fn json_is_stable_and_balanced() {
        let s = tiny_summary();
        let a = to_json(&s);
        let b = to_json(&s);
        assert_eq!(a, b);
        assert_eq!(
            a.matches('{').count() + a.matches('[').count(),
            a.matches('}').count() + a.matches(']').count()
        );
        assert!(a.contains("\"status\":\"pass\""));
        assert!(a.contains("\"digest\":\"00000000000000ab\""));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn escaping_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn human_rendering_reports_divergences_with_reproduction() {
        let mut s = tiny_summary();
        s.apps[0].divergences.push(Divergence {
            app: "pip1",
            engine: "sim",
            cores: 1,
            depth: 1,
            policy: "lifo".into(),
            kind: "output",
            detail: "digest mismatch".into(),
        });
        let text = render_human(&s);
        assert!(text.contains("FAIL: 1 divergences"), "{text}");
        assert!(text.contains("reproduce: hinch-conformance"), "{text}");
    }
}
