//! The application corpus: every shipped app spec behind one uniform
//! build–run–collect interface.
//!
//! Thirteen applications ship with the repository: the paper's six
//! static apps (PiP-1/2, JPiP-1/2, Blur-3x3/5x5), its three
//! reconfigurable variants (PiP-12, JPiP-12, Blur-35), the two
//! extensions (Mosaic, Telescope), and the tile-granular *fused*
//! variants of the JPiP apps (decode+IDCT merged per color field — same
//! pixels, different graph). The harness reduces each run to the same
//! shape —
//! `ports[p][frame] -> bytes` — whatever the app actually produces:
//! video planes for the media apps, the bit-exact integrated spectrum
//! for the telescope.
//!
//! Captures and input assets are cached process-wide per application
//! family (regenerating and re-encoding the input videos dominates
//! host-side cost), which means two concurrent runs of the same family
//! would stomp each other's capture buffers. All run functions therefore
//! serialize on a process-wide lock; the harness is about schedule
//! diversity *inside* a run, not about running the matrix itself in
//! parallel.

use crate::fingerprint::{digest_ports, spectrum_frame, Digest};
use apps::experiment::{self, App, AppConfig};
use apps::{mosaic, telescope, AppAssets};
use hinch::engine::{
    run_native as hinch_run_native, run_reference as hinch_run_reference, run_sim as hinch_run_sim,
    RunConfig,
};
use hinch::{GraphSpec, HinchError, RefReport, RunReport, SchedPolicy, SimReport};
use parking_lot::Mutex;
use spacecake::Machine;
use std::sync::Arc;

/// One of the thirteen shipped applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConfApp {
    Experiment(App),
    /// A static JPiP app with tile-granular decode+IDCT fusion. Same
    /// output pixels as the unfused graph by construction — which makes
    /// it a pure differential subject: every engine/schedule cell must
    /// stay fingerprint-equal to its own reference run, and that run is
    /// byte-identical to the unfused app's (checked in `apps::jpip`).
    Fused(App),
    Mosaic,
    Telescope,
}

/// Every shipped application, in presentation order.
pub const ALL: [ConfApp; 13] = [
    ConfApp::Experiment(App::Pip1),
    ConfApp::Experiment(App::Pip2),
    ConfApp::Experiment(App::Jpip1),
    ConfApp::Experiment(App::Jpip2),
    ConfApp::Experiment(App::Blur3),
    ConfApp::Experiment(App::Blur5),
    ConfApp::Experiment(App::Pip12),
    ConfApp::Experiment(App::Jpip12),
    ConfApp::Experiment(App::Blur35),
    ConfApp::Fused(App::Jpip1),
    ConfApp::Fused(App::Jpip2),
    ConfApp::Mosaic,
    ConfApp::Telescope,
];

impl ConfApp {
    /// Stable machine-readable identifier (CLI `--apps`, JSON key).
    pub fn id(self) -> &'static str {
        match self {
            ConfApp::Experiment(App::Pip1) => "pip1",
            ConfApp::Experiment(App::Pip2) => "pip2",
            ConfApp::Experiment(App::Jpip1) => "jpip1",
            ConfApp::Experiment(App::Jpip2) => "jpip2",
            ConfApp::Experiment(App::Blur3) => "blur3",
            ConfApp::Experiment(App::Blur5) => "blur5",
            ConfApp::Experiment(App::Pip12) => "pip12",
            ConfApp::Experiment(App::Jpip12) => "jpip12",
            ConfApp::Experiment(App::Blur35) => "blur35",
            ConfApp::Fused(App::Jpip1) => "jpip1-fused",
            ConfApp::Fused(App::Jpip2) => "jpip2-fused",
            ConfApp::Fused(_) => unreachable!("fusion is JPiP-only"),
            ConfApp::Mosaic => "mosaic",
            ConfApp::Telescope => "telescope",
        }
    }

    /// Human label (paper figure names where applicable).
    pub fn label(self) -> &'static str {
        match self {
            ConfApp::Experiment(a) => a.label(),
            ConfApp::Fused(App::Jpip1) => "JPiP-1 (fused)",
            ConfApp::Fused(App::Jpip2) => "JPiP-2 (fused)",
            ConfApp::Fused(_) => unreachable!("fusion is JPiP-only"),
            ConfApp::Mosaic => "Mosaic",
            ConfApp::Telescope => "Telescope",
        }
    }

    /// Inverse of [`ConfApp::id`].
    pub fn parse(s: &str) -> Option<ConfApp> {
        ALL.into_iter().find(|a| a.id() == s)
    }

    /// Does this application reconfigure itself mid-run? Reconfigurable
    /// apps are schedule-independent only at pipeline depth 1; at deeper
    /// pipelines the *toggle boundary* legitimately depends on when the
    /// manager entry polls the event (see `matrix`).
    pub fn is_reconfig(self) -> bool {
        matches!(
            self,
            ConfApp::Experiment(App::Pip12 | App::Jpip12 | App::Blur35)
        )
    }

    /// The static applications a reconfigurable run must decompose into:
    /// each output frame of PiP-12 is byte-identical to that frame of
    /// either PiP-1 or PiP-2, and so on (empty for static apps).
    pub fn counterparts(self) -> Vec<ConfApp> {
        match self {
            ConfApp::Experiment(a) => a
                .static_counterparts()
                .iter()
                .map(|&c| ConfApp::Experiment(c))
                .collect(),
            _ => Vec::new(),
        }
    }
}

/// `ports[p][frame]` — the complete output of one run.
pub type Ports = Vec<Vec<Vec<u8>>>;

/// A run's report plus its collected output.
pub struct RunOutcome<R> {
    pub report: R,
    pub output: Ports,
}

impl<R> RunOutcome<R> {
    pub fn digest(&self) -> Digest {
        digest_ports(&self.output)
    }
}

/// Process-wide run lock: capture buffers are shared per app family.
fn run_lock() -> &'static Mutex<()> {
    static LOCK: Mutex<()> = Mutex::new(());
    &LOCK
}

fn mosaic_assets() -> Arc<AppAssets> {
    static CACHE: Mutex<Option<Arc<AppAssets>>> = Mutex::new(None);
    CACHE.lock().get_or_insert_with(AppAssets::new).clone()
}

fn telescope_assets() -> Arc<AppAssets> {
    static CACHE: Mutex<Option<Arc<AppAssets>>> = Mutex::new(None);
    CACHE.lock().get_or_insert_with(AppAssets::new).clone()
}

enum Collector {
    /// Frames of capture set `"out"` on `ports` ports.
    Frames {
        assets: Arc<AppAssets>,
        ports: usize,
    },
    /// The telescope's integrated spectrum, one bit-exact frame.
    Spectrum(Box<telescope::TelescopeApp>),
}

impl Collector {
    fn collect(&self) -> Ports {
        match self {
            Collector::Frames { assets, ports } => {
                (0..*ports).map(|p| assets.captured("out", p)).collect()
            }
            Collector::Spectrum(app) => {
                vec![vec![spectrum_frame(&telescope::mean_spectrum(app))]]
            }
        }
    }
}

/// Build `app` with cleared captures. Must run under the corpus lock.
fn build(app: ConfApp, frames: u64) -> (GraphSpec, Collector) {
    match app {
        ConfApp::Experiment(a) => {
            let built = experiment::build(AppConfig::small(a).frames(frames));
            let ports = built.capture_ports;
            (
                built.spec,
                Collector::Frames {
                    assets: built.assets,
                    ports,
                },
            )
        }
        ConfApp::Fused(a) => {
            let built = experiment::build_fused(AppConfig::small(a).frames(frames));
            let ports = built.capture_ports;
            (
                built.spec,
                Collector::Frames {
                    assets: built.assets,
                    ports,
                },
            )
        }
        ConfApp::Mosaic => {
            let assets = mosaic_assets();
            let app =
                mosaic::build_on(&mosaic::MosaicConfig::small(4), assets).expect("mosaic compiles");
            app.assets.clear_captures();
            let assets = app.assets;
            (app.elaborated.spec, Collector::Frames { assets, ports: 3 })
        }
        ConfApp::Telescope => {
            let assets = telescope_assets();
            let app = telescope::build_on(&telescope::TelescopeConfig::small(), assets)
                .expect("telescope compiles");
            app.assets.clear_captures();
            (
                app.elaborated.spec.clone(),
                Collector::Spectrum(Box::new(app)),
            )
        }
    }
}

/// Run `app` on the reference sequential executor (the oracle).
pub fn run_reference(app: ConfApp, frames: u64) -> Result<RunOutcome<RefReport>, HinchError> {
    let _guard = run_lock().lock();
    let (spec, collector) = build(app, frames);
    let report = hinch_run_reference(&spec, &RunConfig::new(frames))?;
    Ok(RunOutcome {
        report,
        output: collector.collect(),
    })
}

/// Run `app` on the simulation engine: `cores` SpaceCAKE cores, the
/// given pipeline depth and schedule policy.
pub fn run_sim(
    app: ConfApp,
    frames: u64,
    cores: usize,
    depth: usize,
    policy: SchedPolicy,
) -> Result<RunOutcome<SimReport>, HinchError> {
    let _guard = run_lock().lock();
    let (spec, collector) = build(app, frames);
    let mut machine = Machine::with_cores(cores);
    let cfg = RunConfig::new(frames).pipeline_depth(depth).sched(policy);
    let report = hinch_run_sim(&spec, &cfg, &mut machine)?;
    Ok(RunOutcome {
        report,
        output: collector.collect(),
    })
}

/// Like [`run_sim`], with a flight recorder attached; returns the trace
/// events for invariant cross-checks.
pub fn run_sim_traced(
    app: ConfApp,
    frames: u64,
    cores: usize,
    depth: usize,
    policy: SchedPolicy,
) -> Result<(RunOutcome<SimReport>, Vec<trace::TraceEvent>), HinchError> {
    let _guard = run_lock().lock();
    let (spec, collector) = build(app, frames);
    let mut machine = Machine::with_cores(cores);
    let recorder = trace::Recorder::new(trace::Clock::VirtualCycles);
    let cfg = RunConfig::new(frames)
        .pipeline_depth(depth)
        .sched(policy)
        .trace(recorder.sink());
    let report = hinch_run_sim(&spec, &cfg, &mut machine)?;
    Ok((
        RunOutcome {
            report,
            output: collector.collect(),
        },
        recorder.events(),
    ))
}

/// Run `app` on the native engine with real worker threads.
pub fn run_native(
    app: ConfApp,
    frames: u64,
    workers: usize,
    depth: usize,
    policy: SchedPolicy,
) -> Result<RunOutcome<RunReport>, HinchError> {
    let _guard = run_lock().lock();
    let (spec, collector) = build(app, frames);
    let cfg = RunConfig::new(frames)
        .pipeline_depth(depth)
        .workers(workers)
        .sched(policy);
    let report = hinch_run_native(&spec, &cfg)?;
    Ok(RunOutcome {
        report,
        output: collector.collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_and_are_unique() {
        for app in ALL {
            assert_eq!(ConfApp::parse(app.id()), Some(app), "{}", app.label());
        }
        let mut ids: Vec<_> = ALL.iter().map(|a| a.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), ALL.len());
        assert_eq!(ConfApp::parse("nope"), None);
    }

    #[test]
    fn reconfig_apps_have_two_counterparts() {
        for app in ALL {
            let n = app.counterparts().len();
            assert_eq!(n, if app.is_reconfig() { 2 } else { 0 }, "{}", app.id());
        }
    }

    #[test]
    fn reference_and_sim_agree_on_a_static_app() {
        let frames = 4;
        let oracle = run_reference(ConfApp::Experiment(App::Blur3), frames).unwrap();
        assert_eq!(oracle.report.iterations, frames);
        let sim = run_sim(
            ConfApp::Experiment(App::Blur3),
            frames,
            2,
            2,
            SchedPolicy::Lifo,
        )
        .unwrap();
        assert_eq!(sim.report.iterations, frames);
        assert_eq!(oracle.digest(), sim.digest());
        assert_eq!(oracle.report.jobs_executed, sim.report.jobs_executed);
    }

    #[test]
    fn telescope_output_is_one_bitexact_spectrum_frame() {
        let frames = 4;
        let a = run_reference(ConfApp::Telescope, frames).unwrap();
        let b = run_sim(ConfApp::Telescope, frames, 3, 2, SchedPolicy::Shuffle(9)).unwrap();
        assert_eq!(a.output.len(), 1);
        assert_eq!(a.output[0].len(), 1);
        assert_eq!(a.digest(), b.digest());
    }
}
