//! Per-node cost estimates feeding the SPC model.
//!
//! Lookup order for a node labelled `main/blend1#3` of class `blend`:
//! exact instance label → base name (copy suffix stripped) → class
//! default → global default. Calibration from a simulation profile fills
//! the exact labels, so predictions for *other* core counts reuse the
//! measured single-core behaviour — the workflow the SP@CE front-end
//! envisions (measure once, explore parallelizations analytically).

use hinch::report::{NodeProfile, SimReport};
use std::collections::HashMap;

/// Cost database: cycles per invocation for graph nodes.
#[derive(Debug, Clone, Default)]
pub struct CostDb {
    exact: HashMap<String, f64>,
    class_default: HashMap<String, f64>,
    default: f64,
}

impl CostDb {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the fallback cost for nodes with no other estimate.
    pub fn with_default(mut self, cycles: f64) -> Self {
        self.default = cycles;
        self
    }

    /// Cost estimate for one exact instance label.
    pub fn set(&mut self, label: impl Into<String>, cycles: f64) -> &mut Self {
        self.exact.insert(label.into(), cycles);
        self
    }

    /// Cost estimate for every node of a class (used when no instance
    /// measurement exists).
    pub fn set_class(&mut self, class: impl Into<String>, cycles: f64) -> &mut Self {
        self.class_default.insert(class.into(), cycles);
        self
    }

    /// Calibrate from a simulation run: every node's mean cycles per
    /// invocation become exact estimates.
    pub fn from_profile(report: &SimReport) -> Self {
        let mut db = Self::new();
        for (label, profile) in &report.per_node {
            db.exact.insert(label.clone(), profile.mean());
        }
        db
    }

    /// Merge measured profiles into this database (exact labels only).
    pub fn absorb_profile(&mut self, per_node: &HashMap<String, NodeProfile>) -> &mut Self {
        for (label, profile) in per_node {
            self.exact.insert(label.clone(), profile.mean());
        }
        self
    }

    /// Strip the data-parallel copy suffix (`#i`, `.bj#i`) from a label.
    fn base_of(label: &str) -> &str {
        match label.find(['#']) {
            Some(pos) => {
                // also strip a crossdep block marker directly before it
                let head = &label[..pos];
                match head.rfind(".b") {
                    Some(b) if head[b + 2..].chars().all(|c| c.is_ascii_digit()) => &head[..b],
                    _ => head,
                }
            }
            None => label,
        }
    }

    /// Look up the estimate for a node.
    pub fn cost(&self, label: &str, class: &str) -> f64 {
        if let Some(&c) = self.exact.get(label) {
            return c;
        }
        if let Some(&c) = self.exact.get(Self::base_of(label)) {
            return c;
        }
        if let Some(&c) = self.class_default.get(class) {
            return c;
        }
        self.default
    }

    /// Number of exact estimates.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.class_default.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_order() {
        let mut db = CostDb::new().with_default(1.0);
        db.set_class("blend", 10.0);
        db.set("main/b", 20.0);
        db.set("main/c#2", 30.0);
        assert_eq!(db.cost("main/c#2", "blend"), 30.0); // exact
        assert_eq!(db.cost("main/b#7", "blend"), 20.0); // base name
        assert_eq!(db.cost("main/x", "blend"), 10.0); // class
        assert_eq!(db.cost("main/x", "other"), 1.0); // default
    }

    #[test]
    fn base_stripping() {
        assert_eq!(CostDb::base_of("main/w#3"), "main/w");
        assert_eq!(CostDb::base_of("main/h.b0#2"), "main/h");
        assert_eq!(CostDb::base_of("main/plain"), "main/plain");
        assert_eq!(CostDb::base_of("m.entry"), "m.entry");
        // a name containing ".b" that is not a block marker stays intact
        assert_eq!(CostDb::base_of("main/x.blend#1"), "main/x.blend");
    }

    #[test]
    fn profile_calibration() {
        let mut per_node = HashMap::new();
        per_node.insert(
            "a".to_string(),
            NodeProfile {
                jobs: 4,
                cycles: 100,
            },
        );
        per_node.insert(
            "b".to_string(),
            NodeProfile {
                jobs: 2,
                cycles: 100,
            },
        );
        let mut db = CostDb::new();
        db.absorb_profile(&per_node);
        assert_eq!(db.cost("a", "x"), 25.0);
        assert_eq!(db.cost("b", "x"), 50.0);
        assert_eq!(db.len(), 2);
    }
}
