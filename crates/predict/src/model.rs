//! The analytical SPC model.
//!
//! A [`hinch::GraphSpec`] is expanded (mirroring the run-time's slice and
//! crossdep replication, including instance naming, so calibrated costs
//! line up) into a cost tree and evaluated recursively:
//!
//! * `Seq` — times add;
//! * `Par` — the Graham/Brent contention bound per group:
//!   `max(max_i T_i(P), Σ_i W_i / P)`;
//! * `crossdep` — converted to SP form by inserting a synchronization
//!   point between the parblocks first, exactly as §3.3 prescribes for
//!   performance prediction on that non-SP structure.
//!
//! Pipeline parallelism (the run-time keeps `K` iterations in flight)
//! bounds the steady-state *period* by three terms: the machine's work
//! rate (`W/P`), the heaviest single node (a component instance runs its
//! iterations serially), and the per-iteration critical path spread over
//! `K` overlapped iterations.

use crate::cost::CostDb;
use hinch::engine::OverheadModel;
use hinch::graph::GraphSpec;

/// What to predict for.
#[derive(Debug, Clone)]
pub struct PredictConfig {
    /// Processor count (the paper sweeps 1..=9).
    pub cores: usize,
    /// Concurrent iterations (the paper uses 5).
    pub pipeline_depth: usize,
    /// Iterations (frames) in the run.
    pub iterations: u64,
    /// Run-time-system cost model (same defaults as the engines).
    pub overhead: OverheadModel,
}

impl PredictConfig {
    pub fn new(cores: usize, iterations: u64) -> Self {
        Self {
            cores,
            pipeline_depth: 5,
            iterations,
            overhead: OverheadModel::default(),
        }
    }
}

/// The prediction for one configuration.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Total work per iteration (cycles).
    pub work: f64,
    /// Critical path per iteration on infinitely many processors.
    pub span: f64,
    /// Bounded time of one iteration on `cores` processors.
    pub iteration_time: f64,
    /// Heaviest single node (per-instance serialization bound).
    pub bottleneck: f64,
    /// Steady-state period between iteration completions.
    pub period: f64,
    /// Predicted makespan for the whole run.
    pub makespan: f64,
    /// Jobs per iteration (components + manager invocations).
    pub jobs_per_iteration: u64,
}

impl Prediction {
    /// Predicted speedup versus a reference (e.g. the measured sequential
    /// cycles).
    pub fn speedup_vs(&self, reference_cycles: f64) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            reference_cycles / self.makespan
        }
    }

    /// Deadline verification (§6): can the application sustain a frame
    /// budget of `cycles_per_frame` in steady state?
    pub fn meets_deadline(&self, cycles_per_frame: f64) -> bool {
        self.period <= cycles_per_frame
    }

    /// The smallest sustainable frame budget.
    pub fn min_frame_budget(&self) -> f64 {
        self.period
    }
}

/// Expanded cost tree.
enum CTree {
    Leaf(f64),
    Seq(Vec<CTree>),
    Par(Vec<CTree>),
}

struct Builder<'a> {
    db: &'a CostDb,
    per_job: f64,
    leaves: u64,
}

impl Builder<'_> {
    fn leaf(&mut self, label: &str, class: &str) -> CTree {
        self.leaves += 1;
        CTree::Leaf(self.db.cost(label, class) + self.per_job)
    }

    fn build(&mut self, spec: &GraphSpec, suffix: &str) -> CTree {
        match spec {
            GraphSpec::Leaf(c) => {
                let label = format!("{}{}", c.name, suffix);
                self.leaf(&label, &c.class)
            }
            GraphSpec::Seq(children) => {
                CTree::Seq(children.iter().map(|c| self.build(c, suffix)).collect())
            }
            GraphSpec::Task(children) => {
                CTree::Par(children.iter().map(|c| self.build(c, suffix)).collect())
            }
            GraphSpec::Slice { n, body, .. } => CTree::Par(
                (0..*n)
                    .map(|i| self.build(body, &format!("{suffix}#{i}")))
                    .collect(),
            ),
            GraphSpec::CrossDep { n, blocks, .. } => {
                // SP transformation: a synchronization point between the
                // parblocks (§3.3) — a Seq of Par groups.
                CTree::Seq(
                    blocks
                        .iter()
                        .enumerate()
                        .map(|(j, block)| {
                            CTree::Par(
                                (0..*n)
                                    .map(|i| self.build(block, &format!("{suffix}.b{j}#{i}")))
                                    .collect(),
                            )
                        })
                        .collect(),
                )
            }
            GraphSpec::Managed { manager, body } => CTree::Seq(vec![
                self.leaf(&format!("{}.entry", manager.name), "manager"),
                self.build(body, suffix),
                self.leaf(&format!("{}.exit", manager.name), "manager"),
            ]),
            GraphSpec::Option { enabled, body, .. } => {
                if *enabled {
                    self.build(body, suffix)
                } else {
                    CTree::Seq(Vec::new())
                }
            }
        }
    }
}

fn work(t: &CTree) -> f64 {
    match t {
        CTree::Leaf(c) => *c,
        CTree::Seq(cs) | CTree::Par(cs) => cs.iter().map(work).sum(),
    }
}

fn span(t: &CTree) -> f64 {
    match t {
        CTree::Leaf(c) => *c,
        CTree::Seq(cs) => cs.iter().map(span).sum(),
        CTree::Par(cs) => cs.iter().map(span).fold(0.0, f64::max),
    }
}

/// Graham/Brent-style contention bound, applied recursively per group.
fn bounded(t: &CTree, p: f64) -> f64 {
    match t {
        CTree::Leaf(c) => *c,
        CTree::Seq(cs) => cs.iter().map(|c| bounded(c, p)).sum(),
        CTree::Par(cs) => {
            let longest = cs.iter().map(|c| bounded(c, p)).fold(0.0, f64::max);
            let area = cs.iter().map(work).sum::<f64>() / p;
            longest.max(area)
        }
    }
}

fn bottleneck(t: &CTree) -> f64 {
    match t {
        CTree::Leaf(c) => *c,
        CTree::Seq(cs) | CTree::Par(cs) => cs.iter().map(bottleneck).fold(0.0, f64::max),
    }
}

/// Predict the performance of `spec` under `cfg`, using `db` for node
/// costs.
pub fn predict(spec: &GraphSpec, db: &CostDb, cfg: &PredictConfig) -> Prediction {
    let p = cfg.cores.max(1) as f64;
    let per_job = cfg.overhead.job_base as f64
        + if cfg.cores > 1 {
            cfg.overhead.dispatch as f64
        } else {
            0.0
        };
    let mut builder = Builder {
        db,
        per_job,
        leaves: 0,
    };
    let tree = builder.build(spec, "");

    let work = work(&tree);
    let span = span(&tree);
    let iteration_time = bounded(&tree, p);
    let bottleneck = bottleneck(&tree);
    let k = cfg.pipeline_depth.max(1) as f64;
    // steady-state period: machine rate, per-instance serialization, and
    // critical-path overlap across K in-flight iterations
    let period = (work / p).max(bottleneck).max(iteration_time / k);
    let iters = cfg.iterations.max(1) as f64;
    let makespan = iteration_time + (iters - 1.0) * period;

    Prediction {
        work,
        span,
        iteration_time,
        bottleneck,
        period,
        makespan,
        jobs_per_iteration: builder.leaves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinch::component::{Component, Params, RunCtx};
    use hinch::graph::{factory, ComponentSpec};

    struct Noop;
    impl Component for Noop {
        fn class(&self) -> &'static str {
            "noop"
        }
        fn run(&mut self, _ctx: &mut RunCtx<'_>) {}
    }

    fn leaf(name: &str, outputs: &[&str], inputs: &[&str]) -> GraphSpec {
        let mut c = ComponentSpec::new(
            name,
            "noop",
            factory(
                |_p: &Params| -> Box<dyn Component> { Box::new(Noop) },
                Params::new(),
            ),
        );
        for o in outputs {
            c = c.output(*o);
        }
        for i in inputs {
            c = c.input(*i);
        }
        GraphSpec::Leaf(c)
    }

    fn db(costs: &[(&str, f64)]) -> CostDb {
        let mut db = CostDb::new().with_default(0.0);
        for (k, v) in costs {
            db.set(*k, *v);
        }
        db
    }

    fn cfg(cores: usize) -> PredictConfig {
        let mut c = PredictConfig::new(cores, 1);
        c.overhead.job_base = 0;
        c.overhead.dispatch = 0;
        c
    }

    #[test]
    fn sequential_chain_adds() {
        let g = GraphSpec::seq(vec![leaf("a", &["s"], &[]), leaf("b", &[], &["s"])]);
        let p = predict(&g, &db(&[("a", 100.0), ("b", 50.0)]), &cfg(4));
        assert_eq!(p.work, 150.0);
        assert_eq!(p.span, 150.0);
        assert_eq!(p.iteration_time, 150.0);
        assert_eq!(p.bottleneck, 100.0);
    }

    #[test]
    fn task_group_takes_max_with_contention() {
        let g = GraphSpec::task(vec![
            leaf("a", &["x"], &[]),
            leaf("b", &["y"], &[]),
            leaf("c", &["z"], &[]),
        ]);
        let d = db(&[("a", 100.0), ("b", 100.0), ("c", 100.0)]);
        // 3 tasks of 100 on 3 cores → 100; on 1 core → 300; on 2 → 150
        assert_eq!(predict(&g, &d, &cfg(3)).iteration_time, 100.0);
        assert_eq!(predict(&g, &d, &cfg(1)).iteration_time, 300.0);
        assert_eq!(predict(&g, &d, &cfg(2)).iteration_time, 150.0);
    }

    #[test]
    fn slice_copies_share_base_cost() {
        let g = GraphSpec::seq(vec![
            leaf("src", &["in"], &[]),
            GraphSpec::slice("sl", 4, leaf("w", &["out"], &["in"])),
        ]);
        // per-copy cost from the base name
        let d = db(&[("src", 40.0), ("w", 25.0)]);
        let p = predict(&g, &d, &cfg(4));
        assert_eq!(p.work, 40.0 + 4.0 * 25.0);
        assert_eq!(p.span, 40.0 + 25.0);
        assert_eq!(p.iteration_time, 40.0 + 25.0);
        assert_eq!(p.jobs_per_iteration, 5);
    }

    #[test]
    fn crossdep_is_sp_transformed() {
        let g = GraphSpec::crossdep(
            "cd",
            2,
            vec![leaf("h", &["m"], &[]), leaf("v", &[], &["m"])],
        );
        let d = db(&[("h", 10.0), ("v", 20.0)]);
        let p = predict(&g, &d, &cfg(2));
        // Seq(Par(h,h), Par(v,v)): 10 + 20 on 2 cores
        assert_eq!(p.iteration_time, 30.0);
        assert_eq!(p.work, 60.0);
        assert_eq!(p.span, 30.0);
    }

    #[test]
    fn pipeline_period_bounded_by_heaviest_node() {
        let g = GraphSpec::seq(vec![leaf("a", &["s"], &[]), leaf("b", &[], &["s"])]);
        let d = db(&[("a", 10.0), ("b", 100.0)]);
        let mut c = cfg(9);
        c.iterations = 101;
        c.pipeline_depth = 5;
        let p = predict(&g, &d, &c);
        // b serializes across iterations: period = 100
        assert_eq!(p.period, 100.0);
        assert_eq!(p.makespan, 110.0 + 100.0 * 100.0);
        assert!(p.meets_deadline(100.0));
        assert!(!p.meets_deadline(99.0));
    }

    #[test]
    fn disabled_options_cost_nothing() {
        let g = GraphSpec::seq(vec![
            leaf("a", &["s"], &[]),
            GraphSpec::option("o", false, leaf("x", &[], &["s"])),
        ]);
        let p = predict(&g, &db(&[("a", 10.0), ("x", 1000.0)]), &cfg(1));
        assert_eq!(p.work, 10.0);
    }

    #[test]
    fn rts_overheads_added_per_job() {
        let g = leaf("a", &["s"], &[]);
        let mut c = PredictConfig::new(1, 1);
        c.overhead.job_base = 7;
        c.overhead.dispatch = 100; // not charged at 1 core
        let p = predict(&g, &db(&[("a", 10.0)]), &c);
        assert_eq!(p.work, 17.0);
        let mut c2 = c.clone();
        c2.cores = 2;
        let p2 = predict(&g, &db(&[("a", 10.0)]), &c2);
        assert_eq!(p2.work, 117.0);
    }
}
