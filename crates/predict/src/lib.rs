//! # predict — analytical SPC performance prediction for XSPCL
//!
//! The SP@CE framework (the paper's Fig. 1) feeds the XSPCL specification
//! not only to the run-time system but also to a *performance estimation
//! tool* that "provides feedback for parallelization decisions" — the
//! reason XSPCL adopts the Series-Parallel Contention model in the first
//! place (§2: "SPC allows efficient performance prediction ... it can be
//! used to verify that the application meets its deadlines" and "to tune
//! application parameters"). The paper leaves that tool to a companion
//! system (PAM-SoC); this crate implements the analytical core:
//!
//! * [`cost::CostDb`] — per-node cost estimates, either hand-written or
//!   *calibrated* from a one-core simulation profile
//!   ([`cost::CostDb::from_profile`]);
//! * [`model::predict`] — recursive evaluation of the SPC tree:
//!   - sequential composition adds, parallel composition takes the
//!     maximum, bounded by the work/`P` contention term (the classic
//!     Graham/Brent bound, recursively per group),
//!   - `crossdep` groups are first converted to SP form by a
//!     synchronization point between parblocks — exactly the
//!     transformation §3.3 prescribes for prediction,
//!   - pipeline parallelism bounds the steady-state iteration period by
//!     `max(W/P, heaviest node, span/K)`;
//! * deadline verification ([`model::Prediction::meets_deadline`]) — the
//!   §6 future-work item of estimating whether the graph can sustain a
//!   frame rate, by recursive traversal of the component graph.
//!
//! The validation experiment (prediction vs. simulation across 1..=9
//! cores for the paper's applications) lives in the `bench` crate
//! (`paper-figures --predict`) and in this repo's integration tests.

pub mod cost;
pub mod model;

pub use cost::CostDb;
pub use model::{predict, PredictConfig, Prediction};
