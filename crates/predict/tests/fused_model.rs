//! Post-fusion cost-model regression.
//!
//! The fused decode+IDCT component charges exactly the split pipeline's
//! compute (work conservation, asserted at compile time in
//! `media::costs`), so the only calibrated difference between the fused
//! and unfused JPiP variants is the *memory* side of the simulator's
//! cache model. These tests pin the direction of that difference: a cost
//! database calibrated per variant must never rate the fused graph as
//! more expensive — otherwise the adapt planner's feasibility lattice
//! would silently invert when fusion lands (a deadline that was feasible
//! unfused would be reported infeasible fused).

use apps::experiment::{self, App, AppConfig};
use predict::{predict, CostDb, PredictConfig};

#[test]
fn fused_jpip_never_rates_more_expensive() {
    let cfg = AppConfig::small(App::Jpip1).frames(4);
    // Calibrate each variant from its own single-core simulation — the
    // paper's "measure once, explore analytically" workflow.
    let unfused_profile = experiment::run_sim(cfg, 1);
    let fused_profile = experiment::run_sim_fused(cfg, 1);
    let db_unfused = CostDb::from_profile(&unfused_profile);
    let db_fused = CostDb::from_profile(&fused_profile);

    let unfused = experiment::build_isolated(cfg);
    let fused = experiment::build_isolated_fused(cfg);

    let pcfg = PredictConfig::new(1, cfg.frames);
    let pu = predict(&unfused.spec, &db_unfused, &pcfg);
    let pf = predict(&fused.spec, &db_fused, &pcfg);

    // Fusion merges jobs; it does not add arithmetic. Calibrated work
    // (compute charges + simulated memory stalls) must strictly drop —
    // the coefficient planes no longer round-trip through stream buffers.
    assert!(
        pf.work < pu.work,
        "fused work {} !< unfused work {}",
        pf.work,
        pu.work
    );
    // The coefficient stage is gone: fewer jobs per iteration.
    assert!(
        pf.jobs_per_iteration < pu.jobs_per_iteration,
        "fused jobs {} !< unfused jobs {}",
        pf.jobs_per_iteration,
        pu.jobs_per_iteration
    );
    // Feasibility non-inversion on the work-bound axis: any frame budget
    // the unfused variant meets at one core, the fused variant meets too.
    assert!(
        pf.period <= pu.period,
        "fused period {} > unfused period {}",
        pf.period,
        pu.period
    );
    assert!(pf.meets_deadline(pu.min_frame_budget()));
}

#[test]
fn fused_class_rates_via_class_default_when_uncalibrated() {
    // A fused spec whose instances were never profiled must still rate
    // sensibly through the class-default fallback — the planner path for
    // variants that exist only as candidates.
    let cfg = AppConfig::small(App::Jpip1).frames(4);
    let fused = experiment::build_isolated_fused(cfg);
    let mut db = CostDb::new().with_default(10.0);
    db.set_class("jpeg_decode_idct", 50_000.0);
    let pcfg = PredictConfig::new(4, cfg.frames);
    let p = predict(&fused.spec, &db, &pcfg);
    // Three fused fields per decoded picture dominate the default-cost
    // residue, so the class default must be visible in the total.
    assert!(
        p.work >= 3.0 * 50_000.0,
        "class default not applied: work {}",
        p.work
    );
    assert!(p.period > 0.0);
}
