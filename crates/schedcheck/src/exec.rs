//! The deterministic executor.
//!
//! Modeled threads are real OS threads serialized by a token: exactly
//! one is ever runnable-and-running, everyone else parks on its own
//! condvar slot until the scheduler hands the token over. Every modeled
//! sync operation (atomic access, lock, condvar, spawn, join, cell
//! access) calls [`Execution::op`], which is the *only* place a context
//! switch can happen — so the set of reachable interleavings is exactly
//! the set of yield-point orderings, chosen by a seeded strategy.
//!
//! `op` returns with the global state lock still held; the caller
//! applies its effect (the real atomic op, the lock-table update, …)
//! under that guard and then runs uninterrupted until its next yield
//! point. "Yield before the effect" means the scheduler decides *who*
//! performs the next visible transition, which is what exhausts the
//! interesting orderings.
//!
//! Failure (assertion panic in modeled code, detected deadlock, data
//! race, step-budget livelock) aborts the whole execution: the first
//! message wins, every parked thread is woken, and each one unwinds
//! with a private [`ModelAbort`] payload at its next yield point. Code
//! under test may `catch_unwind` once (the engine does, around
//! component execution), but the very next modeled op re-panics, so
//! aborts always terminate the iteration.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::VectorClock;
use crate::rng::Rng;
use crate::{Config, Strategy};

/// Panic payload used to unwind modeled threads when an execution
/// aborts. Private: code under test can only observe "some panic".
pub(crate) struct ModelAbort;

/// Priorities assigned at spawn carry this bit so PCT change points
/// (which hand out small decreasing values) always deprioritize.
const PRIORITY_HIGH_BIT: u64 = 1 << 32;

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The executing (execution, thread id) pair for modeled operations.
/// `None` while unwinding: a panicking thread must not schedule — its
/// drop handlers fall back to passthrough primitives instead.
pub(crate) fn ctx() -> Option<(Arc<Execution>, usize)> {
    if std::thread::panicking() {
        return None;
    }
    tls_get()
}

/// Raw TLS read, valid even mid-panic (used by the panic hook).
pub(crate) fn tls_get() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn set_current(v: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

pub(crate) fn abort_panic() -> ! {
    std::panic::panic_any(ModelAbort)
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Status {
    Runnable,
    /// Parked on something modeled; the payload names it for deadlock
    /// reports ("mutex", "condvar", "join", "rwlock").
    Blocked(&'static str),
    Finished,
}

pub(crate) struct ThreadSlot {
    pub(crate) status: Status,
    pub(crate) clock: VectorClock,
    pub(crate) priority: u64,
    pub(crate) cv: Arc<Condvar>,
    pub(crate) name: String,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ObjKind {
    Atomic,
    Mutex,
    Condvar,
    RwLock,
    Cell,
}

impl ObjKind {
    fn tag(self) -> char {
        match self {
            ObjKind::Atomic => 'a',
            ObjKind::Mutex => 'm',
            ObjKind::Condvar => 'c',
            ObjKind::RwLock => 'r',
            ObjKind::Cell => 's',
        }
    }
}

/// Central bookkeeping for one modeled sync object. Mutexes use
/// `held_by`/`waiters`; rwlocks add `readers`; condvars use
/// `cv_waiters` (waiter, mutex-to-reacquire). `clock` is the object's
/// release clock (acquire operations join it); `write_clock`/
/// `read_clock` drive race detection on [`ObjKind::Cell`] accesses.
pub(crate) struct ObjectState {
    pub(crate) kind: ObjKind,
    pub(crate) held_by: Option<usize>,
    pub(crate) readers: Vec<usize>,
    pub(crate) waiters: VecDeque<(usize, bool)>,
    pub(crate) cv_waiters: Vec<(usize, usize)>,
    pub(crate) clock: VectorClock,
    pub(crate) write_clock: VectorClock,
    pub(crate) read_clock: VectorClock,
}

impl ObjectState {
    fn new(kind: ObjKind) -> Self {
        ObjectState {
            kind,
            held_by: None,
            readers: Vec::new(),
            waiters: VecDeque::new(),
            cv_waiters: Vec::new(),
            clock: VectorClock::new(),
            write_clock: VectorClock::new(),
            read_clock: VectorClock::new(),
        }
    }
}

struct TraceEntry {
    step: u64,
    tid: usize,
    op: &'static str,
    obj: Option<(ObjKind, usize)>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ResolvedStrategy {
    RandomWalk,
    Pct,
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadSlot>,
    pub(crate) objects: Vec<ObjectState>,
    pub(crate) current: usize,
    pub(crate) steps: u64,
    max_steps: u64,
    preemptions: u32,
    preemption_bound: Option<u32>,
    pub(crate) rng: Rng,
    strategy: ResolvedStrategy,
    /// PCT: step indices at which the currently-stepping thread's
    /// priority drops to the next low value.
    change_points: Vec<u64>,
    next_low: u64,
    trace: VecDeque<TraceEntry>,
    trace_cap: usize,
    pub(crate) failure: Option<String>,
    pub(crate) unfinished: usize,
    /// (waiter tid, joined-on tid) pairs parked in `join`.
    pub(crate) join_waiters: Vec<(usize, usize)>,
}

impl ExecState {
    fn record(&mut self, tid: usize, op: &'static str, obj: Option<usize>) {
        if self.trace_cap == 0 {
            return;
        }
        if self.trace.len() == self.trace_cap {
            self.trace.pop_front();
        }
        self.trace.push_back(TraceEntry {
            step: self.steps,
            tid,
            op,
            obj: obj.map(|o| (self.objects[o].kind, o)),
        });
    }

    pub(crate) fn render_trace(&self) -> Vec<String> {
        self.trace
            .iter()
            .map(|e| {
                let obj = match e.obj {
                    Some((k, o)) => format!(" {}{}", k.tag(), o),
                    None => String::new(),
                };
                format!(
                    "#{} t{}({}) {}{}",
                    e.step, e.tid, self.threads[e.tid].name, e.op, obj
                )
            })
            .collect()
    }

    pub(crate) fn thread_label(&self, tid: usize) -> String {
        format!("t{}({})", tid, self.threads[tid].name)
    }

    fn deadlock_message(&self) -> String {
        let parts: Vec<String> = self
            .threads
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let s = match t.status {
                    Status::Runnable => "runnable",
                    Status::Blocked(r) => r,
                    Status::Finished => "finished",
                };
                format!("t{i}({}): {s}", t.name)
            })
            .collect();
        format!(
            "deadlock: no runnable thread — every live thread is parked [{}]",
            parts.join(", ")
        )
    }

    /// Pick who holds the token next. `me` is the thread at the yield
    /// point (may itself be blocked or finished). `None` means nobody
    /// is runnable — a deadlock.
    fn pick_next(&mut self, me: usize) -> Option<usize> {
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            return None;
        }
        let me_runnable = self.threads.get(me).map(|t| t.status) == Some(Status::Runnable);
        match self.strategy {
            ResolvedStrategy::RandomWalk => {
                if me_runnable {
                    let may_preempt = self.preemption_bound.is_none_or(|b| self.preemptions < b);
                    if runnable.len() == 1 || !may_preempt || !self.rng.chance(1, 4) {
                        return Some(me);
                    }
                    let pick = runnable[self.rng.below(runnable.len())];
                    if pick != me {
                        self.preemptions += 1;
                    }
                    Some(pick)
                } else {
                    Some(runnable[self.rng.below(runnable.len())])
                }
            }
            ResolvedStrategy::Pct => {
                if let Some(pos) = self.change_points.iter().position(|&s| s == self.steps) {
                    self.change_points.swap_remove(pos);
                    if me_runnable {
                        self.threads[me].priority = self.next_low;
                        self.next_low = self.next_low.saturating_sub(1);
                    }
                }
                let pick = runnable
                    .into_iter()
                    .max_by_key(|&t| self.threads[t].priority)
                    .expect("runnable is non-empty");
                if me_runnable && pick != me {
                    self.preemptions += 1;
                }
                Some(pick)
            }
        }
    }
}

static GENERATION: AtomicU64 = AtomicU64::new(0);

pub(crate) struct Execution {
    state: Mutex<ExecState>,
    done_cv: Condvar,
    abort: AtomicBool,
    /// Distinguishes object registrations across iterations: sync
    /// objects cache their id stamped with the generation that
    /// assigned it (see `OnceId` in `sync.rs`).
    pub(crate) generation: u64,
}

impl Execution {
    pub(crate) fn new(cfg: &Config, strategy: ResolvedStrategy, seed: u64) -> Arc<Execution> {
        let mut rng = Rng::new(seed);
        let depth = match cfg.strategy {
            Strategy::Pct { depth } => depth,
            _ => 3,
        };
        let mut change_points = Vec::new();
        if strategy == ResolvedStrategy::Pct {
            // PCT samples its priority-change points over an estimated
            // schedule length. The horizon is a pure function of the seed
            // (a geometric spread, 16..=32768 steps) rather than a
            // carried-over measurement of earlier iterations: seeds whose
            // horizon matches the actual run length place change points
            // well, and crucially a `Failure::seed` alone reconstructs
            // the exact schedule — nothing about the failing iteration's
            // history is needed to replay it.
            let horizon = 16u64 << (seed % 12);
            for _ in 1..depth.max(1) {
                change_points.push(1 + rng.next_u64() % horizon);
            }
        }
        let main_priority = rng.next_u64() | PRIORITY_HIGH_BIT;
        Arc::new(Execution {
            state: Mutex::new(ExecState {
                threads: vec![ThreadSlot {
                    status: Status::Runnable,
                    clock: VectorClock::new(),
                    priority: main_priority,
                    cv: Arc::new(Condvar::new()),
                    name: "main".to_string(),
                }],
                objects: Vec::new(),
                current: 0,
                steps: 0,
                max_steps: cfg.max_steps,
                preemptions: 0,
                preemption_bound: cfg.preemption_bound,
                rng,
                strategy,
                change_points,
                next_low: PRIORITY_HIGH_BIT - 1,
                trace: VecDeque::new(),
                trace_cap: cfg.trace_capacity,
                failure: None,
                unfinished: 1,
                join_waiters: Vec::new(),
            }),
            done_cv: Condvar::new(),
            abort: AtomicBool::new(false),
            generation: GENERATION.fetch_add(1, Ordering::Relaxed) + 1,
        })
    }

    pub(crate) fn aborted(&self) -> bool {
        self.abort.load(Ordering::SeqCst)
    }

    pub(crate) fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record a failure (first one wins) and dissolve the execution:
    /// every parked thread wakes and unwinds at its next yield point.
    pub(crate) fn fail_locked(&self, st: &mut ExecState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        self.abort.store(true, Ordering::SeqCst);
        for t in &st.threads {
            t.cv.notify_all();
        }
        self.done_cv.notify_all();
    }

    pub(crate) fn fail(&self, msg: String) {
        let mut st = self.lock_state();
        self.fail_locked(&mut st, msg);
    }

    /// Fail and unwind the calling modeled thread immediately.
    pub(crate) fn fail_now(self: &Arc<Self>, mut st: MutexGuard<'_, ExecState>, msg: String) -> ! {
        self.fail_locked(&mut st, msg);
        drop(st);
        abort_panic()
    }

    fn wait_for_token<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        me: usize,
    ) -> MutexGuard<'a, ExecState> {
        let cv = st.threads[me].cv.clone();
        while st.current != me && !self.aborted() {
            st = cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if self.aborted() {
            drop(st);
            abort_panic();
        }
        st
    }

    /// The yield point. Returns with the state lock held so the caller
    /// applies its effect atomically at this step.
    pub(crate) fn op(
        self: &Arc<Self>,
        me: usize,
        opname: &'static str,
        obj: Option<usize>,
    ) -> MutexGuard<'_, ExecState> {
        if self.aborted() {
            abort_panic();
        }
        let mut st = self.lock_state();
        st.record(me, opname, obj);
        st.steps += 1;
        if st.steps > st.max_steps && st.failure.is_none() {
            let msg = format!(
                "step budget {} exhausted — livelock or unbounded spin (raise Config::max_steps if the scenario is legitimately this long)",
                st.max_steps
            );
            self.fail_locked(&mut st, msg);
        }
        if self.aborted() {
            drop(st);
            abort_panic();
        }
        match st.pick_next(me) {
            None => {
                let msg = st.deadlock_message();
                self.fail_now(st, msg)
            }
            Some(next) if next != me => {
                st.current = next;
                st.threads[next].cv.notify_all();
                self.wait_for_token(st, me)
            }
            _ => st,
        }
    }

    /// Park `me`. The caller has already set `threads[me].status` to
    /// `Blocked` and enqueued itself wherever its waker will look; the
    /// waker marks it `Runnable` and the scheduler eventually hands the
    /// token back. Returns with the lock held, token owned.
    pub(crate) fn block<'a>(
        self: &'a Arc<Self>,
        mut st: MutexGuard<'a, ExecState>,
        me: usize,
    ) -> MutexGuard<'a, ExecState> {
        debug_assert!(matches!(st.threads[me].status, Status::Blocked(_)));
        match st.pick_next(me) {
            None => {
                let msg = st.deadlock_message();
                self.fail_now(st, msg)
            }
            Some(next) => {
                st.current = next;
                st.threads[next].cv.notify_all();
                self.wait_for_token(st, me)
            }
        }
    }

    /// Register a freshly spawned thread. Caller holds the `op` guard
    /// for the spawning thread (`parent`).
    pub(crate) fn add_thread(st: &mut ExecState, parent: usize, name: String) -> usize {
        let tid = st.threads.len();
        st.threads[parent].clock.tick(parent);
        let mut clock = st.threads[parent].clock.clone();
        clock.tick(tid);
        let priority = st.rng.next_u64() | PRIORITY_HIGH_BIT;
        st.threads.push(ThreadSlot {
            status: Status::Runnable,
            clock,
            priority,
            cv: Arc::new(Condvar::new()),
            name,
        });
        st.unfinished += 1;
        tid
    }

    pub(crate) fn register_object(st: &mut ExecState, kind: ObjKind) -> usize {
        st.objects.push(ObjectState::new(kind));
        st.objects.len() - 1
    }

    /// First thing a spawned OS thread does: park until the scheduler
    /// picks it for the first time. Returns false when the execution
    /// aborted before that — the closure must not run.
    pub(crate) fn wait_for_start(&self, me: usize) -> bool {
        let mut st = self.lock_state();
        let cv = st.threads[me].cv.clone();
        while st.current != me && !self.aborted() {
            st = cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        !self.aborted()
    }

    /// Mark `me` finished, wake its joiners, hand the token on.
    pub(crate) fn finish_thread(&self, me: usize) {
        let mut st = self.lock_state();
        st.threads[me].status = Status::Finished;
        st.unfinished -= 1;
        let mut i = 0;
        while i < st.join_waiters.len() {
            if st.join_waiters[i].1 == me {
                let (w, _) = st.join_waiters.swap_remove(i);
                st.threads[w].status = Status::Runnable;
            } else {
                i += 1;
            }
        }
        if st.unfinished == 0 {
            self.done_cv.notify_all();
            return;
        }
        if self.aborted() {
            // Token discipline is dissolving; make sure nobody sleeps
            // through the abort.
            for t in &st.threads {
                t.cv.notify_all();
            }
            return;
        }
        if st.current == me {
            match st.pick_next(me) {
                Some(next) => {
                    st.current = next;
                    st.threads[next].cv.notify_all();
                }
                None => {
                    let msg = st.deadlock_message();
                    self.fail_locked(&mut st, msg);
                }
            }
        }
    }

    /// Driver side: wait until every modeled thread (including main's
    /// slot) has finished.
    pub(crate) fn wait_all_finished(&self) {
        let mut st = self.lock_state();
        while st.unfinished > 0 {
            st = self.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Happens-before edges for sync objects: `release` publishes the
/// thread's history into the object clock (and advances the thread so
/// later events aren't ordered with the release), `acquire` pulls the
/// object's accumulated history into the thread.
pub(crate) fn release_edge(st: &mut ExecState, me: usize, obj: usize) {
    let tc = st.threads[me].clock.clone();
    st.objects[obj].clock.join(&tc);
    st.threads[me].clock.tick(me);
}

pub(crate) fn acquire_edge(st: &mut ExecState, me: usize, obj: usize) {
    let oc = st.objects[obj].clock.clone();
    st.threads[me].clock.join(&oc);
}

/// Install the process-wide panic hook that converts a real panic on a
/// modeled thread into an execution failure *before* unwinding begins,
/// so drop handlers running during the unwind see the abort flag and
/// fall back to passthrough primitives. Chained: panics outside any
/// model execution go to the previous hook untouched, and the quiet
/// [`ModelAbort`] unwinds print nothing.
pub(crate) fn install_panic_hook() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ModelAbort>().is_some() {
                return;
            }
            if let Some((exec, tid)) = tls_get() {
                let msg = payload_str(info.payload());
                let loc = info
                    .location()
                    .map(|l| format!(" at {}:{}", l.file(), l.line()))
                    .unwrap_or_default();
                let label = exec.lock_state().thread_label(tid);
                exec.fail(format!("{label} panicked{loc}: {msg}"));
            } else {
                prev(info);
            }
        }));
    });
}

pub(crate) fn payload_str(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
