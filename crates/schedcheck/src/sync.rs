//! Modeled sync primitives, API-compatible with the subset of
//! `std::sync::atomic` / `parking_lot` / `std::thread` the engine uses
//! (via the `hinch::sync` facade).
//!
//! Every operation is a scheduler yield point when the calling OS
//! thread belongs to a model execution; outside one (or while
//! unwinding) each primitive falls back to a real *passthrough*
//! implementation:
//!
//! - atomics store their value in a real `std` atomic (SeqCst), so the
//!   modeled and passthrough paths always agree on the value;
//! - `Mutex`/`RwLock` pair the model's lock table with a real spin bit
//!   that both paths acquire, so exclusion holds even when an aborting
//!   execution mixes modeled and unwinding threads;
//! - passthrough `Condvar::wait` returns immediately (a legal spurious
//!   wakeup) and passthrough notify is a no-op — an aborting execution
//!   wakes every parked thread itself.
//!
//! Memory model: sequentially consistent. Orderings are accepted and
//! ignored; atomics create acquire/release happens-before edges for
//! the race detector regardless of the ordering argument. That never
//! reports a false race; it can miss bugs that only exist under weak
//! memory. The engine's protocols are documented SeqCst, so this is
//! the semantics we actually want to check.

use std::cell::UnsafeCell;
use std::io;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::AtomicU64 as RawU64;
use std::sync::atomic::Ordering as RawOrdering;
use std::sync::Arc;
use std::time::Duration;

use crate::exec::{
    self, abort_panic, acquire_edge, ctx, release_edge, ExecState, Execution, ModelAbort, ObjKind,
    Status,
};

pub use std::sync::atomic::Ordering;

// ---- lazy per-execution object registration ------------------------------

/// A sync object's model identity, assigned on first use within an
/// execution. Packed `(generation << 20) | (id + 1)` so objects that
/// outlive one iteration (statics, leaked Arcs) re-register cleanly in
/// the next: a stale stamp from a previous generation simply misses.
pub(crate) struct OnceId(RawU64);

const ID_BITS: u32 = 20;
const ID_MASK: u64 = (1 << ID_BITS) - 1;

impl OnceId {
    pub(crate) const fn new() -> Self {
        OnceId(RawU64::new(0))
    }

    pub(crate) fn get(&self, exec: &Arc<Execution>, kind: ObjKind) -> usize {
        let packed = self.0.load(RawOrdering::Relaxed);
        if packed != 0 && packed >> ID_BITS == exec.generation {
            return (packed & ID_MASK) as usize - 1;
        }
        let mut st = exec.lock_state();
        let packed = self.0.load(RawOrdering::Relaxed);
        if packed != 0 && packed >> ID_BITS == exec.generation {
            return (packed & ID_MASK) as usize - 1;
        }
        let id = Execution::register_object(&mut st, kind);
        assert!((id as u64) < ID_MASK, "too many modeled sync objects");
        self.0.store(
            (exec.generation << ID_BITS) | (id as u64 + 1),
            RawOrdering::Relaxed,
        );
        id
    }
}

// ---- atomics -------------------------------------------------------------

macro_rules! model_atomic {
    ($name:ident, $raw:ident, $ty:ty) => {
        pub struct $name {
            id: OnceId,
            v: std::sync::atomic::$raw,
        }

        impl $name {
            pub const fn new(v: $ty) -> Self {
                Self {
                    id: OnceId::new(),
                    v: std::sync::atomic::$raw::new(v),
                }
            }

            fn on_op(&self, op: &'static str, edge: Edge) {
                if let Some((exec, me)) = ctx() {
                    let id = self.id.get(&exec, ObjKind::Atomic);
                    let mut st = exec.op(me, op, Some(id));
                    match edge {
                        Edge::Acquire => acquire_edge(&mut st, me, id),
                        Edge::Release => release_edge(&mut st, me, id),
                        Edge::Both => {
                            acquire_edge(&mut st, me, id);
                            release_edge(&mut st, me, id);
                        }
                    }
                }
            }

            pub fn load(&self, _order: Ordering) -> $ty {
                self.on_op("atomic.load", Edge::Acquire);
                self.v.load(RawOrdering::SeqCst)
            }

            pub fn store(&self, val: $ty, _order: Ordering) {
                self.on_op("atomic.store", Edge::Release);
                self.v.store(val, RawOrdering::SeqCst)
            }

            pub fn swap(&self, val: $ty, _order: Ordering) -> $ty {
                self.on_op("atomic.swap", Edge::Both);
                self.v.swap(val, RawOrdering::SeqCst)
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                self.on_op("atomic.cas", Edge::Both);
                self.v
                    .compare_exchange(current, new, RawOrdering::SeqCst, RawOrdering::SeqCst)
            }

            pub fn compare_exchange_weak(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                // No spurious failures in the model: fewer uninteresting
                // retry interleavings, identical success semantics.
                self.compare_exchange(current, new, success, failure)
            }

            pub fn into_inner(self) -> $ty {
                self.v.into_inner()
            }

            pub fn get_mut(&mut self) -> &mut $ty {
                self.v.get_mut()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple(stringify!($name))
                    .field(&self.v.load(RawOrdering::SeqCst))
                    .finish()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }
    };
}

macro_rules! model_atomic_int {
    ($name:ident, $raw:ident, $ty:ty) => {
        model_atomic!($name, $raw, $ty);

        impl $name {
            pub fn fetch_add(&self, val: $ty, _order: Ordering) -> $ty {
                self.on_op("atomic.rmw", Edge::Both);
                self.v.fetch_add(val, RawOrdering::SeqCst)
            }

            pub fn fetch_sub(&self, val: $ty, _order: Ordering) -> $ty {
                self.on_op("atomic.rmw", Edge::Both);
                self.v.fetch_sub(val, RawOrdering::SeqCst)
            }

            pub fn fetch_max(&self, val: $ty, _order: Ordering) -> $ty {
                self.on_op("atomic.rmw", Edge::Both);
                self.v.fetch_max(val, RawOrdering::SeqCst)
            }

            pub fn fetch_min(&self, val: $ty, _order: Ordering) -> $ty {
                self.on_op("atomic.rmw", Edge::Both);
                self.v.fetch_min(val, RawOrdering::SeqCst)
            }
        }
    };
}

enum Edge {
    Acquire,
    Release,
    Both,
}

model_atomic!(AtomicBool, AtomicBool, bool);
model_atomic_int!(AtomicU32, AtomicU32, u32);
model_atomic_int!(AtomicU64, AtomicU64, u64);
model_atomic_int!(AtomicUsize, AtomicUsize, usize);

impl AtomicBool {
    pub fn fetch_or(&self, val: bool, _order: Ordering) -> bool {
        self.on_op("atomic.rmw", Edge::Both);
        self.v.fetch_or(val, RawOrdering::SeqCst)
    }

    pub fn fetch_and(&self, val: bool, _order: Ordering) -> bool {
        self.on_op("atomic.rmw", Edge::Both);
        self.v.fetch_and(val, RawOrdering::SeqCst)
    }
}

pub mod atomic {
    pub use super::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

// ---- mutex ---------------------------------------------------------------

/// Run the model-side part of a guard release. An aborting execution
/// panics inside `op`; the caller must still release its real bit, so
/// the unwind is caught, the bit released by the caller, and the abort
/// re-raised.
fn guarded_model<R>(f: impl FnOnce() -> R) -> Result<R, Box<dyn std::any::Any + Send>> {
    catch_unwind(AssertUnwindSafe(f))
}

pub struct Mutex<T: ?Sized> {
    id: OnceId,
    /// Real exclusion bit; both the modeled and the passthrough path
    /// acquire it, so the data is protected even mid-abort.
    locked: std::sync::atomic::AtomicBool,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex {
            id: OnceId::new(),
            locked: std::sync::atomic::AtomicBool::new(false),
            data: UnsafeCell::new(t),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    fn acquire_bit(&self) {
        while self
            .locked
            .compare_exchange(false, true, RawOrdering::Acquire, RawOrdering::Relaxed)
            .is_err()
        {
            std::thread::yield_now();
        }
    }

    fn release_bit(&self) {
        self.locked.store(false, RawOrdering::Release);
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some((exec, me)) = ctx() {
            let id = self.id.get(&exec, ObjKind::Mutex);
            let mut st = exec.op(me, "mutex.lock", Some(id));
            if st.objects[id].held_by.is_some() {
                st.objects[id].waiters.push_back((me, true));
                st.threads[me].status = Status::Blocked("mutex");
                st = exec.block(st, me);
                debug_assert_eq!(st.objects[id].held_by, Some(me));
            } else {
                st.objects[id].held_by = Some(me);
            }
            acquire_edge(&mut st, me, id);
        }
        self.acquire_bit();
        MutexGuard {
            lock: self,
            bit_held: true,
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if let Some((exec, me)) = ctx() {
            let id = self.id.get(&exec, ObjKind::Mutex);
            let mut st = exec.op(me, "mutex.try_lock", Some(id));
            if st.objects[id].held_by.is_some() {
                return None;
            }
            st.objects[id].held_by = Some(me);
            acquire_edge(&mut st, me, id);
            drop(st);
            self.acquire_bit();
            return Some(MutexGuard {
                lock: self,
                bit_held: true,
            });
        }
        if self
            .locked
            .compare_exchange(false, true, RawOrdering::Acquire, RawOrdering::Relaxed)
            .is_ok()
        {
            Some(MutexGuard {
                lock: self,
                bit_held: true,
            })
        } else {
            None
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unsafe { &mut *self.data.get() }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// False while a condvar wait has custody of the lock: the guard's
    /// drop (e.g. during an abort unwind out of the wait) must not
    /// release a bit it doesn't hold.
    bit_held: bool,
    // !Send, like a real mutex guard.
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// Release a mutex in the model's lock table: transfer ownership
/// directly to a randomly chosen waiter (it wakes already owning the
/// lock), or mark it free.
fn grant_next(st: &mut ExecState, id: usize) {
    let n = st.objects[id].waiters.len();
    if n == 0 {
        st.objects[id].held_by = None;
        return;
    }
    let k = st.rng.below(n);
    let (w, _) = st.objects[id].waiters.remove(k).expect("index in bounds");
    st.objects[id].held_by = Some(w);
    st.threads[w].status = Status::Runnable;
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if !self.bit_held {
            return;
        }
        if let Some((exec, me)) = ctx() {
            let r = guarded_model(|| {
                let id = self.lock.id.get(&exec, ObjKind::Mutex);
                let mut st = exec.op(me, "mutex.unlock", Some(id));
                release_edge(&mut st, me, id);
                if st.objects[id].held_by == Some(me) {
                    grant_next(&mut st, id);
                }
            });
            self.lock.release_bit();
            if let Err(p) = r {
                resume_unwind(p);
            }
        } else {
            self.lock.release_bit();
        }
    }
}

// ---- condvar -------------------------------------------------------------

pub struct Condvar {
    id: OnceId,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { id: OnceId::new() }
    }

    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some((exec, me)) = ctx() {
            let mid = guard.lock.id.get(&exec, ObjKind::Mutex);
            let cid = self.id.get(&exec, ObjKind::Condvar);
            guard.lock.release_bit();
            guard.bit_held = false;
            let mut st = exec.op(me, "condvar.wait", Some(cid));
            release_edge(&mut st, me, mid);
            debug_assert_eq!(st.objects[mid].held_by, Some(me));
            grant_next(&mut st, mid);
            st.objects[cid].cv_waiters.push((me, mid));
            st.threads[me].status = Status::Blocked("condvar");
            st = exec.block(st, me);
            // A notifier moved us through the mutex queue; by the time
            // the scheduler picked us, the mutex was granted to us.
            debug_assert_eq!(st.objects[mid].held_by, Some(me));
            acquire_edge(&mut st, me, cid);
            acquire_edge(&mut st, me, mid);
            drop(st);
            guard.lock.acquire_bit();
            guard.bit_held = true;
        } else {
            // Passthrough: an immediate spurious wakeup. Code written
            // against condvars must re-check its predicate anyway.
            guard.lock.release_bit();
            guard.bit_held = false;
            std::thread::yield_now();
            guard.lock.acquire_bit();
            guard.bit_held = true;
        }
    }

    pub fn notify_one(&self) {
        self.notify(false)
    }

    pub fn notify_all(&self) {
        self.notify(true)
    }

    fn notify(&self, all: bool) {
        if let Some((exec, me)) = ctx() {
            let cid = self.id.get(&exec, ObjKind::Condvar);
            let opname = if all {
                "condvar.notify_all"
            } else {
                "condvar.notify_one"
            };
            let mut st = exec.op(me, opname, Some(cid));
            release_edge(&mut st, me, cid);
            loop {
                let n = st.objects[cid].cv_waiters.len();
                if n == 0 {
                    break;
                }
                let k = if all { 0 } else { st.rng.below(n) };
                let (w, mid) = st.objects[cid].cv_waiters.swap_remove(k);
                // Move the waiter through the mutex: grant directly if
                // free, else queue it (it stays blocked until the
                // holder releases).
                if st.objects[mid].held_by.is_none() {
                    st.objects[mid].held_by = Some(w);
                    st.threads[w].status = Status::Runnable;
                } else {
                    st.objects[mid].waiters.push_back((w, true));
                    st.threads[w].status = Status::Blocked("mutex");
                }
                if !all {
                    break;
                }
            }
        }
        // Passthrough: no-op. Execution teardown wakes parked threads
        // itself via the abort broadcast.
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

// ---- rwlock --------------------------------------------------------------

const WRITER: usize = usize::MAX;

pub struct RwLock<T: ?Sized> {
    id: OnceId,
    /// Real protection: 0 free, WRITER exclusive, else reader count.
    state: std::sync::atomic::AtomicUsize,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock {
            id: OnceId::new(),
            state: std::sync::atomic::AtomicUsize::new(0),
            data: UnsafeCell::new(t),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    fn acquire_read_bit(&self) {
        loop {
            let s = self.state.load(RawOrdering::Relaxed);
            if s != WRITER
                && self
                    .state
                    .compare_exchange(s, s + 1, RawOrdering::Acquire, RawOrdering::Relaxed)
                    .is_ok()
            {
                return;
            }
            std::thread::yield_now();
        }
    }

    fn release_read_bit(&self) {
        self.state.fetch_sub(1, RawOrdering::Release);
    }

    fn acquire_write_bit(&self) {
        while self
            .state
            .compare_exchange(0, WRITER, RawOrdering::Acquire, RawOrdering::Relaxed)
            .is_err()
        {
            std::thread::yield_now();
        }
    }

    fn release_write_bit(&self) {
        self.state.store(0, RawOrdering::Release);
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if let Some((exec, me)) = ctx() {
            let id = self.id.get(&exec, ObjKind::RwLock);
            let mut st = exec.op(me, "rwlock.read", Some(id));
            if st.objects[id].held_by.is_some() {
                st.objects[id].waiters.push_back((me, false));
                st.threads[me].status = Status::Blocked("rwlock");
                st = exec.block(st, me);
                debug_assert!(st.objects[id].readers.contains(&me));
            } else {
                st.objects[id].readers.push(me);
            }
            acquire_edge(&mut st, me, id);
        }
        self.acquire_read_bit();
        RwLockReadGuard { lock: self }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if let Some((exec, me)) = ctx() {
            let id = self.id.get(&exec, ObjKind::RwLock);
            let mut st = exec.op(me, "rwlock.write", Some(id));
            if st.objects[id].held_by.is_some() || !st.objects[id].readers.is_empty() {
                st.objects[id].waiters.push_back((me, true));
                st.threads[me].status = Status::Blocked("rwlock");
                st = exec.block(st, me);
                debug_assert_eq!(st.objects[id].held_by, Some(me));
            } else {
                st.objects[id].held_by = Some(me);
            }
            acquire_edge(&mut st, me, id);
        }
        self.acquire_write_bit();
        RwLockWriteGuard { lock: self }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// If the rwlock just became free, admit the next wave: a randomly
/// chosen waiting writer, or every waiting reader.
fn grant_rw(st: &mut ExecState, id: usize) {
    if st.objects[id].held_by.is_some() || !st.objects[id].readers.is_empty() {
        return;
    }
    let n = st.objects[id].waiters.len();
    if n == 0 {
        return;
    }
    let k = st.rng.below(n);
    if st.objects[id].waiters[k].1 {
        let (w, _) = st.objects[id].waiters.remove(k).expect("index in bounds");
        st.objects[id].held_by = Some(w);
        st.threads[w].status = Status::Runnable;
    } else {
        let mut i = 0;
        while i < st.objects[id].waiters.len() {
            if !st.objects[id].waiters[i].1 {
                let (w, _) = st.objects[id].waiters.remove(i).expect("index in bounds");
                st.objects[id].readers.push(w);
                st.threads[w].status = Status::Runnable;
            } else {
                i += 1;
            }
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((exec, me)) = ctx() {
            let r = guarded_model(|| {
                let id = self.lock.id.get(&exec, ObjKind::RwLock);
                let mut st = exec.op(me, "rwlock.unread", Some(id));
                release_edge(&mut st, me, id);
                st.objects[id].readers.retain(|&t| t != me);
                grant_rw(&mut st, id);
            });
            self.lock.release_read_bit();
            if let Err(p) = r {
                resume_unwind(p);
            }
        } else {
            self.lock.release_read_bit();
        }
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((exec, me)) = ctx() {
            let r = guarded_model(|| {
                let id = self.lock.id.get(&exec, ObjKind::RwLock);
                let mut st = exec.op(me, "rwlock.unwrite", Some(id));
                release_edge(&mut st, me, id);
                if st.objects[id].held_by == Some(me) {
                    st.objects[id].held_by = None;
                    grant_rw(&mut st, id);
                }
            });
            self.lock.release_write_bit();
            if let Err(p) = r {
                resume_unwind(p);
            }
        } else {
            self.lock.release_write_bit();
        }
    }
}

// ---- race-checked cell ---------------------------------------------------

pub mod cell {
    use super::*;

    /// An `UnsafeCell` whose accesses are vector-clock race-checked in
    /// model runs. The engine's invariant-bearing cells (queue slots,
    /// the quiesce window pointer) route through this so "the SAFETY
    /// comment says the atomics order these accesses" becomes a checked
    /// claim instead of a trusted one.
    pub struct ModelCell<T: ?Sized> {
        id: OnceId,
        v: UnsafeCell<T>,
    }

    unsafe impl<T: ?Sized + Send> Send for ModelCell<T> {}
    unsafe impl<T: ?Sized + Send> Sync for ModelCell<T> {}

    impl<T> ModelCell<T> {
        pub const fn new(v: T) -> Self {
            ModelCell {
                id: OnceId::new(),
                v: UnsafeCell::new(v),
            }
        }

        pub fn into_inner(self) -> T {
            self.v.into_inner()
        }
    }

    impl<T: ?Sized> ModelCell<T> {
        fn check(&self, op: &'static str, write: bool) {
            if let Some((exec, me)) = ctx() {
                let id = self.id.get(&exec, ObjKind::Cell);
                let mut st = exec.op(me, op, Some(id));
                let tc = st.threads[me].clock.clone();
                let racy_write = !st.objects[id].write_clock.leq(&tc);
                let racy_read = write && !st.objects[id].read_clock.leq(&tc);
                if racy_write || racy_read {
                    let label = st.thread_label(me);
                    let kind = if write { "write" } else { "read" };
                    let other = if racy_write { "write" } else { "read" };
                    let msg = format!(
                        "data race: {label} {kind} of cell s{id} is concurrent with an earlier {other} (no happens-before edge orders them)"
                    );
                    exec.fail_now(st, msg);
                }
                let own = tc.get(me);
                if write {
                    st.objects[id].write_clock.set_max(me, own);
                } else {
                    st.objects[id].read_clock.set_max(me, own);
                }
            }
        }

        /// Race-checked shared read access.
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            self.check("cell.read", false);
            f(self.v.get())
        }

        /// Race-checked exclusive access.
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            self.check("cell.write", true);
            f(self.v.get())
        }

        pub fn get_mut(&mut self) -> &mut T {
            unsafe { &mut *self.v.get() }
        }
    }

    impl<T: Default> Default for ModelCell<T> {
        fn default() -> Self {
            ModelCell::new(T::default())
        }
    }

    impl<T: ?Sized> std::fmt::Debug for ModelCell<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("ModelCell { .. }")
        }
    }
}

// ---- threads -------------------------------------------------------------

pub mod thread {
    use super::*;

    enum Inner<T> {
        Real(std::thread::JoinHandle<T>),
        Model {
            exec: Arc<Execution>,
            tid: usize,
            result: Arc<std::sync::Mutex<Option<std::thread::Result<T>>>>,
            real: Option<std::thread::JoinHandle<()>>,
        },
    }

    pub struct JoinHandle<T> {
        inner: Inner<T>,
    }

    impl<T> JoinHandle<T> {
        pub fn join(self) -> std::thread::Result<T> {
            match self.inner {
                Inner::Real(h) => h.join(),
                Inner::Model {
                    exec,
                    tid,
                    result,
                    real,
                } => {
                    let model_ctx = match ctx() {
                        Some((cur, me)) if Arc::ptr_eq(&cur, &exec) => Some(me),
                        _ => None,
                    };
                    if let Some(me) = model_ctx {
                        let mut st = exec.op(me, "join", None);
                        if st.threads[tid].status != Status::Finished {
                            st.join_waiters.push((me, tid));
                            st.threads[me].status = Status::Blocked("join");
                            st = exec.block(st, me);
                        }
                        debug_assert_eq!(st.threads[tid].status, Status::Finished);
                        let child_clock = st.threads[tid].clock.clone();
                        st.threads[me].clock.join(&child_clock);
                        drop(st);
                        if let Some(h) = real {
                            let _ = h.join();
                        }
                        match result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                            Some(r) => r,
                            // Child unwound via abort without a value.
                            None => abort_panic(),
                        }
                    } else {
                        // Passthrough (unwinding, or a foreign thread):
                        // spin until the model slot finishes — abort
                        // teardown guarantees it will.
                        loop {
                            {
                                let st = exec.lock_state();
                                if st.threads[tid].status == Status::Finished {
                                    break;
                                }
                            }
                            std::thread::yield_now();
                        }
                        if let Some(h) = real {
                            let _ = h.join();
                        }
                        match result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                            Some(r) => r,
                            None => Err(Box::new("model execution aborted")
                                as Box<dyn std::any::Any + Send>),
                        }
                    }
                }
            }
        }

        pub fn is_finished(&self) -> bool {
            match &self.inner {
                Inner::Real(h) => h.is_finished(),
                Inner::Model { exec, tid, .. } => {
                    exec.lock_state().threads[*tid].status == Status::Finished
                }
            }
        }
    }

    #[derive(Debug, Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        pub fn new() -> Builder {
            Builder { name: None }
        }

        pub fn name(mut self, name: String) -> Builder {
            self.name = Some(name);
            self
        }

        pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            if let Some((exec, me)) = ctx() {
                let name = self.name.unwrap_or_else(|| "model".to_string());
                let tid = {
                    let mut st = exec.op(me, "spawn", None);
                    Execution::add_thread(&mut st, me, name.clone())
                };
                let result = Arc::new(std::sync::Mutex::new(None));
                let stash = Arc::clone(&result);
                let child_exec = Arc::clone(&exec);
                let real = std::thread::Builder::new().name(name).spawn(move || {
                    exec::set_current(Some((Arc::clone(&child_exec), tid)));
                    if child_exec.wait_for_start(tid) {
                        match catch_unwind(AssertUnwindSafe(f)) {
                            Ok(v) => {
                                *stash.lock().unwrap_or_else(|e| e.into_inner()) = Some(Ok(v));
                            }
                            Err(p) => {
                                // Real panics were recorded as failures
                                // by the panic hook before unwinding;
                                // quiet aborts stash nothing.
                                if p.downcast_ref::<ModelAbort>().is_none() {
                                    *stash.lock().unwrap_or_else(|e| e.into_inner()) = Some(Err(p));
                                }
                            }
                        }
                    }
                    exec::set_current(None);
                    child_exec.finish_thread(tid);
                })?;
                Ok(JoinHandle {
                    inner: Inner::Model {
                        exec,
                        tid,
                        result,
                        real: Some(real),
                    },
                })
            } else {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                Ok(JoinHandle {
                    inner: Inner::Real(b.spawn(f)?),
                })
            }
        }
    }

    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn thread")
    }

    /// A modeled yield: a pure scheduling point with no effect.
    pub fn yield_now() {
        if let Some((exec, me)) = ctx() {
            drop(exec.op(me, "yield", None));
        } else {
            std::thread::yield_now();
        }
    }

    /// Time does not pass in the model; sleeping is just a yield.
    pub fn sleep(_dur: Duration) {
        yield_now();
    }
}

/// Modeled machines report unbounded parallelism so `workers.min(...)`
/// clamps resolve to the configured worker count, keeping scenarios
/// host-independent.
pub fn hardware_parallelism(_default: usize) -> usize {
    usize::MAX
}
