//! Vector clocks for happens-before tracking.
//!
//! One entry per modeled thread; clocks grow lazily as threads spawn.
//! Missing entries read as 0, so a clock taken before a spawn is
//! automatically ⊑ any clock that has seen the new thread.

#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VectorClock(Vec<u64>);

impl VectorClock {
    pub(crate) fn new() -> Self {
        VectorClock(Vec::new())
    }

    pub(crate) fn get(&self, i: usize) -> u64 {
        self.0.get(i).copied().unwrap_or(0)
    }

    fn grow_to(&mut self, i: usize) {
        if self.0.len() <= i {
            self.0.resize(i + 1, 0);
        }
    }

    /// Advance thread `i`'s own component.
    pub(crate) fn tick(&mut self, i: usize) {
        self.grow_to(i);
        self.0[i] += 1;
    }

    /// Raise component `i` to at least `v`.
    pub(crate) fn set_max(&mut self, i: usize, v: u64) {
        self.grow_to(i);
        if self.0[i] < v {
            self.0[i] = v;
        }
    }

    /// Pointwise maximum: `self ← self ⊔ other`.
    pub(crate) fn join(&mut self, other: &VectorClock) {
        self.grow_to(other.0.len().saturating_sub(1));
        for (i, &v) in other.0.iter().enumerate() {
            if self.0[i] < v {
                self.0[i] = v;
            }
        }
    }

    /// `self ⊑ other`: everything self has seen, other has seen too.
    pub(crate) fn leq(&self, other: &VectorClock) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| v <= other.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_and_leq() {
        let mut a = VectorClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(2);
        assert!(!a.leq(&b));
        assert!(!b.leq(&a));
        b.join(&a);
        assert!(a.leq(&b));
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 0);
        assert_eq!(b.get(2), 1);
    }

    #[test]
    fn empty_is_bottom() {
        let empty = VectorClock::new();
        let mut c = VectorClock::new();
        c.tick(5);
        assert!(empty.leq(&c));
        assert!(empty.leq(&empty));
    }
}
