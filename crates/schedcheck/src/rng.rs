//! Seeded PRNG for schedule decisions (splitmix64).
//!
//! Every scheduling choice in an execution draws from one of these,
//! seeded per iteration, so a failing interleaving is replayed exactly
//! by re-running with the reported seed. Deliberately not the vendored
//! `rand` shim: the checker must not share generator state with the
//! code under test.

#[derive(Clone, Debug)]
pub(crate) struct Rng(u64);

impl Rng {
    pub(crate) fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`. `n` must be non-zero.
    pub(crate) fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// True with probability `num/den`.
    pub(crate) fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

/// Derive the per-iteration seed from the configured base seed, so each
/// iteration explores a different schedule yet any single iteration is
/// reproducible from its derived seed alone.
pub(crate) fn mix(seed: u64, iteration: u64) -> u64 {
    let mut z = seed
        .wrapping_add(iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x243F_6A88_85A3_08D3);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
