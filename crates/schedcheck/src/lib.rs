//! Deterministic concurrency model checking for the engine's sync
//! layer (loom/shuttle-style, self-contained).
//!
//! [`explore`] runs a closure many times; each iteration executes the
//! closure's threads *serialized* — real OS threads passing a token, so
//! only one runs at a time — with the interleaving chosen at every
//! modeled sync operation by a seeded strategy:
//!
//! - **random walk**: mostly run on, preempt with probability 1/4 at
//!   each yield point (optionally bounded by `preemption_bound`);
//! - **PCT** (probabilistic concurrency testing): random thread
//!   priorities plus `depth − 1` random priority-change points —
//!   strong at finding bugs that need few ordering constraints.
//!
//! The default [`Strategy::Mixed`] alternates the two per iteration.
//!
//! Failures — panics in modeled code, deadlocks (every live thread
//! parked), step-budget livelocks, and vector-clock data races on
//! [`sync::cell::ModelCell`] accesses — abort the iteration and report
//! a [`Failure`] carrying the per-iteration seed, the strategy, and
//! the tail of the schedule trace. Re-running the same closure with the
//! same seed and strategy replays the identical interleaving
//! ([`replay`]), which is what makes these bugs debuggable.
//!
//! The engine is wired in through the `hinch::sync` facade: normal
//! builds re-export std/parking_lot primitives, `--cfg hinch_model`
//! builds route every engine sync op through [`sync`] here. See
//! `docs/TESTING.md` § "Model checking".

mod clock;
mod exec;
mod rng;
pub mod sync;

use exec::{ModelAbort, ResolvedStrategy};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Schedule-exploration strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Mostly run on; preempt with probability 1/4 at each yield point.
    RandomWalk,
    /// Randomized thread priorities with `depth − 1` priority-change
    /// points ("A Randomized Scheduler with Probabilistic Guarantees of
    /// Finding Bugs", Burckhardt et al.).
    Pct { depth: u32 },
    /// Alternate random walk (even iterations) and PCT depth 3 (odd).
    Mixed,
}

impl Strategy {
    fn resolve(self, iteration: u64) -> ResolvedStrategy {
        match self {
            Strategy::RandomWalk => ResolvedStrategy::RandomWalk,
            Strategy::Pct { .. } => ResolvedStrategy::Pct,
            Strategy::Mixed => {
                if iteration.is_multiple_of(2) {
                    ResolvedStrategy::RandomWalk
                } else {
                    ResolvedStrategy::Pct
                }
            }
        }
    }

    fn label(self, iteration: u64) -> &'static str {
        match self.resolve(iteration) {
            ResolvedStrategy::RandomWalk => "random-walk",
            ResolvedStrategy::Pct => "pct",
        }
    }
}

/// Exploration budget and knobs.
#[derive(Clone, Debug)]
pub struct Config {
    /// How many schedules to try.
    pub iterations: u64,
    /// Per-iteration step budget; exceeding it is reported as a
    /// livelock failure.
    pub max_steps: u64,
    /// Random-walk only: cap on involuntary context switches per
    /// iteration (`None` = unbounded).
    pub preemption_bound: Option<u32>,
    pub strategy: Strategy,
    /// Base seed; iteration `i` runs with `mix(seed, i)`.
    pub seed: u64,
    /// How many trailing schedule steps a failure report keeps.
    pub trace_capacity: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            iterations: 256,
            max_steps: 100_000,
            preemption_bound: None,
            strategy: Strategy::Mixed,
            seed: 0xC0FFEE,
            trace_capacity: 48,
        }
    }
}

impl Config {
    pub fn iterations(mut self, n: u64) -> Self {
        self.iterations = n;
        self
    }

    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    pub fn preemption_bound(mut self, n: u32) -> Self {
        self.preemption_bound = Some(n);
        self
    }

    pub fn strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
}

/// Read an iteration budget from the environment (`SCHEDCHECK_ITERS`),
/// falling back to `default`. CI smoke gates pass a small budget; deep
/// runs (`MODEL_DEEP=1` in `scripts/ci.sh`) raise it.
pub fn env_iters(default: u64) -> u64 {
    std::env::var("SCHEDCHECK_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// A failing interleaving.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Per-iteration seed: replaying with this seed and `strategy`
    /// reproduces the exact schedule.
    pub seed: u64,
    pub iteration: u64,
    pub strategy: &'static str,
    pub message: String,
    /// Tail of the schedule trace, oldest first.
    pub trace: Vec<String>,
    pub steps: u64,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "model failure (iteration {}, seed {:#018x}, strategy {}):",
            self.iteration, self.seed, self.strategy
        )?;
        writeln!(f, "  {}", self.message)?;
        writeln!(f, "last {} of {} steps:", self.trace.len(), self.steps)?;
        for line in &self.trace {
            writeln!(f, "  {line}")?;
        }
        write!(
            f,
            "replay: SCHEDCHECK_REPLAY={:#x} (env), or schedcheck::replay(&cfg, {:#x}, f)",
            self.seed, self.seed
        )
    }
}

impl std::error::Error for Failure {}

/// Summary of a clean exploration.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    pub iterations: u64,
    pub total_steps: u64,
}

fn run_one<F: Fn()>(
    cfg: &Config,
    strategy: ResolvedStrategy,
    seed: u64,
    f: &F,
) -> (u64, Option<String>, Vec<String>) {
    exec::install_panic_hook();
    let exec = exec::Execution::new(cfg, strategy, seed);
    exec::set_current(Some((exec.clone(), 0)));
    let result = catch_unwind(AssertUnwindSafe(f));
    exec::set_current(None);
    if let Err(payload) = result {
        if payload.downcast_ref::<ModelAbort>().is_none() {
            // The panic hook normally records this first; keep a
            // fallback for panics that somehow bypassed it.
            exec.fail(format!(
                "main thread panicked: {}",
                exec::payload_str(payload.as_ref())
            ));
        }
    }
    exec.finish_thread(0);
    exec.wait_all_finished();
    let st = exec.lock_state();
    (st.steps, st.failure.clone(), st.render_trace())
}

/// Explore schedules of `f` under `cfg`. Returns the first failing
/// interleaving, or a [`Report`] if every iteration ran clean.
///
/// If `SCHEDCHECK_REPLAY=<hex seed>` is set in the environment, runs
/// exactly that seed once under each strategy instead of exploring —
/// the fast path for debugging a reported failure.
pub fn explore<F: Fn()>(cfg: &Config, f: F) -> Result<Report, Failure> {
    if let Ok(v) = std::env::var("SCHEDCHECK_REPLAY") {
        let raw = v.trim().trim_start_matches("0x");
        let seed = u64::from_str_radix(raw, 16)
            .unwrap_or_else(|_| panic!("SCHEDCHECK_REPLAY must be a hex seed, got '{v}'"));
        return replay(cfg, seed, f);
    }
    let mut total_steps = 0;
    for i in 0..cfg.iterations {
        let seed = rng::mix(cfg.seed, i);
        let strategy = cfg.strategy.resolve(i);
        let (steps, failure, trace) = run_one(cfg, strategy, seed, &f);
        total_steps += steps;
        if let Some(message) = failure {
            return Err(Failure {
                seed,
                iteration: i,
                strategy: cfg.strategy.label(i),
                message,
                trace,
                steps,
            });
        }
    }
    Ok(Report {
        iterations: cfg.iterations,
        total_steps,
    })
}

/// Re-run one specific per-iteration seed (from [`Failure::seed`])
/// under both strategies. Returns the failure if it reproduces.
pub fn replay<F: Fn()>(cfg: &Config, seed: u64, f: F) -> Result<Report, Failure> {
    let mut total_steps = 0;
    for (i, strategy) in [ResolvedStrategy::RandomWalk, ResolvedStrategy::Pct]
        .into_iter()
        .enumerate()
    {
        let (steps, failure, trace) = run_one(cfg, strategy, seed, &f);
        total_steps += steps;
        if let Some(message) = failure {
            return Err(Failure {
                seed,
                iteration: i as u64,
                strategy: match strategy {
                    ResolvedStrategy::RandomWalk => "random-walk",
                    ResolvedStrategy::Pct => "pct",
                },
                message,
                trace,
                steps,
            });
        }
    }
    Ok(Report {
        iterations: 2,
        total_steps,
    })
}
