//! Model-checked adaptation plane (build with `RUSTFLAGS="--cfg hinch_model"`).
//!
//! The serving runtime's SLO controller (`crates/adapt` wired through
//! `serve::server`) runs as a collector-thread tick: reap-check via
//! `Runtime::stats`, observe a telemetry window, actuate by
//! `Runtime::inject` — all while clients concurrently submit frames,
//! inject wire events into the same manager queue, and `drain()` the
//! graph out from under it. These tests drive that exact interleaving on
//! the schedcheck executor and hold the protocol to three invariants:
//!
//! * **no deadlock** — a tick racing teardown must never strand the
//!   collector or the drainer (the explorer reports any stuck schedule
//!   with a replayable seed);
//! * **no double-apply** — one accepted decision event reconfigures the
//!   graph at most once, whatever the manager's quiescent-point poll
//!   interleaves with (`reconfigs <= accepted events`);
//! * **no torn telemetry** — the stats snapshot a tick acts on is
//!   internally consistent (`completed <= submitted`, inflight is their
//!   difference) even mid-retirement.
//!
//! Exploration of the unfaulted protocol came back clean — no new race
//! was found, so (unlike the `pr6_*` regressions in `engine_model.rs`)
//! there is no fault flag to pin here; these stay as standing model
//! coverage for the controller-tick / quiesce / drain seam.

#![cfg(hinch_model)]

use hinch::graph::{factory, ComponentSpec, GraphSpec};
use hinch::{
    Component, Event, EventAction, EventQueue, ManagerSpec, Params, RunCtx, Runtime, RuntimeConfig,
    SpawnOpts,
};
use schedcheck::{env_iters, Config};
use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};

/// The runtime's worker pools are process-global; serialize with any
/// other test building a `Runtime` (same idiom as `engine_model.rs`).
fn runtime_lock() -> StdMutexGuard<'static, ()> {
    static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| StdMutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

struct Nop;
impl Component for Nop {
    fn class(&self) -> &'static str {
        "nop"
    }
    fn run(&mut self, _ctx: &mut RunCtx<'_>) {}
}

fn nop_leaf(name: &str) -> GraphSpec {
    GraphSpec::leaf(ComponentSpec::new(
        name,
        "nop",
        factory(
            |_p: &Params| -> Box<dyn Component> { Box::new(Nop) },
            Params::new(),
        ),
    ))
}

/// The smallest reconfigurable graph: a manager on queue `mq` whose
/// `flip` rule toggles an option — the same shape the corpus apps'
/// quality options reduce to, with one job per frame so the schedule
/// space stays explorable.
fn managed_spec() -> GraphSpec {
    GraphSpec::managed(
        ManagerSpec::new("m", EventQueue::new("mq"))
            .on("flip", vec![EventAction::Toggle("opt".into())]),
        GraphSpec::seq(vec![
            nop_leaf("a"),
            GraphSpec::option("opt", false, nop_leaf("b")),
        ]),
    )
}

/// One controller tick, as the serving runtime's collector runs it:
/// reap-check via stats, sanity-check the observed window, actuate with
/// a best-effort inject. Returns the number of accepted events (0 if
/// the graph was already reaped or the inject was refused).
fn controller_tick(rt: &Runtime, id: hinch::GraphId) -> u64 {
    match rt.stats(id) {
        Ok(s) => {
            assert!(
                s.completed <= s.submitted,
                "torn stats snapshot: completed {} > submitted {}",
                s.completed,
                s.submitted
            );
            assert_eq!(
                s.inflight,
                s.submitted - s.completed,
                "torn stats snapshot: inflight disagrees with its counters"
            );
            u64::from(rt.inject(id, "mq", Event::new("flip")).is_ok())
        }
        // Governor reaped: the graph is gone, the tick holds.
        Err(_) => 0,
    }
}

/// An SLO decision racing `drain()`: the tick may observe the graph
/// alive and inject into a tenant that is quiescing, mid-teardown, or
/// already gone. Whatever interleaves, drain retires every accepted
/// frame, the decision applies at most once, and teardown is clean.
#[test]
fn slo_tick_races_drain_without_deadlock_or_double_apply() {
    let _serial = runtime_lock();
    let cfg = Config::default().iterations(env_iters(96)).seed(0xADA7);
    schedcheck::explore(&cfg, || {
        let rt = Arc::new(Runtime::new(RuntimeConfig::new(1)));
        let id = rt
            .spawn(&managed_spec(), SpawnOpts::new("g").pipeline_depth(1))
            .unwrap();
        assert_eq!(rt.submit(id, 2).unwrap(), 2);
        let controller = {
            let rt = rt.clone();
            schedcheck::sync::thread::spawn(move || controller_tick(&rt, id))
        };
        let stats = rt.drain(id).unwrap();
        let accepted = controller.join().unwrap();
        assert_eq!(stats.completed, 2, "drain retired every accepted frame");
        assert!(
            stats.reconfigs <= accepted,
            "decision double-applied: {} reconfigs from {accepted} accepted event(s)",
            stats.reconfigs
        );
        assert_eq!(rt.graph_count(), 0);
        assert_eq!(rt.queued_jobs(), 0, "race left stranded jobs");
        rt.shutdown();
    })
    .unwrap_or_else(|f| panic!("{f}"));
}

/// A controller decision racing a wire `Inject` into the same manager
/// queue while frames keep flowing: both events go through the same
/// quiescent-point poll, each applies at most once, and the graph still
/// drains to completion.
#[test]
fn slo_tick_races_wire_inject_and_submit_cleanly() {
    let _serial = runtime_lock();
    let cfg = Config::default().iterations(env_iters(96)).seed(0xADA8);
    schedcheck::explore(&cfg, || {
        let rt = Arc::new(Runtime::new(RuntimeConfig::new(1)));
        let id = rt
            .spawn(&managed_spec(), SpawnOpts::new("g").pipeline_depth(1))
            .unwrap();
        assert_eq!(rt.submit(id, 1).unwrap(), 1);
        let controller = {
            let rt = rt.clone();
            schedcheck::sync::thread::spawn(move || controller_tick(&rt, id))
        };
        let wire = {
            let rt = rt.clone();
            schedcheck::sync::thread::spawn(move || {
                u64::from(rt.inject(id, "mq", Event::new("flip")).is_ok())
            })
        };
        // The second frame's manager entry may poll zero, one or both
        // events — every outcome must stay single-apply-per-event.
        assert_eq!(rt.submit(id, 1).unwrap(), 1);
        let accepted = controller.join().unwrap() + wire.join().unwrap();
        let stats = rt.drain(id).unwrap();
        assert_eq!(stats.completed, 2, "drain retired every accepted frame");
        assert!(
            stats.reconfigs <= accepted,
            "events double-applied: {} reconfigs from {accepted} accepted event(s)",
            stats.reconfigs
        );
        assert_eq!(rt.graph_count(), 0);
        assert_eq!(rt.queued_jobs(), 0, "race left stranded jobs");
        rt.shutdown();
    })
    .unwrap_or_else(|f| panic!("{f}"));
}
