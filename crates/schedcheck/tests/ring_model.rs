//! Model-checked flight-recorder ring (build with
//! `RUSTFLAGS="--cfg hinch_model"`).
//!
//! `trace::ring` is deliberately *not* behind the `hinch::sync` facade —
//! the recorder must stay a plain-std dependency of every crate — so its
//! seqlock protocol cannot be model-checked in place. This test ports
//! the protocol verbatim onto `schedcheck::sync` atomics (same stores,
//! same loads, same validation) and lets the explorer drive a writer
//! wrapping the ring concurrently with a draining reader: a snapshot
//! must never yield a torn or duplicated event, and every recorded event
//! is either delivered exactly once or counted dropped.
//!
//! The port is the spec; `trace::ring`'s own seeded stress test
//! (`concurrent_snapshot_never_tears_or_duplicates`) checks the real
//! implementation agrees with it under hardware orderings.

#![cfg(hinch_model)]

use schedcheck::sync::atomic::{AtomicU64, Ordering};
use schedcheck::sync::thread;
use schedcheck::{env_iters, Config};
use std::sync::Arc;

/// Slots in the modeled ring — small enough that 2x-capacity writes
/// explore wraparound within the iteration budget.
const CAP: u64 = 2;
/// Events the writer records (2x capacity: every position wraps once).
const WRITES: u64 = 2 * CAP;

/// The seqlock ring, ported onto modeled atomics. Field-for-field the
/// protocol of `trace::ring::Ring` with a 2-word payload:
/// seq = 2p+1 while position p is being written, 2p+2 once committed.
struct ModelRing {
    slots: Vec<(AtomicU64, [AtomicU64; 2])>,
    head: AtomicU64,
}

impl ModelRing {
    fn new() -> Self {
        Self {
            slots: (0..CAP)
                .map(|_| (AtomicU64::new(0), [AtomicU64::new(0), AtomicU64::new(0)]))
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Single-writer record of event `(a, b)` at monotone position `p`.
    fn record(&self, p: u64, a: u64, b: u64) {
        let (seq, words) = &self.slots[(p % CAP) as usize];
        seq.store(2 * p + 1, Ordering::Relaxed);
        words[0].store(a, Ordering::Release);
        words[1].store(b, Ordering::Release);
        seq.store(2 * p + 2, Ordering::Release);
        self.head.store(p + 1, Ordering::Release);
    }

    /// Wait-free drain from `*cursor`: returns `(events, dropped)`,
    /// advancing the cursor. Mirrors `Ring::drain` — a mid-read overwrite
    /// is counted dropped, never retried.
    fn drain(&self, cursor: &mut u64) -> (Vec<(u64, u64)>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let lo = (*cursor).max(head.saturating_sub(CAP));
        let mut dropped = lo - *cursor;
        let mut events = Vec::new();
        for p in lo..head {
            let (seq, words) = &self.slots[(p % CAP) as usize];
            let s1 = seq.load(Ordering::Acquire);
            let a = words[0].load(Ordering::Acquire);
            let b = words[1].load(Ordering::Acquire);
            let s2 = seq.load(Ordering::Relaxed);
            if s1 == 2 * p + 2 && s2 == 2 * p + 2 {
                events.push((a, b));
            } else {
                dropped += 1;
            }
        }
        *cursor = head;
        (events, dropped)
    }
}

/// Payload for position `p`: a distinguishable pair, so a torn read
/// (old `a`, new `b`, or any mix across positions) breaks the relation.
fn payload(p: u64) -> (u64, u64) {
    (p, p * 3 + 1)
}

#[test]
fn snapshot_concurrent_with_wrapping_writer_never_tears_or_duplicates() {
    let cfg = Config::default().iterations(env_iters(96)).seed(0x21C6);
    schedcheck::explore(&cfg, || {
        let ring = Arc::new(ModelRing::new());
        let writer = {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for p in 0..WRITES {
                    let (a, b) = payload(p);
                    ring.record(p, a, b);
                }
            })
        };

        let mut cursor = 0u64;
        let mut received: Vec<u64> = Vec::new();
        let mut dropped = 0u64;
        let mut check = |events: Vec<(u64, u64)>| {
            for (a, b) in events {
                assert_eq!(b, a * 3 + 1, "torn event: ({a}, {b})");
                assert!(
                    received.last().is_none_or(|&last| a > last),
                    "duplicated or reordered event {a} after {received:?}"
                );
                received.push(a);
            }
        };
        // Two concurrent snapshots while the writer runs, then a final
        // one after it retires: the explorer interleaves these drains
        // with every record step.
        for _ in 0..2 {
            let (events, d) = ring.drain(&mut cursor);
            dropped += d;
            check(events);
        }
        writer.join().unwrap();
        let (events, d) = ring.drain(&mut cursor);
        dropped += d;
        check(events);

        // Accounting: every write was delivered exactly once or counted
        // dropped — nothing vanished, nothing doubled.
        assert_eq!(
            received.len() as u64 + dropped,
            WRITES,
            "received {received:?} + dropped {dropped} != {WRITES}"
        );
        // A validated slot read is the committed payload of exactly that
        // position (checked via the payload relation above); the final
        // post-join drain must see everything still in the ring.
        assert!(
            received.iter().rev().take(1).all(|&a| a == WRITES - 1),
            "final drain missed the newest event: {received:?}"
        );
    })
    .unwrap_or_else(|f| panic!("model found a ring violation: {f}"));
}
