//! The checker checking itself: seeded determinism, deadlock and
//! lost-wakeup detection on toy protocols, vector-clock race detection
//! soundness in both directions, and replay.
//!
//! These run in *normal* builds (no `--cfg hinch_model` needed): the
//! model machinery is always compiled; only the engine facade is
//! cfg-switched. The engine model tests live in `engine_model.rs`.

use schedcheck::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use schedcheck::sync::cell::ModelCell;
use schedcheck::sync::{thread, Condvar, Mutex};
use schedcheck::{explore, replay, Config, Strategy};
use std::sync::Arc;

fn cfg(iters: u64) -> Config {
    Config::default().iterations(iters).seed(0x5EED_CAFE)
}

#[test]
fn clean_two_thread_counter_passes() {
    let report = explore(&cfg(64), || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        n.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2);
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(report.iterations, 64);
    assert!(report.total_steps > 0);
}

#[test]
fn finds_atomicity_violation_in_racy_increment() {
    // Classic lost update: load + store instead of fetch_add. The
    // checker must find an interleaving where the final count is 1.
    let result = explore(&cfg(256), || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    });
    let failure = result.expect_err("model checker missed the lost update");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {failure}"
    );
    assert!(!failure.trace.is_empty(), "failure should carry a trace");
}

#[test]
fn detects_lock_order_inversion_deadlock() {
    let result = explore(&cfg(256), || {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop((_ga, _gb));
        t.join().unwrap();
    });
    let failure = result.expect_err("model checker missed the AB-BA deadlock");
    assert!(
        failure.message.contains("deadlock"),
        "unexpected failure: {failure}"
    );
}

#[test]
fn detects_lost_wakeup_in_check_then_wait() {
    // Broken parking: the waiter checks the flag, then waits — if the
    // setter's notify lands between check and wait, the wakeup is lost
    // and the waiter parks forever. (Correct code re-checks under the
    // mutex; this toy deliberately doesn't.)
    let result = explore(&cfg(512), || {
        let ready = Arc::new(AtomicBool::new(false));
        let gate = Arc::new((Mutex::new(()), Condvar::new()));
        let (ready2, gate2) = (Arc::clone(&ready), Arc::clone(&gate));
        let t = thread::spawn(move || {
            ready2.store(true, Ordering::SeqCst);
            gate2.1.notify_one();
        });
        if !ready.load(Ordering::SeqCst) {
            let mut g = gate.0.lock();
            gate.1.wait(&mut g);
        }
        t.join().unwrap();
    });
    let failure = result.expect_err("model checker missed the lost wakeup");
    assert!(
        failure.message.contains("deadlock") && failure.message.contains("condvar"),
        "unexpected failure: {failure}"
    );
}

#[test]
fn correct_parking_protocol_passes() {
    explore(&cfg(256), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let state2 = Arc::clone(&state);
        let t = thread::spawn(move || {
            *state2.0.lock() = true;
            state2.1.notify_one();
        });
        {
            let mut g = state.0.lock();
            while !*g {
                state.1.wait(&mut g);
            }
        }
        t.join().unwrap();
    })
    .unwrap_or_else(|f| panic!("{f}"));
}

#[test]
fn race_detector_flags_unsynchronized_cell_access() {
    let result = explore(&cfg(128), || {
        let cell = Arc::new(ModelCell::new(0u64));
        let cell2 = Arc::clone(&cell);
        let t = thread::spawn(move || {
            cell2.with_mut(|p| unsafe { *p = 1 });
        });
        cell.with_mut(|p| unsafe { *p = 2 });
        t.join().unwrap();
    });
    let failure = result.expect_err("race detector missed a write/write race");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure: {failure}"
    );
}

#[test]
fn race_detector_accepts_atomic_publication() {
    // Message-passing through a release store / acquire load: the cell
    // access is ordered, no race.
    explore(&cfg(256), || {
        let cell = Arc::new(ModelCell::new(0u64));
        let flag = Arc::new(AtomicBool::new(false));
        let (cell2, flag2) = (Arc::clone(&cell), Arc::clone(&flag));
        let t = thread::spawn(move || {
            cell2.with_mut(|p| unsafe { *p = 42 });
            flag2.store(true, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) {
            let v = cell.with(|p| unsafe { *p });
            assert_eq!(v, 42);
        }
        t.join().unwrap();
    })
    .unwrap_or_else(|f| panic!("{f}"));
}

#[test]
fn race_detector_accepts_mutex_protected_access() {
    explore(&cfg(128), || {
        let lock = Arc::new(Mutex::new(()));
        let cell = Arc::new(ModelCell::new(0u64));
        let (lock2, cell2) = (Arc::clone(&lock), Arc::clone(&cell));
        let t = thread::spawn(move || {
            let _g = lock2.lock();
            cell2.with_mut(|p| unsafe { *p += 1 });
        });
        {
            let _g = lock.lock();
            cell.with_mut(|p| unsafe { *p += 1 });
        }
        t.join().unwrap();
        assert_eq!(cell.with(|p| unsafe { *p }), 2);
    })
    .unwrap_or_else(|f| panic!("{f}"));
}

#[test]
fn failures_replay_by_seed() {
    let scenario = || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            let v = n2.load(Ordering::SeqCst);
            n2.store(v + 1, Ordering::SeqCst);
        });
        let v = n.load(Ordering::SeqCst);
        n.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
    };
    let failure = explore(&cfg(256), scenario).expect_err("should fail");
    let replayed = replay(&cfg(256), failure.seed, scenario).expect_err("seed must reproduce");
    assert_eq!(replayed.message, failure.message);
}

#[test]
fn exploration_is_deterministic_across_runs() {
    let scenario = || {
        let n = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = Arc::clone(&n);
                thread::spawn(move || {
                    n.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(Ordering::SeqCst), 2);
    };
    let a = explore(&cfg(32), scenario).unwrap_or_else(|f| panic!("{f}"));
    let b = explore(&cfg(32), scenario).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(
        a.total_steps, b.total_steps,
        "same seed must explore the same schedules"
    );
}

#[test]
fn pct_strategy_finds_ordering_bug() {
    // Order-dependent bug with a single constraint: the "init" thread
    // must run before the "use" thread. PCT with depth 2 is built for
    // exactly this shape.
    let pct = cfg(512).strategy(Strategy::Pct { depth: 2 });
    let result = explore(&pct, || {
        let init = Arc::new(AtomicBool::new(false));
        let init2 = Arc::clone(&init);
        let t = thread::spawn(move || {
            init2.store(true, Ordering::SeqCst);
        });
        assert!(init.load(Ordering::SeqCst), "used before initialization");
        t.join().unwrap();
    });
    let failure = result.expect_err("PCT missed the init-order bug");
    assert!(failure.message.contains("used before initialization"));
}

#[test]
fn step_budget_catches_livelock() {
    let tiny = cfg(4).max_steps(500);
    let result = explore(&tiny, || {
        let stop = Arc::new(AtomicBool::new(false));
        // Nobody ever sets `stop`: a pure spin. The budget must end it.
        while !stop.load(Ordering::SeqCst) {
            thread::yield_now();
        }
    });
    let failure = result.expect_err("step budget did not trip");
    assert!(
        failure.message.contains("step budget"),
        "unexpected failure: {failure}"
    );
}

#[test]
fn detached_threads_finish_before_report() {
    // A spawned thread that main never joins must still run to
    // completion before the iteration is scored.
    explore(&cfg(64), || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        thread::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
    })
    .unwrap_or_else(|f| panic!("{f}"));
}

#[test]
fn rwlock_readers_share_writers_exclude() {
    use schedcheck::sync::RwLock;
    explore(&cfg(256), || {
        let lock = Arc::new(RwLock::new(0u64));
        let cell = Arc::new(ModelCell::new(0u64));
        let (l2, c2) = (Arc::clone(&lock), Arc::clone(&cell));
        let writer = thread::spawn(move || {
            let mut g = l2.write();
            *g += 1;
            c2.with_mut(|p| unsafe { *p += 1 });
        });
        {
            let g = lock.read();
            let _ = *g;
        }
        writer.join().unwrap();
        assert_eq!(*lock.read(), 1);
        assert_eq!(cell.with(|p| unsafe { *p }), 1);
    })
    .unwrap_or_else(|f| panic!("{f}"));
}
