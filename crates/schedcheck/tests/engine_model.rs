//! Model-checked engine protocols (build with `RUSTFLAGS="--cfg hinch_model"`).
//!
//! These tests drive real `hinch` engine code — the worker-pool primitives
//! and the full multi-graph serving runtime — on the schedcheck executor.
//! Under `--cfg hinch_model`, every atomic access, lock, park and spawn in
//! `crates/hinch/src/engine/` routes through `hinch::sync` into the
//! modeled primitives, so the explorer controls each interleaving and the
//! vector clocks check every `ModelCell` slot access.
//!
//! The two `pr6_*` tests are pinned regressions for the races fixed in
//! PR 6: each arms a fault flag (`hinch::sync::faults`) that re-introduces
//! the original bug, and asserts the model checker finds it within the
//! smoke iteration budget — with a replayable seed — while the unfaulted
//! protocol explores clean.
//!
//! Budgets scale with `SCHEDCHECK_ITERS` (CI sets it; `MODEL_DEEP=1` runs
//! raise it — see `scripts/ci.sh`).

#![cfg(hinch_model)]

use hinch::engine::pool::{EventCount, Injector, LocalQueue};
use hinch::graph::{factory, ComponentSpec, GraphSpec};
use hinch::sync::faults;
use hinch::{Component, Params, RunCtx, Runtime, RuntimeConfig, SpawnOpts};
use schedcheck::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use schedcheck::{env_iters, Config, Strategy};
use std::sync::{Arc, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};

/// The fault flags and the runtime's worker pools are process-global, so
/// every test that builds a `Runtime` or arms a fault serializes here
/// (cargo's test harness runs tests on parallel threads).
fn runtime_lock() -> StdMutexGuard<'static, ()> {
    static LOCK: OnceLock<StdMutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| StdMutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Reset both fault flags when a test exits, pass or fail.
struct FaultReset;
impl Drop for FaultReset {
    fn drop(&mut self) {
        faults::set_throttled_submit_wake(false);
        faults::set_drain_skips_admission_close(false);
    }
}

struct Nop;
impl Component for Nop {
    fn class(&self) -> &'static str {
        "nop"
    }
    fn run(&mut self, _ctx: &mut RunCtx<'_>) {}
}

/// Single no-op leaf: the smallest graph the serving runtime accepts.
/// One job per frame keeps the schedule space small enough to explore.
fn nop_spec() -> GraphSpec {
    GraphSpec::leaf(ComponentSpec::new(
        "nop",
        "nop",
        factory(
            |_p: &Params| -> Box<dyn Component> { Box::new(Nop) },
            Params::new(),
        ),
    ))
}

#[test]
fn local_queue_ops_linearize() {
    let cfg = Config::default().iterations(env_iters(192)).seed(0x10CA1);
    schedcheck::explore(&cfg, || {
        let q = Arc::new(LocalQueue::<u32>::new());
        let inj = Arc::new(Injector::<u32>::new());
        let taken = Arc::new(StdMutex::new(Vec::<u32>::new()));
        let thief = {
            let (q, taken) = (q.clone(), taken.clone());
            schedcheck::sync::thread::spawn(move || {
                for _ in 0..2 {
                    if let Some(v) = q.steal() {
                        taken.lock().unwrap().push(v);
                    }
                }
            })
        };
        let mut got = Vec::new();
        for v in 1..=3u32 {
            q.push(v, &inj);
            if let Some(v) = q.pop() {
                got.push(v);
            }
        }
        thief.join().unwrap();
        while let Some(v) = q.pop() {
            got.push(v);
        }
        while let Some(v) = inj.pop() {
            got.push(v);
        }
        got.extend(taken.lock().unwrap().iter().copied());
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3], "each pushed job consumed exactly once");
    })
    .unwrap_or_else(|f| panic!("{f}"));
}

#[test]
fn eventcount_never_loses_a_wakeup() {
    let cfg = Config::default()
        .iterations(env_iters(192))
        .seed(0xEC0)
        .strategy(Strategy::Mixed);
    schedcheck::explore(&cfg, || {
        let ec = Arc::new(EventCount::new());
        let flag = Arc::new(AtomicBool::new(false));
        let consumer = {
            let (ec, flag) = (ec.clone(), flag.clone());
            schedcheck::sync::thread::spawn(move || loop {
                if flag.load(Ordering::SeqCst) {
                    return;
                }
                let e = ec.prepare();
                if flag.load(Ordering::SeqCst) {
                    return;
                }
                // A notify between the `prepare` above and this `wait`
                // must still be delivered — the protocol under test.
                ec.wait(e);
            })
        };
        flag.store(true, Ordering::SeqCst);
        ec.notify(1);
        consumer.join().unwrap();
        assert_eq!(ec.sleepers(), 0);
    })
    .unwrap_or_else(|f| panic!("{f}"));
}

#[test]
fn eventcount_counts_concurrent_sleepers() {
    let cfg = Config::default().iterations(env_iters(128)).seed(0xEC1);
    schedcheck::explore(&cfg, || {
        let ec = Arc::new(EventCount::new());
        let produced = Arc::new(AtomicU64::new(0));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let (ec, produced) = (ec.clone(), produced.clone());
                schedcheck::sync::thread::spawn(move || loop {
                    if produced.load(Ordering::SeqCst) == 1 {
                        return;
                    }
                    let e = ec.prepare();
                    if produced.load(Ordering::SeqCst) == 1 {
                        return;
                    }
                    ec.wait(e);
                })
            })
            .collect();
        produced.store(1, Ordering::SeqCst);
        // Lifecycle edge: both sleepers must observe it.
        ec.notify_all();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(ec.sleepers(), 0, "sleeper count returns to zero");
    })
    .unwrap_or_else(|f| panic!("{f}"));
}

#[test]
fn runtime_submit_drain_teardown_is_clean() {
    let _serial = runtime_lock();
    let cfg = Config::default().iterations(env_iters(96)).seed(0x5E12E);
    schedcheck::explore(&cfg, || {
        let rt = Runtime::new(RuntimeConfig::new(1));
        let id = rt
            .spawn(&nop_spec(), SpawnOpts::new("m").pipeline_depth(1))
            .unwrap();
        assert_eq!(rt.submit(id, 1).unwrap(), 1);
        let stats = rt.drain(id).unwrap();
        assert_eq!(stats.completed, 1);
        assert_eq!(rt.graph_count(), 0);
        assert_eq!(rt.queued_jobs(), 0, "teardown leaves no queued jobs");
        rt.shutdown();
    })
    .unwrap_or_else(|f| panic!("{f}"));
}

#[test]
fn runtime_two_rounds_restore_baseline() {
    let _serial = runtime_lock();
    let cfg = Config::default().iterations(env_iters(48)).seed(0xBA5E);
    schedcheck::explore(&cfg, || {
        let rt = Runtime::new(RuntimeConfig::new(1));
        for round in 0..2u32 {
            let id = rt
                .spawn(
                    &nop_spec(),
                    SpawnOpts::new(format!("r{round}")).pipeline_depth(1),
                )
                .unwrap();
            assert_eq!(rt.submit(id, 2).unwrap(), 2);
            let stats = rt.drain(id).unwrap();
            assert_eq!(stats.completed, 2, "round {round}");
        }
        assert_eq!(rt.graph_count(), 0);
        assert_eq!(rt.queued_jobs(), 0);
        rt.shutdown();
    })
    .unwrap_or_else(|f| panic!("{f}"));
}

/// Pinned PR-6 regression #1: `Runtime::submit` must use the unconditional
/// external wake. With the fault armed, submit uses the worker-context
/// spare-parallelism-throttled wake instead; a submit landing while the
/// lone worker sits between its park-preparation and its `active`
/// decrement skips the notify entirely, the worker parks on a stale epoch
/// with the frame stranded in the injector, and drain blocks forever —
/// which the model checker reports as a deadlock with a replayable seed.
#[test]
fn pr6_submit_wake_race_is_caught() {
    let _serial = runtime_lock();
    let _reset = FaultReset;

    let scenario = || {
        let rt = Runtime::new(RuntimeConfig::new(1));
        let id = rt
            .spawn(&nop_spec(), SpawnOpts::new("m").pipeline_depth(1))
            .unwrap();
        assert_eq!(rt.submit(id, 1).unwrap(), 1);
        let stats = rt.drain(id).unwrap();
        assert_eq!(stats.completed, 1);
        rt.shutdown();
    };

    // Floor at the proven discovery budget: the global smoke knob
    // (`SCHEDCHECK_ITERS`) may scale the protocol tests down, but a
    // pinned regression that stops *finding* its bug is worthless.
    let cfg = Config::default()
        .iterations(env_iters(300).max(300))
        .seed(0x9126);

    faults::set_throttled_submit_wake(true);
    let failure = schedcheck::explore(&cfg, scenario)
        .expect_err("model checker must catch the reverted submit-wake fix");
    assert!(
        failure.message.contains("deadlock"),
        "expected a deadlock report, got: {failure}"
    );
    // The failure replays from its seed alone.
    let replayed = schedcheck::replay(&cfg, failure.seed, scenario)
        .expect_err("recorded seed must reproduce the failure");
    assert_eq!(replayed.message, failure.message);

    faults::set_throttled_submit_wake(false);
    schedcheck::explore(&cfg, scenario).unwrap_or_else(|f| {
        panic!("fixed protocol must explore clean, got: {f}");
    });
}

/// Pinned PR-6 regression #2: `Runtime::drain` must close admission (the
/// per-tenant draining flag, set under the admit lock) before its
/// quiescence wait. With the fault armed the flag is never set, so a
/// racing submit can be accepted after drain observed quiescence; the
/// frame is silently discarded by teardown and drain's leak asserts fire
/// (frame timestamps left behind) — a panic the model checker reports
/// with a replayable seed.
#[test]
fn pr6_drain_admission_race_is_caught() {
    let _serial = runtime_lock();
    let _reset = FaultReset;

    let scenario = || {
        let rt = Arc::new(Runtime::new(RuntimeConfig::new(1)));
        let id = rt
            .spawn(&nop_spec(), SpawnOpts::new("m").pipeline_depth(1))
            .unwrap();
        assert_eq!(rt.submit(id, 1).unwrap(), 1);
        let submitter = {
            let rt = rt.clone();
            schedcheck::sync::thread::spawn(move || match rt.submit(id, 1) {
                Ok(n) => n,
                Err(_) => 0, // draining / already gone: correctly refused
            })
        };
        let accepted = 1 + match rt.drain(id) {
            Ok(_) => submitter.join().unwrap(),
            Err(e) => panic!("drain failed: {e}"),
        };
        // Every frame the client was told was accepted must have retired;
        // with admission left open, teardown's leak asserts fire first.
        let _ = accepted;
        rt.shutdown();
    };

    // Same floor as above: never below the proven discovery budget.
    let cfg = Config::default()
        .iterations(env_iters(300).max(300))
        .seed(0xD2A1);

    faults::set_drain_skips_admission_close(true);
    let failure = schedcheck::explore(&cfg, scenario)
        .expect_err("model checker must catch the reverted drain-admission fix");
    assert!(
        failure.message.contains("leaked") || failure.message.contains("deadlock"),
        "expected the teardown leak assert (or a stranded-frame deadlock), got: {failure}"
    );
    let replayed = schedcheck::replay(&cfg, failure.seed, scenario)
        .expect_err("recorded seed must reproduce the failure");
    assert_eq!(replayed.message, failure.message);

    faults::set_drain_skips_admission_close(false);
    schedcheck::explore(&cfg, scenario).unwrap_or_else(|f| {
        panic!("fixed protocol must explore clean, got: {f}");
    });
}
