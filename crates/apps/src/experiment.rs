//! One-call experiment runners for the benchmark harness and examples.
//!
//! The paper's nine measured applications are enumerated by [`App`];
//! [`run_sim`] executes one on a simulated SpaceCAKE tile with a given
//! core count, [`sequential_cycles`] measures its hand-written sequential
//! baseline on the same cache model, and [`AppConfig`] selects between the
//! paper's full-size setup and a reduced one for quick runs.
//!
//! Input videos are generated once per (app family, scale) and cached
//! process-wide — the generation and JPEG encoding are by far the most
//! expensive host-side steps.

use crate::registry::AppAssets;
use crate::{blur, jpip, pip};
use hinch::engine::{run_native, run_sim as hinch_run_sim, RunConfig};
use hinch::meter::Meter;
use hinch::report::{RunReport, SimReport};
use hinch::trace;
use parking_lot::Mutex;
use spacecake::{Machine, Solo, TileConfig};
use std::collections::HashMap;
use std::sync::Arc;

/// The nine applications of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    Pip1,
    Pip2,
    Jpip1,
    Jpip2,
    Blur3,
    Blur5,
    /// PiP-12: second picture toggled every 12 frames.
    Pip12,
    /// JPiP-12.
    Jpip12,
    /// Blur-35: kernel switched every 12 frames.
    Blur35,
}

impl App {
    /// The six static applications of Fig. 8 / Fig. 9, in paper order.
    pub const STATIC: [App; 6] = [
        App::Pip1,
        App::Pip2,
        App::Jpip1,
        App::Jpip2,
        App::Blur3,
        App::Blur5,
    ];

    /// The three reconfigurable applications of Fig. 10.
    pub const RECONFIG: [App; 3] = [App::Pip12, App::Jpip12, App::Blur35];

    /// The label used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            App::Pip1 => "PiP-1",
            App::Pip2 => "PiP-2",
            App::Jpip1 => "JPiP-1",
            App::Jpip2 => "JPiP-2",
            App::Blur3 => "Blur-3x3",
            App::Blur5 => "Blur-5x5",
            App::Pip12 => "PiP-12",
            App::Jpip12 => "JPiP-12",
            App::Blur35 => "Blur-35",
        }
    }

    /// Frames processed in the paper (§4: PiP and Blur process 96 frames;
    /// JPiP 24 because of limited simulation speed).
    pub fn paper_frames(&self) -> u64 {
        match self {
            App::Jpip1 | App::Jpip2 | App::Jpip12 => 24,
            _ => 96,
        }
    }

    /// All nine applications, static then reconfigurable.
    pub const ALL: [App; 9] = [
        App::Pip1,
        App::Pip2,
        App::Jpip1,
        App::Jpip2,
        App::Blur3,
        App::Blur5,
        App::Pip12,
        App::Jpip12,
        App::Blur35,
    ];

    /// Stable lower-case identifier (CLI / wire format).
    pub fn id(&self) -> &'static str {
        match self {
            App::Pip1 => "pip1",
            App::Pip2 => "pip2",
            App::Jpip1 => "jpip1",
            App::Jpip2 => "jpip2",
            App::Blur3 => "blur3",
            App::Blur5 => "blur5",
            App::Pip12 => "pip12",
            App::Jpip12 => "jpip12",
            App::Blur35 => "blur35",
        }
    }

    /// Parse an [`App::id`] string (case-insensitive).
    pub fn parse(s: &str) -> Option<App> {
        let s = s.to_ascii_lowercase();
        App::ALL.into_iter().find(|a| a.id() == s)
    }

    /// The static applications whose average the paper divides a
    /// reconfigurable run by (Fig. 10).
    pub fn static_counterparts(&self) -> &'static [App] {
        match self {
            App::Pip12 => &[App::Pip1, App::Pip2],
            App::Jpip12 => &[App::Jpip1, App::Jpip2],
            App::Blur35 => &[App::Blur3, App::Blur5],
            _ => &[],
        }
    }
}

/// Scale of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// The paper's dimensions and slice counts.
    Paper,
    /// Reduced dimensions for tests and quick demos.
    Small,
}

/// One experiment: an app at a scale, for some number of frames.
#[derive(Debug, Clone, Copy)]
pub struct AppConfig {
    pub app: App,
    pub scale: Scale,
    pub frames: u64,
}

impl AppConfig {
    /// The paper's configuration for `app`.
    pub fn paper(app: App) -> Self {
        Self {
            app,
            scale: Scale::Paper,
            frames: app.paper_frames(),
        }
    }

    /// A fast configuration for tests/demos.
    pub fn small(app: App) -> Self {
        Self {
            app,
            scale: Scale::Small,
            frames: 8,
        }
    }

    pub fn frames(mut self, frames: u64) -> Self {
        self.frames = frames;
        self
    }
}

#[derive(Debug, PartialEq, Eq, Hash, Clone, Copy)]
enum Family {
    Pip,
    Jpip,
    Blur,
}

impl App {
    fn family(&self) -> Family {
        match self {
            App::Pip1 | App::Pip2 | App::Pip12 => Family::Pip,
            App::Jpip1 | App::Jpip2 | App::Jpip12 => Family::Jpip,
            App::Blur3 | App::Blur5 | App::Blur35 => Family::Blur,
        }
    }
}

/// Process-wide input cache: videos are generated/encoded once per
/// (family, scale).
fn cached_assets(app: App, scale: Scale) -> Arc<AppAssets> {
    type AssetCache = HashMap<(Family, Scale), Arc<AppAssets>>;
    static CACHE: Mutex<Option<AssetCache>> = Mutex::new(None);
    let mut guard = CACHE.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    map.entry((app.family(), scale)).or_default().clone()
}

/// A built application, ready to run.
pub struct Built {
    pub spec: hinch::GraphSpec,
    pub assets: Arc<AppAssets>,
    pub xml: String,
    /// Name of the capture set holding the outputs.
    pub capture: &'static str,
    /// Captured plane ports (3 for PiP/JPiP, 1 for Blur).
    pub capture_ports: usize,
}

/// Build `cfg.app` (reusing cached inputs).
///
/// The returned [`Built`] shares the process-wide asset cache, including
/// its capture buffers — concurrent runs of the same family would clobber
/// each other's outputs, so callers serialize (the conformance harness
/// takes a run lock). For concurrent instances use [`build_isolated`].
pub fn build(cfg: AppConfig) -> Built {
    let assets = cached_assets(cfg.app, cfg.scale);
    // Fresh capture contents per build/run.
    assets.clear_captures();
    build_with(cfg, assets)
}

/// Build `cfg.app` on a *private* asset set: the expensive generated
/// input videos are adopted (refcount-only) from the process-wide cache,
/// but captures are fresh and unshared, so any number of isolated
/// instances can run concurrently — the serving runtime's mode.
pub fn build_isolated(cfg: AppConfig) -> Built {
    build_isolated_sliced(cfg, None)
}

/// [`build_isolated`] with the data-parallel slice count overridden
/// (`None` keeps the scale's default). The adaptation controller uses
/// this to respawn a graph at a different parallelization.
pub fn build_isolated_sliced(cfg: AppConfig, slices: Option<usize>) -> Built {
    isolated_assets_then(cfg, |assets| {
        build_with_opts(cfg, assets, slices, false, false)
    })
}

/// [`build_isolated`] with tile-granular decode+IDCT fusion enabled.
/// JPiP apps only — fusion is the JPiP cache-tax fix; other families
/// have no decode/IDCT boundary to fuse.
pub fn build_isolated_fused(cfg: AppConfig) -> Built {
    assert_eq!(
        cfg.app.family(),
        Family::Jpip,
        "fusion applies to JPiP apps only"
    );
    isolated_assets_then(cfg, |assets| {
        build_with_opts(cfg, assets, None, false, true)
    })
}

/// [`build_isolated_sliced`] for *externally driven* reconfiguration: the
/// manager, options and event rules of a reconfig app are wired exactly
/// as usual, but the in-graph injector's cadence is parked past any real
/// run, so the only reconfigurations are events delivered from outside
/// (`Runtime::inject`). Static apps build unchanged.
pub fn build_isolated_adaptive(cfg: AppConfig, slices: Option<usize>) -> Built {
    isolated_assets_then(cfg, |assets| {
        build_with_opts(cfg, assets, slices, true, false)
    })
}

fn isolated_assets_then(cfg: AppConfig, f: impl FnOnce(Arc<AppAssets>) -> Built) -> Built {
    let shared = cached_assets(cfg.app, cfg.scale);
    // Warm the process-wide input cache once: generation/encoding is the
    // expensive step; the discarded spec elaboration is cheap. Generation
    // runs under the asset-map lock, so concurrent warms don't duplicate.
    let _ = build_with(cfg, shared.clone());
    let assets = AppAssets::new();
    assets.adopt_inputs(&shared);
    f(assets)
}

/// Injector cadence that never fires within a real run (see
/// [`build_isolated_adaptive`]).
pub const EXTERNAL_RECONFIG_CADENCE: u64 = u64::MAX / 2;

/// How to reconfigure `app` from outside the graph: the manager queue,
/// the event kind, and the payloads that select the degraded / full
/// variant.
#[derive(Debug, Clone, Copy)]
pub struct ReconfigHandle {
    pub queue: &'static str,
    pub event: &'static str,
    /// Payload selecting the cheap variant (ignored by toggle rules).
    pub degraded_payload: i64,
    /// Payload selecting the expensive variant.
    pub full_payload: i64,
    /// `true` if the manager rule *toggles* option state (send one event
    /// per change of mind), `false` if the payload *sets* it
    /// (idempotent).
    pub toggles: bool,
}

/// The external-reconfiguration handle of `app`, `None` for static apps.
/// Reconfig graphs spawn in their degraded variant (second picture
/// disabled / 3×3 kernel).
pub fn reconfig_handle(app: App) -> Option<ReconfigHandle> {
    match app {
        App::Pip12 | App::Jpip12 => Some(ReconfigHandle {
            queue: "mq",
            event: "flip",
            degraded_payload: 0,
            full_payload: 0,
            toggles: true,
        }),
        App::Blur35 => Some(ReconfigHandle {
            queue: "mq",
            event: "switch",
            degraded_payload: 3,
            full_payload: 5,
            toggles: false,
        }),
        _ => None,
    }
}

/// The scale's default data-parallel slice count for `cfg.app`'s family
/// (the reference point for slice-resizing candidates).
pub fn default_slices(app: App, scale: Scale) -> usize {
    match (app.family(), scale) {
        (Family::Pip, Scale::Paper) => pip::PipConfig::paper(1).slices,
        (Family::Pip, Scale::Small) => pip::PipConfig::small(1).slices,
        (Family::Jpip, Scale::Paper) => jpip::JpipConfig::paper(1).slices,
        (Family::Jpip, Scale::Small) => jpip::JpipConfig::small(1).slices,
        (Family::Blur, Scale::Paper) => blur::BlurConfig::paper(3).slices,
        (Family::Blur, Scale::Small) => blur::BlurConfig::small(3).slices,
    }
}

/// Build `cfg.app` against a caller-provided asset set.
pub fn build_with(cfg: AppConfig, assets: Arc<AppAssets>) -> Built {
    build_with_sliced(cfg, assets, None)
}

/// [`build_with`] with an optional slice-count override.
pub fn build_with_sliced(cfg: AppConfig, assets: Arc<AppAssets>, slices: Option<usize>) -> Built {
    build_with_opts(cfg, assets, slices, false, false)
}

/// [`build_with`] with tile-granular decode+IDCT fusion (JPiP only).
pub fn build_with_fused(cfg: AppConfig, assets: Arc<AppAssets>) -> Built {
    assert_eq!(
        cfg.app.family(),
        Family::Jpip,
        "fusion applies to JPiP apps only"
    );
    build_with_opts(cfg, assets, None, false, true)
}

/// Reconfig cadence: the paper's 12-frame stimulus, or parked for
/// externally driven graphs.
fn cadence(external: bool) -> Option<u64> {
    Some(if external {
        EXTERNAL_RECONFIG_CADENCE
    } else {
        12
    })
}

fn build_with_opts(
    cfg: AppConfig,
    assets: Arc<AppAssets>,
    slices: Option<usize>,
    external: bool,
    fuse: bool,
) -> Built {
    assert!(
        !fuse || cfg.app.family() == Family::Jpip,
        "fusion applies to JPiP apps only"
    );
    match cfg.app {
        App::Pip1 | App::Pip2 | App::Pip12 => {
            let mut c = match cfg.scale {
                Scale::Paper => pip::PipConfig::paper(if cfg.app == App::Pip1 { 1 } else { 2 }),
                Scale::Small => pip::PipConfig::small(if cfg.app == App::Pip1 { 1 } else { 2 }),
            };
            if cfg.app == App::Pip12 {
                c.reconfig_every = cadence(external);
            }
            if let Some(s) = slices {
                c.slices = s;
            }
            let app = pip::build_on(&c, assets).expect("PiP compiles");
            Built {
                spec: app.elaborated.spec,
                assets: app.assets,
                xml: app.xml,
                capture: "out",
                capture_ports: 3,
            }
        }
        App::Jpip1 | App::Jpip2 | App::Jpip12 => {
            let mut c = match cfg.scale {
                Scale::Paper => jpip::JpipConfig::paper(if cfg.app == App::Jpip1 { 1 } else { 2 }),
                Scale::Small => jpip::JpipConfig::small(if cfg.app == App::Jpip1 { 1 } else { 2 }),
            };
            if cfg.app == App::Jpip12 {
                c.reconfig_every = cadence(external);
            }
            if let Some(s) = slices {
                c.slices = s;
            }
            c.fuse = fuse;
            let app = jpip::build_on(&c, assets).expect("JPiP compiles");
            Built {
                spec: app.elaborated.spec,
                assets: app.assets,
                xml: app.xml,
                capture: "out",
                capture_ports: 3,
            }
        }
        App::Blur3 | App::Blur5 | App::Blur35 => {
            let mut c = match cfg.scale {
                Scale::Paper => blur::BlurConfig::paper(if cfg.app == App::Blur5 { 5 } else { 3 }),
                Scale::Small => blur::BlurConfig::small(if cfg.app == App::Blur5 { 5 } else { 3 }),
            };
            if cfg.app == App::Blur35 {
                c.reconfig_every = cadence(external);
            }
            if let Some(s) = slices {
                c.slices = s;
            }
            let app = blur::build_on(&c, assets).expect("Blur compiles");
            Built {
                spec: app.elaborated.spec,
                assets: app.assets,
                xml: app.xml,
                capture: "out",
                capture_ports: 1,
            }
        }
    }
}

/// [`build`] with tile-granular decode+IDCT fusion on the shared asset
/// cache (JPiP only; callers serialize like [`build`]'s).
pub fn build_fused(cfg: AppConfig) -> Built {
    let assets = cached_assets(cfg.app, cfg.scale);
    assets.clear_captures();
    build_with_fused(cfg, assets)
}

/// Run `cfg.app` on a simulated tile with `cores` cores (the paper's
/// measurement mode). Pipeline depth 5, as in §4.
pub fn run_sim(cfg: AppConfig, cores: usize) -> SimReport {
    sim_built(build(cfg), cfg.frames, cores)
}

/// [`run_sim`] with tile-granular decode+IDCT fusion (JPiP only) — the
/// post-fusion Fig. 8 measurement.
pub fn run_sim_fused(cfg: AppConfig, cores: usize) -> SimReport {
    sim_built(build_fused(cfg), cfg.frames, cores)
}

fn sim_built(built: Built, frames: u64, cores: usize) -> SimReport {
    let mut machine = Machine::new(TileConfig::with_cores(cores));
    let run_cfg = RunConfig::new(frames).pipeline_depth(5);
    hinch_run_sim(&built.spec, &run_cfg, &mut machine).expect("sim run")
}

/// Run `cfg.app` on native worker threads (wall-clock mode).
pub fn run_threads(cfg: AppConfig, workers: usize) -> RunReport {
    let built = build(cfg);
    let run_cfg = RunConfig::new(cfg.frames)
        .pipeline_depth(5)
        .workers(workers);
    run_native(&built.spec, &run_cfg).expect("native run")
}

/// [`run_threads`] with tile-granular decode+IDCT fusion (JPiP only).
pub fn run_threads_fused(cfg: AppConfig, workers: usize) -> RunReport {
    let built = build_fused(cfg);
    let run_cfg = RunConfig::new(cfg.frames)
        .pipeline_depth(5)
        .workers(workers);
    run_native(&built.spec, &run_cfg).expect("native run")
}

/// Like [`run_sim`], but with a flight recorder attached: returns the
/// report plus the [`trace::Recorder`] holding the run's trace (virtual
/// cycles). Feed it to `hinch::trace::export` for Chrome-trace JSON, CSV
/// or a per-core utilization summary.
pub fn run_sim_traced(cfg: AppConfig, cores: usize) -> (SimReport, trace::Recorder) {
    let built = build(cfg);
    let mut machine = Machine::new(TileConfig::with_cores(cores));
    let recorder = trace::Recorder::new(trace::Clock::VirtualCycles);
    let run_cfg = RunConfig::new(cfg.frames)
        .pipeline_depth(5)
        .trace(recorder.sink());
    let report = hinch_run_sim(&built.spec, &run_cfg, &mut machine).expect("sim run");
    (report, recorder)
}

/// Like [`run_threads`], but with a flight recorder attached (wall-clock
/// nanoseconds).
pub fn run_threads_traced(cfg: AppConfig, workers: usize) -> (RunReport, trace::Recorder) {
    let built = build(cfg);
    let recorder = trace::Recorder::new(trace::Clock::WallNanos);
    let run_cfg = RunConfig::new(cfg.frames)
        .pipeline_depth(5)
        .workers(workers)
        .trace(recorder.sink());
    let report = run_native(&built.spec, &run_cfg).expect("native run");
    (report, recorder)
}

/// Cycles of the hand-written sequential baseline of `cfg.app` on the
/// same (single-core) cache model. For Blur-35 the baseline switches
/// kernels on the paper's schedule; PiP-12/JPiP-12 have no dedicated
/// baseline (Fig. 10 normalizes against the static apps instead).
pub fn sequential_cycles(cfg: AppConfig) -> u64 {
    let built = build(cfg); // ensures the inputs exist
    let mut solo = Solo::new();
    let (_, cycles) = solo.run(|meter| run_baseline(cfg, &built.assets, meter));
    cycles
}

/// Execute the sequential baseline of `cfg.app` against `assets`,
/// charging `meter` (exposed for the benchmark harness).
pub fn run_baseline(cfg: AppConfig, assets: &Arc<AppAssets>, meter: &mut dyn Meter) {
    match cfg.app {
        App::Pip1 | App::Pip2 | App::Pip12 => {
            let mut c = match cfg.scale {
                Scale::Paper => pip::PipConfig::paper(if cfg.app == App::Pip1 { 1 } else { 2 }),
                Scale::Small => pip::PipConfig::small(if cfg.app == App::Pip1 { 1 } else { 2 }),
            };
            if cfg.app == App::Pip12 {
                c.pips = 2;
            }
            let _ = pip::sequential(&c, assets, cfg.frames, meter);
        }
        App::Jpip1 | App::Jpip2 | App::Jpip12 => {
            let c = match cfg.scale {
                Scale::Paper => jpip::JpipConfig::paper(if cfg.app == App::Jpip1 { 1 } else { 2 }),
                Scale::Small => jpip::JpipConfig::small(if cfg.app == App::Jpip1 { 1 } else { 2 }),
            };
            let _ = jpip::sequential(&c, assets, cfg.frames, meter);
        }
        App::Blur3 | App::Blur5 => {
            let ksize = if cfg.app == App::Blur5 { 5 } else { 3 };
            let c = match cfg.scale {
                Scale::Paper => blur::BlurConfig::paper(ksize),
                Scale::Small => blur::BlurConfig::small(ksize),
            };
            let _ = blur::sequential(&c, assets, cfg.frames, |_| ksize, meter);
        }
        App::Blur35 => {
            let c = match cfg.scale {
                Scale::Paper => blur::BlurConfig::paper(3),
                Scale::Small => blur::BlurConfig::small(3),
            };
            let _ = blur::sequential(
                &c,
                assets,
                cfg.frames,
                |i| blur::baseline_ksize(i, 12, 3),
                meter,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_frames() {
        assert_eq!(App::Pip1.label(), "PiP-1");
        assert_eq!(App::Jpip2.paper_frames(), 24);
        assert_eq!(App::Blur3.paper_frames(), 96);
        assert_eq!(App::Pip12.static_counterparts(), &[App::Pip1, App::Pip2]);
    }

    #[test]
    fn sim_runs_every_small_app() {
        for app in App::STATIC {
            let cfg = AppConfig::small(app).frames(4);
            let r = run_sim(cfg, 2);
            assert_eq!(r.iterations, 4, "{}", app.label());
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn reconfig_apps_reconfigure_in_sim() {
        for app in App::RECONFIG {
            // reconfig every 12 frames; run 30 to see at least 2
            let cfg = AppConfig::small(app).frames(30);
            let r = run_sim(cfg, 2);
            assert_eq!(r.iterations, 30, "{}", app.label());
            assert!(
                r.reconfigs >= 1,
                "{} reconfigs = {}",
                app.label(),
                r.reconfigs
            );
        }
    }

    #[test]
    fn baseline_is_cheaper_or_similar_to_xspcl_at_one_core() {
        for app in [App::Pip1, App::Blur3] {
            let cfg = AppConfig::small(app).frames(6);
            let seq = sequential_cycles(cfg);
            let xspcl = run_sim(cfg, 1).cycles;
            assert!(seq > 0);
            // XSPCL carries the RTS overhead; it should not be faster by
            // much, nor absurdly slower.
            assert!(
                (xspcl as f64) > (seq as f64) * 0.8,
                "{}: xspcl {} vs seq {}",
                app.label(),
                xspcl,
                seq
            );
            assert!(
                (xspcl as f64) < (seq as f64) * 2.5,
                "{}: xspcl {} vs seq {}",
                app.label(),
                xspcl,
                seq
            );
        }
    }

    #[test]
    fn traced_sim_records_a_well_formed_trace() {
        let cfg = AppConfig::small(App::Pip1).frames(4);
        let (r, rec) = run_sim_traced(cfg, 2);
        assert_eq!(r.iterations, 4);
        assert!(!rec.is_empty());
        let events = rec.events();
        trace::check_invariants(&events).expect("trace invariants hold");
        let spans = events
            .iter()
            .filter(|e| matches!(e, trace::TraceEvent::JobSpan { .. }))
            .count();
        assert_eq!(spans as u64, r.jobs_executed);
    }

    #[test]
    fn more_cores_do_not_slow_down_much() {
        let cfg = AppConfig::small(App::Pip1).frames(6);
        let one = run_sim(cfg, 1).cycles;
        let four = run_sim(cfg, 4).cycles;
        assert!(four < one, "4 cores ({four}) should beat 1 core ({one})");
    }
}
