//! Blur: Gaussian kernel over the luminance field.
//!
//! A 3×3 or 5×5 kernel (σ=1) applied to the Y field of a 360×288 video,
//! 96 frames. The kernel is separated into a horizontal and a vertical
//! phase, run in parallel with *cross dependencies* (§3.3, Fig. 5) using
//! 9 data-parallel slices — the vertical phase of slice *i* needs the
//! horizontal results of slices *i−1*, *i*, *i+1* for its boundary rows.
//!
//! Blur-35 switches the kernel size every 12 frames through the manager's
//! *broadcast* action: the injected event's payload (5 or 3) is delivered
//! to every component in the managed subgraph as a `ksize` reconfiguration
//! request under quiescence.
//!
//! In the sequential baseline no operations are combined (paper §4.1), so
//! the XSPCL version's overhead is expected to be ≈ 0.

use crate::registry::{registry, AppAssets};
use hinch::meter::{AccessKind, MemAccess, Meter};
use media::blur::{blur_h_rows, blur_v_rows};
use media::costs::*;
use media::video::{RawVideo, VideoSpec};
use std::sync::Arc;
use xspcl::{compile, Elaborated, XspclError};

/// Configuration of a Blur build.
#[derive(Debug, Clone)]
pub struct BlurConfig {
    /// Kernel size: 3 or 5.
    pub ksize: usize,
    pub width: usize,
    pub height: usize,
    /// Data-parallel slices of the crossdep group (9 in the paper).
    pub slices: usize,
    pub distinct_frames: usize,
    pub seed: u64,
    /// `Some(n)`: Blur-35, alternating 5×5/3×3 every `n` frames.
    pub reconfig_every: Option<u64>,
}

impl BlurConfig {
    /// The paper's configuration with the given kernel.
    pub fn paper(ksize: usize) -> Self {
        Self {
            ksize,
            width: 360,
            height: 288,
            slices: 9,
            distinct_frames: 8,
            seed: 99,
            reconfig_every: None,
        }
    }

    /// The paper's Blur-35 (kernel switched every 12 frames, starting 3×3).
    pub fn paper_reconfig() -> Self {
        Self {
            reconfig_every: Some(12),
            ..Self::paper(3)
        }
    }

    /// A small configuration for tests.
    pub fn small(ksize: usize) -> Self {
        Self {
            ksize,
            width: 40,
            height: 36,
            slices: 3,
            distinct_frames: 3,
            seed: 5,
            reconfig_every: None,
        }
    }
}

/// Emit the XSPCL document for `cfg`.
pub fn blur_xml(cfg: &BlurConfig) -> String {
    assert!(cfg.ksize == 3 || cfg.ksize == 5);
    let mut s = String::from("<xspcl>\n");
    if cfg.reconfig_every.is_some() {
        s.push_str("  <queue name=\"mq\"/>\n");
    }
    s.push_str("  <procedure name=\"main\">\n");
    s.push_str("    <stream name=\"in\"/><stream name=\"hmid\"/><stream name=\"out\"/>\n");
    s.push_str("    <body>\n");
    if let Some(every) = cfg.reconfig_every {
        s.push_str(&format!(
            r#"      <manager name="m" queue="mq">
        <on event="switch"><broadcast key="ksize"/></on>
        <body>
          <component name="inj" class="injector">
            <param name="events" queue="mq"/>
            <param name="event" value="switch"/>
            <param name="every" value="{every}"/>
            <param name="lead" value="{lead}"/>
            <param name="payloads" value="5,3"/>
          </component>
"#,
            lead = every.saturating_sub(2).min(6)
        ));
    }
    s.push_str(
        "      <component name=\"input\" class=\"plane_source\"><out port=\"output\" stream=\"in\"/><param name=\"file\" value=\"video\"/><param name=\"field\" value=\"0\"/></component>\n",
    );
    s.push_str(&format!(
        r#"      <parallel shape="crossdep" n="{n}" name="blur">
        <parblock>
          <component name="horizontal" class="blur_h">
            <in port="input" stream="in"/>
            <out port="output" stream="hmid"/>
            <param name="ksize" value="{k}"/>
          </component>
        </parblock>
        <parblock>
          <component name="vertical" class="blur_v">
            <in port="input" stream="hmid"/>
            <out port="output" stream="out"/>
            <param name="ksize" value="{k}"/>
          </component>
        </parblock>
      </parallel>
"#,
        n = cfg.slices,
        k = cfg.ksize
    ));
    s.push_str(
        "      <component name=\"output\" class=\"frame_sink\"><in port=\"y\" stream=\"out\"/><param name=\"capture\" value=\"out\"/><param name=\"ports\" value=\"1\"/></component>\n",
    );
    if cfg.reconfig_every.is_some() {
        s.push_str("        </body>\n      </manager>\n");
    }
    s.push_str("    </body>\n  </procedure>\n</xspcl>\n");
    s
}

/// A compiled, runnable Blur application.
pub struct BlurApp {
    pub cfg: BlurConfig,
    pub assets: Arc<AppAssets>,
    pub elaborated: Elaborated,
    pub xml: String,
}

pub fn build(cfg: &BlurConfig) -> Result<BlurApp, XspclError> {
    build_on(cfg, AppAssets::new())
}

/// Like [`build`], reusing an already-generated video in `assets`.
pub fn build_on(cfg: &BlurConfig, assets: Arc<AppAssets>) -> Result<BlurApp, XspclError> {
    let spec = VideoSpec::new(cfg.width, cfg.height, cfg.distinct_frames, cfg.seed);
    assets.ensure_raw("video", || Arc::new(RawVideo::generate(spec)));
    assets.capture_set("out", 1);
    let xml = blur_xml(cfg);
    let reg = registry(&assets);
    let elaborated = compile(&xml, &reg)?;
    Ok(BlurApp {
        cfg: cfg.clone(),
        assets,
        elaborated,
        xml,
    })
}

/// Kernel size of iteration `iter` under the Blur-35 schedule: the
/// injector fires at `every-1, 2*every-1, ...` with payloads 5,3,5,...;
/// the manager applies the broadcast after quiescing, so the change takes
/// effect a couple of iterations later. For the *baseline* (which has no
/// pipeline) the paper's intent is simply "switch every 12 frames".
pub fn baseline_ksize(iter: u64, every: u64, start: usize) -> usize {
    let phase = (iter / every) % 2;
    if phase == 0 {
        start
    } else if start == 3 {
        5
    } else {
        3
    }
}

/// The hand-written sequential Blur baseline: no fusion, reused buffers,
/// no run-time system. `ksize_of(iter)` selects the kernel per frame.
pub fn sequential(
    cfg: &BlurConfig,
    assets: &AppAssets,
    frames: u64,
    ksize_of: impl Fn(u64) -> usize,
    meter: &mut dyn Meter,
) -> Vec<Vec<u8>> {
    let video = assets.raw("video");
    let (w, h) = (cfg.width, cfg.height);
    let buf_base = hinch::meter::sim_alloc((w * h) as u64);
    let tmp_base = hinch::meter::sim_alloc((w * h) as u64);
    let out_base = hinch::meter::sim_alloc((w * h) as u64);
    let file_base = hinch::meter::sim_alloc((w * h) as u64);
    let mut buf = vec![0u8; w * h];
    let mut tmp = vec![0u8; w * h];
    let mut out = vec![0u8; w * h];
    let mut outputs = Vec::with_capacity(frames as usize);
    let plane = (w * h) as u64;
    for frame in 0..frames {
        let ksize = ksize_of(frame);
        // read the frame from the file into the working buffer
        meter.touch(video.read_access(frame as usize, 0));
        buf.copy_from_slice(video.field(frame as usize, 0));
        meter.touch(MemAccess {
            base: buf_base,
            len: plane,
            kind: AccessKind::Write,
        });
        meter.charge(CYC_SOURCE_PX * plane);
        // horizontal phase
        let px = blur_h_rows(&buf, w, h, ksize, 0..h, &mut tmp);
        meter.touch(MemAccess {
            base: buf_base,
            len: plane,
            kind: AccessKind::Read,
        });
        meter.touch(MemAccess {
            base: tmp_base,
            len: plane,
            kind: AccessKind::Write,
        });
        meter.charge(
            if ksize == 3 {
                CYC_BLUR_H3_PX
            } else {
                CYC_BLUR_H5_PX
            } * px,
        );
        // vertical phase
        let px = blur_v_rows(&tmp, w, h, ksize, 0..h, &mut out);
        meter.touch(MemAccess {
            base: tmp_base,
            len: plane,
            kind: AccessKind::Read,
        });
        meter.touch(MemAccess {
            base: out_base,
            len: plane,
            kind: AccessKind::Write,
        });
        meter.charge(
            if ksize == 3 {
                CYC_BLUR_V3_PX
            } else {
                CYC_BLUR_V5_PX
            } * px,
        );
        // write out
        meter.touch(MemAccess {
            base: out_base,
            len: plane,
            kind: AccessKind::Read,
        });
        meter.touch(MemAccess {
            base: file_base,
            len: plane,
            kind: AccessKind::Write,
        });
        meter.charge(CYC_COPY_PX * plane);
        outputs.push(out.clone());
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinch::engine::{run_native, RunConfig};
    use hinch::meter::NullMeter;

    #[test]
    fn xml_compiles_for_all_variants() {
        for cfg in [
            BlurConfig::small(3),
            BlurConfig::small(5),
            BlurConfig {
                reconfig_every: Some(4),
                ..BlurConfig::small(3)
            },
        ] {
            let app = build(&cfg).expect("compiles");
            assert!(app.elaborated.spec.leaf_count() > 0);
        }
    }

    #[test]
    fn xspcl_output_matches_sequential_baseline() {
        for ksize in [3, 5] {
            let cfg = BlurConfig::small(ksize);
            let app = build(&cfg).unwrap();
            let frames = 6u64;
            run_native(&app.elaborated.spec, &RunConfig::new(frames).workers(3)).unwrap();
            let mut meter = NullMeter;
            let want = sequential(&cfg, &app.assets, frames, |_| ksize, &mut meter);
            let got = app.assets.captured("out", 0);
            assert_eq!(got.len(), frames as usize);
            for (i, frame) in got.iter().enumerate() {
                assert_eq!(frame, &want[i], "ksize={ksize} frame={i} differs");
            }
        }
    }

    #[test]
    fn crossdep_structure() {
        let app = build(&BlurConfig::small(3)).unwrap();
        // src + blur_h + blur_v + sink (pre-expansion)
        assert_eq!(app.elaborated.spec.leaf_count(), 4);
    }

    #[test]
    fn blur35_switches_kernels() {
        let cfg = BlurConfig {
            reconfig_every: Some(3),
            ..BlurConfig::small(3)
        };
        let app = build(&cfg).unwrap();
        let frames = 12u64;
        let report = run_native(&app.elaborated.spec, &RunConfig::new(frames).workers(2)).unwrap();
        assert_eq!(report.iterations, frames);
        assert!(report.reconfigs >= 2, "got {}", report.reconfigs);
        let got = app.assets.captured("out", 0);
        assert_eq!(got.len(), frames as usize);
        // compare each output frame against the 3x3 and 5x5 references:
        // every frame must equal one of them, and both kernels must occur
        let mut used3 = false;
        let mut used5 = false;
        let mut meter = NullMeter;
        let want3 = sequential(&cfg, &app.assets, frames, |_| 3, &mut meter);
        let want5 = sequential(&cfg, &app.assets, frames, |_| 5, &mut meter);
        for (i, frame) in got.iter().enumerate() {
            if frame == &want3[i] {
                used3 = true;
            } else if frame == &want5[i] {
                used5 = true;
            } else {
                panic!("frame {i} matches neither kernel");
            }
        }
        assert!(
            used3 && used5,
            "both kernels must be exercised (3:{used3} 5:{used5})"
        );
    }

    #[test]
    fn baseline_ksize_schedule() {
        // start 3, switch every 12: frames 0-11 → 3, 12-23 → 5, 24-35 → 3
        assert_eq!(baseline_ksize(0, 12, 3), 3);
        assert_eq!(baseline_ksize(11, 12, 3), 3);
        assert_eq!(baseline_ksize(12, 12, 3), 5);
        assert_eq!(baseline_ksize(23, 12, 3), 5);
        assert_eq!(baseline_ksize(24, 12, 3), 3);
    }
}
