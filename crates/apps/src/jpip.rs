//! JPEG Picture-in-Picture (JPiP).
//!
//! Like PiP, but the inputs are MJPEG streams: each frame must be entropy
//! decoded and inverse-transformed before scaling and blending (the
//! paper's Fig. 7). The application is in Series-Parallel form with a
//! synchronization point between each operation: inputs → decodes → IDCTs
//! → down scales → blends → output, fields task-parallel within each
//! operation, IDCT/scaler/blender sliced ×45 (paper: 1280×720, factor 16,
//! 24 frames).
//!
//! The sequential baseline fuses decode and IDCT block-wise — a decoded
//! block is transformed while still in the cache — whereas the XSPCL
//! version materializes full coefficient planes in streams between the
//! decode and IDCT components. That locality difference is what the
//! paper's profiling blames for JPiP's ~18 % sequential overhead.

use crate::registry::{registry, AppAssets};
use hinch::meter::{AccessKind, MemAccess, Meter};
use media::costs::*;
use media::jpeg::codec::{idct_block_to_pixels, ScanDecoder};
use media::jpeg::mjpeg::MjpegVideo;
use media::jpeg::quant::Channel;
use media::scale::scaled_dims;
use media::video::VideoSpec;
use std::sync::Arc;
use xspcl::{compile, Elaborated, XspclError};

/// Configuration of a JPiP build.
#[derive(Debug, Clone)]
pub struct JpipConfig {
    pub pips: usize,
    pub width: usize,
    pub height: usize,
    /// Down-scale factor for the pictures (16 in the paper).
    pub factor: usize,
    /// Slice count for IDCT / scaler / blender groups (45 in the paper).
    pub slices: usize,
    /// JPEG quality of the synthesized streams.
    pub quality: u8,
    pub distinct_frames: usize,
    pub seed: u64,
    pub reconfig_every: Option<u64>,
    /// Tile-granular fusion: replace the `jpeg_decode` → stream →
    /// `sliced_idct` pipeline with per-field `jpeg_decode_idct`
    /// components, so coefficient tiles never round-trip whole planes
    /// through stream buffers (trades the ×`slices` IDCT data
    /// parallelism for the sequential baseline's block locality; fields
    /// stay task-parallel).
    pub fuse: bool,
}

impl JpipConfig {
    /// The paper's configuration with `pips` pictures.
    pub fn paper(pips: usize) -> Self {
        Self {
            pips,
            width: 1280,
            height: 720,
            factor: 16,
            slices: 45,
            quality: 75,
            distinct_frames: 4,
            seed: 1729,
            reconfig_every: None,
            fuse: false,
        }
    }

    /// The paper's JPiP-12 (second picture toggled every 12 frames).
    pub fn paper_reconfig() -> Self {
        Self {
            reconfig_every: Some(12),
            ..Self::paper(2)
        }
    }

    /// A small configuration for tests (dimensions must be multiples of 8).
    pub fn small(pips: usize) -> Self {
        Self {
            pips,
            width: 64,
            height: 32,
            factor: 8,
            slices: 3,
            quality: 80,
            distinct_frames: 2,
            seed: 11,
            reconfig_every: None,
            fuse: false,
        }
    }

    /// Enable tile-granular decode+IDCT fusion.
    pub fn fused(mut self) -> Self {
        self.fuse = true;
        self
    }

    pub fn position(&self, k: usize) -> (usize, usize) {
        let (pw, _) = scaled_dims(self.width, self.height, self.factor);
        let margin = (self.width / 45).max(2);
        if k == 0 {
            (margin, margin)
        } else {
            (self.width - pw - margin, margin)
        }
    }
}

pub(crate) const JPEG_PROCS: &str = r#"
  <procedure name="jpeg_in">
    <formal name="file"/>
    <formalstream name="cy"/><formalstream name="cu"/><formalstream name="cv"/>
    <stream name="compressed"/>
    <body>
      <component name="input" class="mjpeg_source">
        <out port="output" stream="compressed"/>
        <param name="file" value="$file"/>
      </component>
      <component name="decode" class="jpeg_decode">
        <in port="input" stream="compressed"/>
        <out port="y" stream="cy"/><out port="u" stream="cu"/><out port="v" stream="cv"/>
      </component>
    </body>
  </procedure>
  <procedure name="sliced_idct">
    <formal name="slices"/>
    <formalstream name="input"/><formalstream name="output"/>
    <body>
      <parallel shape="slice" n="$slices" name="id">
        <parblock>
          <component name="idct" class="idct">
            <in port="input" stream="input"/>
            <out port="output" stream="output"/>
          </component>
        </parblock>
      </parallel>
    </body>
  </procedure>
"#;

/// Fused input procedure: the compressed stream feeds three per-field
/// `jpeg_decode_idct` components that emit pixel planes directly — no
/// coefficient streams, no sliced IDCT stage.
pub(crate) const JPEG_FUSED_PROCS: &str = r#"
  <procedure name="jpeg_in_fused">
    <formal name="file"/>
    <formalstream name="py"/><formalstream name="pu"/><formalstream name="pv"/>
    <stream name="compressed"/>
    <body>
      <component name="input" class="mjpeg_source">
        <out port="output" stream="compressed"/>
        <param name="file" value="$file"/>
      </component>
      <parallel shape="task" name="fields">
        <parblock>
          <component name="f0" class="jpeg_decode_idct">
            <in port="input" stream="compressed"/>
            <out port="output" stream="py"/>
            <param name="field" value="0"/>
          </component>
        </parblock>
        <parblock>
          <component name="f1" class="jpeg_decode_idct">
            <in port="input" stream="compressed"/>
            <out port="output" stream="pu"/>
            <param name="field" value="1"/>
          </component>
        </parblock>
        <parblock>
          <component name="f2" class="jpeg_decode_idct">
            <in port="input" stream="compressed"/>
            <out port="output" stream="pv"/>
            <param name="field" value="2"/>
          </component>
        </parblock>
      </parallel>
    </body>
  </procedure>
"#;

/// Emit the XSPCL document for `cfg`.
pub fn jpip_xml(cfg: &JpipConfig) -> String {
    assert!(
        cfg.pips >= 1 && cfg.pips <= 2,
        "JPiP supports 1 or 2 pictures"
    );
    let mut s = String::from("<xspcl>\n");
    if cfg.reconfig_every.is_some() {
        s.push_str("  <queue name=\"mq\"/>\n");
    }
    if cfg.fuse {
        s.push_str(JPEG_FUSED_PROCS);
    } else {
        s.push_str(JPEG_PROCS);
    }
    s.push_str(crate::pip::SLICED_OPS);
    s.push_str("  <procedure name=\"main\">\n");
    let fuse = cfg.fuse;
    let streams_of = |v: &str| -> String {
        (0..3)
            .map(|f| {
                if fuse {
                    // fused: pixel planes come straight out of the decode
                    format!("    <stream name=\"px_{v}_{f}\"/>\n")
                } else {
                    format!("    <stream name=\"c_{v}_{f}\"/><stream name=\"px_{v}_{f}\"/>\n")
                }
            })
            .collect()
    };
    s.push_str(&streams_of("bg"));
    s.push_str(&streams_of("p1"));
    if cfg.pips == 2 {
        s.push_str(&streams_of("p2"));
    }
    for f in 0..3 {
        s.push_str(&format!(
            "    <stream name=\"small1_{f}\"/><stream name=\"o1_{f}\"/>\n"
        ));
        if cfg.pips == 2 {
            s.push_str(&format!(
                "    <stream name=\"small2_{f}\"/><stream name=\"o2_{f}\"/>\n"
            ));
        }
    }
    s.push_str("    <body>\n");
    let reconfig = cfg.reconfig_every;
    if let Some(every) = reconfig {
        s.push_str(&format!(
            r#"      <manager name="m" queue="mq">
        <on event="flip"><toggle option="pip2"/><toggle option="bypass"/></on>
        <body>
          <component name="inj" class="injector">
            <param name="events" queue="mq"/>
            <param name="event" value="flip"/>
            <param name="every" value="{every}"/>
            <param name="lead" value="{lead}"/>
          </component>
"#,
            lead = every.saturating_sub(2).min(6)
        ));
    }

    let jpeg_in_call = |v: &str, file: &str| {
        if fuse {
            format!(
                "<call procedure=\"jpeg_in_fused\"><param name=\"file\" value=\"{file}\"/><bind formal=\"py\" stream=\"px_{v}_0\"/><bind formal=\"pu\" stream=\"px_{v}_1\"/><bind formal=\"pv\" stream=\"px_{v}_2\"/></call>"
            )
        } else {
            format!(
                "<call procedure=\"jpeg_in\"><param name=\"file\" value=\"{file}\"/><bind formal=\"cy\" stream=\"c_{v}_0\"/><bind formal=\"cu\" stream=\"c_{v}_1\"/><bind formal=\"cv\" stream=\"c_{v}_2\"/></call>"
            )
        }
    };
    let idct_call = |v: &str, f: usize, slices: usize| {
        format!(
            "<call procedure=\"sliced_idct\"><bind formal=\"input\" stream=\"c_{v}_{f}\"/><bind formal=\"output\" stream=\"px_{v}_{f}\"/><param name=\"slices\" value=\"{slices}\"/></call>"
        )
    };

    // inputs + decodes (bg and picture 1)
    s.push_str("      <parallel shape=\"task\" name=\"inputs\">\n");
    s.push_str(&format!(
        "        <parblock>{}</parblock>\n",
        jpeg_in_call("bg", "bg")
    ));
    s.push_str(&format!(
        "        <parblock>{}</parblock>\n",
        jpeg_in_call("p1", "pip1")
    ));
    s.push_str("      </parallel>\n");
    if !fuse {
        // IDCTs for all fields of bg and p1 (one operation, fields concurrent)
        s.push_str("      <parallel shape=\"task\" name=\"idcts\">\n");
        for v in ["bg", "p1"] {
            for f in 0..3 {
                s.push_str(&format!(
                    "        <parblock>{}</parblock>\n",
                    idct_call(v, f, cfg.slices)
                ));
            }
        }
        s.push_str("      </parallel>\n");
    }
    // down scales of picture 1
    s.push_str("      <parallel shape=\"task\" name=\"scales\">\n");
    for f in 0..3 {
        s.push_str(&format!(
            "        <parblock><call procedure=\"sliced_downscale\"><bind formal=\"input\" stream=\"px_p1_{f}\"/><bind formal=\"output\" stream=\"small1_{f}\"/><param name=\"factor\" value=\"{}\"/><param name=\"slices\" value=\"{}\"/></call></parblock>\n",
            cfg.factor, cfg.slices
        ));
    }
    s.push_str("      </parallel>\n");
    // blends of picture 1 into the background
    let (x1, y1) = cfg.position(0);
    s.push_str("      <parallel shape=\"task\" name=\"blends\">\n");
    for f in 0..3 {
        s.push_str(&format!(
            "        <parblock><call procedure=\"sliced_blend\"><bind formal=\"background\" stream=\"px_bg_{f}\"/><bind formal=\"picture\" stream=\"small1_{f}\"/><bind formal=\"output\" stream=\"o1_{f}\"/><param name=\"x\" value=\"{x1}\"/><param name=\"y\" value=\"{y1}\"/><param name=\"slices\" value=\"{}\"/></call></parblock>\n",
            cfg.slices
        ));
    }
    s.push_str("      </parallel>\n");

    if cfg.pips == 2 {
        let (x2, y2) = cfg.position(1);
        let chain2 = {
            let mut c = String::new();
            c.push_str(&format!("        {}\n", jpeg_in_call("p2", "pip2")));
            if !fuse {
                c.push_str("        <parallel shape=\"task\" name=\"idct2\">\n");
                for f in 0..3 {
                    c.push_str(&format!(
                        "          <parblock>{}</parblock>\n",
                        idct_call("p2", f, cfg.slices)
                    ));
                }
                c.push_str("        </parallel>\n");
            }
            c.push_str("        <parallel shape=\"task\" name=\"scale2\">\n");
            for f in 0..3 {
                c.push_str(&format!(
                    "          <parblock><call procedure=\"sliced_downscale\"><bind formal=\"input\" stream=\"px_p2_{f}\"/><bind formal=\"output\" stream=\"small2_{f}\"/><param name=\"factor\" value=\"{}\"/><param name=\"slices\" value=\"{}\"/></call></parblock>\n",
                    cfg.factor, cfg.slices
                ));
            }
            c.push_str("        </parallel>\n        <parallel shape=\"task\" name=\"blend2\">\n");
            for f in 0..3 {
                c.push_str(&format!(
                    "          <parblock><call procedure=\"sliced_blend\"><bind formal=\"background\" stream=\"o1_{f}\"/><bind formal=\"picture\" stream=\"small2_{f}\"/><bind formal=\"output\" stream=\"o2_{f}\"/><param name=\"x\" value=\"{x2}\"/><param name=\"y\" value=\"{y2}\"/><param name=\"slices\" value=\"{}\"/></call></parblock>\n",
                    cfg.slices
                ));
            }
            c.push_str("        </parallel>\n");
            c
        };
        if reconfig.is_some() {
            s.push_str("      <option name=\"pip2\" enabled=\"false\">\n");
            s.push_str(&chain2);
            s.push_str("      </option>\n      <option name=\"bypass\" enabled=\"true\">\n        <parallel shape=\"task\" name=\"byp\">\n");
            for f in 0..3 {
                s.push_str(&format!(
                    "          <parblock><component name=\"pass{f}\" class=\"pass\"><in port=\"input\" stream=\"o1_{f}\"/><out port=\"output\" stream=\"o2_{f}\"/></component></parblock>\n"
                ));
            }
            s.push_str("        </parallel>\n      </option>\n");
        } else {
            s.push_str(&chain2);
        }
    }

    let out = if cfg.pips == 2 { "o2_" } else { "o1_" };
    s.push_str(&format!(
        "      <component name=\"output\" class=\"frame_sink\"><in port=\"y\" stream=\"{out}0\"/><in port=\"u\" stream=\"{out}1\"/><in port=\"v\" stream=\"{out}2\"/><param name=\"capture\" value=\"out\"/></component>\n"
    ));
    if reconfig.is_some() {
        s.push_str("        </body>\n      </manager>\n");
    }
    s.push_str("    </body>\n  </procedure>\n</xspcl>\n");
    s
}

/// A compiled, runnable JPiP application.
pub struct JpipApp {
    pub cfg: JpipConfig,
    pub assets: Arc<AppAssets>,
    pub elaborated: Elaborated,
    pub xml: String,
}

/// Generate + encode the inputs, build the registry, compile the XSPCL.
pub fn build(cfg: &JpipConfig) -> Result<JpipApp, XspclError> {
    build_on(cfg, AppAssets::new())
}

/// Like [`build`], reusing already-encoded videos in `assets`.
pub fn build_on(cfg: &JpipConfig, assets: Arc<AppAssets>) -> Result<JpipApp, XspclError> {
    let spec = VideoSpec::new(cfg.width, cfg.height, cfg.distinct_frames, cfg.seed);
    assets.ensure_mjpeg("bg", || Arc::new(MjpegVideo::generate(spec, cfg.quality)));
    assets.ensure_mjpeg("pip1", || {
        Arc::new(MjpegVideo::generate(
            VideoSpec {
                seed: cfg.seed + 1,
                ..spec
            },
            cfg.quality,
        ))
    });
    if cfg.pips == 2 {
        assets.ensure_mjpeg("pip2", || {
            Arc::new(MjpegVideo::generate(
                VideoSpec {
                    seed: cfg.seed + 2,
                    ..spec
                },
                cfg.quality,
            ))
        });
    }
    assets.capture_set("out", 3);
    let xml = jpip_xml(cfg);
    let reg = registry(&assets);
    let elaborated = compile(&xml, &reg)?;
    Ok(JpipApp {
        cfg: cfg.clone(),
        assets,
        elaborated,
        xml,
    })
}

/// Decode one plane block-wise, fusing entropy decode and IDCT (the
/// sequential baseline's locality advantage), writing into `out`.
#[allow(clippy::too_many_arguments)]
fn decode_plane_fused(
    scan: &[u8],
    w: usize,
    h: usize,
    channel: Channel,
    quality: u8,
    out: &mut [u8],
    meter: &mut dyn Meter,
    out_base: u64,
) {
    let mut dec = ScanDecoder::new(scan, w, h, channel, quality);
    let blocks_w = w / 8;
    let blocks_h = h / 8;
    let mut coefs = [0i16; 64];
    let mut pix = [0u8; 64];
    for by in 0..blocks_h {
        for bx in 0..blocks_w {
            let ok = dec.next_block(&mut coefs);
            debug_assert!(ok);
            idct_block_to_pixels(&coefs, &mut pix);
            for y in 0..8 {
                let dst = (by * 8 + y) * w + bx * 8;
                out[dst..dst + 8].copy_from_slice(&pix[y * 8..(y + 1) * 8]);
            }
        }
        // pixel stripe of this block row is written out
        meter.touch(MemAccess {
            base: out_base + (by * 8 * w) as u64,
            len: (8 * w) as u64,
            kind: AccessKind::Write,
        });
    }
    meter.charge(
        CYC_ENTROPY_BLOCK * dec.stats.blocks
            + CYC_ENTROPY_COEF * dec.stats.coded_coefs
            + CYC_IDCT_BLOCK * dec.stats.blocks,
    );
}

/// The hand-written sequential JPiP baseline. Bit-identical outputs to the
/// XSPCL application.
#[allow(clippy::needless_range_loop)]
pub fn sequential(
    cfg: &JpipConfig,
    assets: &AppAssets,
    frames: u64,
    meter: &mut dyn Meter,
) -> Vec<[Vec<u8>; 3]> {
    let bg = assets.mjpeg("bg");
    let pips: Vec<Arc<MjpegVideo>> = (0..cfg.pips)
        .map(|k| assets.mjpeg(&format!("pip{}", k + 1)))
        .collect();
    let (w, h) = (cfg.width, cfg.height);
    let (pw, ph) = scaled_dims(w, h, cfg.factor);
    let composed_base = hinch::meter::sim_alloc((w * h) as u64);
    let pip_base = hinch::meter::sim_alloc((w * h) as u64);
    let file_base = hinch::meter::sim_alloc((w * h * 3) as u64);
    let mut composed = vec![0u8; w * h];
    let mut pip_px = vec![0u8; w * h];
    let mut outputs = Vec::with_capacity(frames as usize);
    for frame in 0..frames as usize {
        let mut fields: [Vec<u8>; 3] = Default::default();
        for field in [0, 1, 2] {
            let channel = media::jpeg::codec::JpegImage::channel_of(field);
            // decode the background straight into the composed buffer
            let img = bg.frame(frame);
            meter.touch(bg.read_access(frame, field));
            decode_plane_fused(
                &img.scans[field],
                w,
                h,
                channel,
                img.quality,
                &mut composed,
                meter,
                composed_base,
            );
            // decode each picture, then fused down scale + blend
            for (k, pip) in pips.iter().enumerate() {
                let (px, py) = cfg.position(k);
                let pimg = pip.frame(frame);
                meter.touch(pip.read_access(frame, field));
                decode_plane_fused(
                    &pimg.scans[field],
                    w,
                    h,
                    channel,
                    pimg.quality,
                    &mut pip_px,
                    meter,
                    pip_base,
                );
                let area = (cfg.factor * cfg.factor) as u32;
                for oy in 0..ph {
                    for ox in 0..pw {
                        let mut acc = 0u32;
                        for dy in 0..cfg.factor {
                            let row = (oy * cfg.factor + dy) * w + ox * cfg.factor;
                            acc += pip_px[row..row + cfg.factor]
                                .iter()
                                .map(|&p| p as u32)
                                .sum::<u32>();
                        }
                        composed[(py + oy) * w + px + ox] = ((acc + area / 2) / area) as u8;
                    }
                }
                meter.touch(MemAccess {
                    base: pip_base,
                    len: (w * h) as u64,
                    kind: AccessKind::Read,
                });
                meter.charge(
                    CYC_DOWNSCALE_IN_PX * (pw * ph * cfg.factor * cfg.factor) as u64
                        + CYC_BLEND_PX * (pw * ph) as u64,
                );
                meter.touch(MemAccess {
                    base: composed_base + (py * w) as u64,
                    len: (ph * w) as u64,
                    kind: AccessKind::Write,
                });
            }
            // write the composed field to the output file
            meter.touch(MemAccess {
                base: file_base + (field * w * h) as u64,
                len: (w * h) as u64,
                kind: AccessKind::Write,
            });
            meter.charge(CYC_COPY_PX * (w * h) as u64);
            fields[field] = composed.clone();
        }
        outputs.push(fields);
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinch::engine::{run_native, RunConfig};
    use hinch::meter::NullMeter;

    #[test]
    fn xml_compiles_for_all_variants() {
        for cfg in [
            JpipConfig::small(1),
            JpipConfig::small(2),
            JpipConfig {
                reconfig_every: Some(4),
                ..JpipConfig::small(2)
            },
        ] {
            let app = build(&cfg).expect("compiles");
            assert!(app.elaborated.spec.leaf_count() > 0);
        }
    }

    #[test]
    fn figure7_structure() {
        // 1 picture: 2 sources, 2 decodes, 6 idcts, 3 scalers, 3 blenders,
        // 1 sink — the boxes of the paper's Fig. 7
        let app = build(&JpipConfig::small(1)).unwrap();
        let mut classes = std::collections::HashMap::new();
        app.elaborated.spec.visit_leaves(&mut |c| {
            *classes.entry(c.class.clone()).or_insert(0) += 1;
        });
        assert_eq!(classes["mjpeg_source"], 2);
        assert_eq!(classes["jpeg_decode"], 2);
        assert_eq!(classes["idct"], 6);
        assert_eq!(classes["downscale"], 3);
        assert_eq!(classes["blend"], 3);
        assert_eq!(classes["frame_sink"], 1);
    }

    #[test]
    fn xspcl_output_matches_sequential_baseline() {
        for pips in [1, 2] {
            let cfg = JpipConfig::small(pips);
            let app = build(&cfg).unwrap();
            let frames = 4u64;
            run_native(&app.elaborated.spec, &RunConfig::new(frames).workers(3)).unwrap();
            let mut meter = NullMeter;
            let want = sequential(&cfg, &app.assets, frames, &mut meter);
            for field in [0, 1, 2] {
                let got = app.assets.captured("out", field);
                assert_eq!(got.len(), frames as usize);
                for (i, frame) in got.iter().enumerate() {
                    assert_eq!(
                        frame, &want[i][field],
                        "pips={pips} field={field} frame={i} differs"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_structure_replaces_decode_and_idct() {
        // fused: 2 sources, 6 per-field fused decodes, no separate
        // decode/IDCT stages; scalers/blenders/sink unchanged
        let app = build(&JpipConfig::small(1).fused()).unwrap();
        let mut classes = std::collections::HashMap::new();
        app.elaborated.spec.visit_leaves(&mut |c| {
            *classes.entry(c.class.clone()).or_insert(0) += 1;
        });
        assert_eq!(classes["mjpeg_source"], 2);
        assert_eq!(classes["jpeg_decode_idct"], 6);
        assert!(!classes.contains_key("jpeg_decode"));
        assert!(!classes.contains_key("idct"));
        assert_eq!(classes["downscale"], 3);
        assert_eq!(classes["blend"], 3);
        assert_eq!(classes["frame_sink"], 1);
    }

    #[test]
    fn fused_output_matches_sequential_baseline() {
        for pips in [1, 2] {
            let cfg = JpipConfig::small(pips).fused();
            let app = build(&cfg).unwrap();
            let frames = 4u64;
            run_native(&app.elaborated.spec, &RunConfig::new(frames).workers(3)).unwrap();
            let mut meter = NullMeter;
            let want = sequential(&cfg, &app.assets, frames, &mut meter);
            for field in [0, 1, 2] {
                let got = app.assets.captured("out", field);
                assert_eq!(got.len(), frames as usize);
                for (i, frame) in got.iter().enumerate() {
                    assert_eq!(
                        frame, &want[i][field],
                        "fused pips={pips} field={field} frame={i} differs"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_reconfigurable_variant_runs() {
        let cfg = JpipConfig {
            reconfig_every: Some(3),
            ..JpipConfig::small(2)
        }
        .fused();
        let app = build(&cfg).unwrap();
        let report = run_native(&app.elaborated.spec, &RunConfig::new(9).workers(2)).unwrap();
        assert_eq!(report.iterations, 9);
        assert!(report.reconfigs >= 1);
        assert_eq!(app.assets.captured("out", 0).len(), 9);
    }

    #[test]
    fn reconfigurable_variant_runs() {
        let cfg = JpipConfig {
            reconfig_every: Some(3),
            ..JpipConfig::small(2)
        };
        let app = build(&cfg).unwrap();
        let report = run_native(&app.elaborated.spec, &RunConfig::new(9).workers(2)).unwrap();
        assert_eq!(report.iterations, 9);
        assert!(report.reconfigs >= 1);
        assert_eq!(app.assets.captured("out", 0).len(), 9);
    }
}
