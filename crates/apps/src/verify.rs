//! Output verification helpers: XSPCL runs vs sequential baselines, and
//! the registered-application corpus the static analyzer must pass.

use crate::experiment::{self, App, AppConfig};
use crate::{mosaic, telescope};

/// The XSPCL source of every registered application, labelled: the nine
/// measured apps of the paper plus the mosaic and telescope extensions.
/// This is the corpus `xspclc analyze` and CI check stays diagnostic-free.
pub fn app_specs() -> Vec<(String, String)> {
    let mut specs: Vec<(String, String)> = Vec::new();
    for app in App::STATIC.into_iter().chain(App::RECONFIG) {
        let built = experiment::build(AppConfig::small(app));
        specs.push((app.label().to_string(), built.xml));
    }
    specs.push((
        "Mosaic".to_string(),
        mosaic::mosaic_xml(&mosaic::MosaicConfig::small(4)),
    ));
    specs.push((
        "Telescope".to_string(),
        telescope::telescope_xml(&telescope::TelescopeConfig::small()),
    ));
    specs
}

/// Elaborate and statically analyze every registered application,
/// returning `(label, diagnostics)` pairs. All should be empty; tests and
/// CI fail on any finding.
pub fn analyze_apps() -> Vec<(String, xspcl::Diagnostics)> {
    app_specs()
        .into_iter()
        .map(|(label, xml)| {
            let e = xspcl::compile(&xml, &xspcl::ComponentRegistry::stubbed())
                .unwrap_or_else(|err| panic!("{label}: spec does not compile: {err}"));
            (label, analyze::check_app(&e))
        })
        .collect()
}

/// Compare two frame sequences; panics with a precise location on any
/// mismatch.
pub fn assert_frames_equal(got: &[Vec<u8>], want: &[Vec<u8>], label: &str) {
    assert_eq!(
        got.len(),
        want.len(),
        "{label}: frame count {} vs {}",
        got.len(),
        want.len()
    );
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.len(), w.len(), "{label}: frame {i} size differs");
        if g != w {
            let first = g.iter().zip(w.iter()).position(|(a, b)| a != b).unwrap();
            panic!(
                "{label}: frame {i} differs first at pixel {first} ({} vs {})",
                g[first], w[first]
            );
        }
    }
}

/// Number of differing pixels between two frame sequences.
pub fn diff_pixels(got: &[Vec<u8>], want: &[Vec<u8>]) -> usize {
    got.iter()
        .zip(want.iter())
        .map(|(g, w)| g.iter().zip(w.iter()).filter(|(a, b)| a != b).count())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_frames_pass() {
        let a = vec![vec![1, 2, 3], vec![4, 5, 6]];
        assert_frames_equal(&a, &a.clone(), "t");
        assert_eq!(diff_pixels(&a, &a), 0);
    }

    #[test]
    #[should_panic(expected = "differs first at pixel 1")]
    fn unequal_frames_report_position() {
        let a = vec![vec![1, 2, 3]];
        let b = vec![vec![1, 9, 3]];
        assert_frames_equal(&a, &b, "t");
    }

    #[test]
    #[should_panic(expected = "frame count")]
    fn missing_frames_detected() {
        let a = vec![vec![1]];
        let b: Vec<Vec<u8>> = vec![];
        assert_frames_equal(&a, &b, "t");
    }

    #[test]
    fn diff_pixels_counts() {
        let a = vec![vec![1, 2, 3, 4]];
        let b = vec![vec![1, 0, 3, 0]];
        assert_eq!(diff_pixels(&a, &b), 2);
    }

    #[test]
    fn all_registered_apps_analyze_clean() {
        for (label, diags) in analyze_apps() {
            assert!(
                diags.is_empty(),
                "{label} has diagnostics:\n{}",
                diags.render_human()
            );
        }
    }
}
