//! The component registry: linking XSPCL classes to Rust components.
//!
//! In the paper, a component's `class` attribute names the C function that
//! initializes it and the generated glue is linked against the component
//! object code. Here, [`registry`] plays the linker: it binds every class
//! used by the applications to a constructor over the `media` components,
//! closed over the application's [`AppAssets`] (input videos, capture
//! buffers) — things an initialization parameter cannot carry as a string.
//!
//! Registered classes:
//!
//! | class | params | component |
//! |-------|--------|-----------|
//! | `plane_source` | `file`, `field` | [`media::components::PlaneSource`] |
//! | `mjpeg_source` | `file` | [`media::components::MjpegSource`] |
//! | `jpeg_decode` | — | [`media::components::JpegDecode`] |
//! | `jpeg_decode_idct` | `field` | [`media::components::JpegDecodeIdct`] |
//! | `idct` | — | [`media::components::Idct`] |
//! | `downscale` | `factor` | [`media::components::Downscale`] |
//! | `blend` | `x`, `y` | [`media::components::Blend`] |
//! | `blur_h` / `blur_v` | `ksize` | [`media::components::BlurH`] / [`media::components::BlurV`] |
//! | `frame_sink` | `capture` | [`media::components::FrameSink`] |
//! | `pass` | — | [`crate::reconfig::Pass`] |
//! | `injector` | `events` (queue), `event`, `every`, `payloads` | [`crate::reconfig::Injector`] |

use crate::reconfig::{Injector, Pass};
use dsp::components::{
    spectrum_accum, AntennaSource, Channelize, CombinePower, PowerDetect, SpectrumAccum,
    SpectrumIntegrator,
};
use dsp::signal::AntennaSignal;
use media::components::{
    capture, Blend, BlurH, BlurV, Capture, Downscale, FrameSink, Idct, JpegDecode, JpegDecodeIdct,
    MjpegSource, PlaneSource,
};
use media::jpeg::MjpegVideo;
use media::video::RawVideo;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use xspcl::elaborate::ComponentRegistry;

/// Everything an application's components need beyond string parameters.
#[derive(Default)]
pub struct AppAssets {
    raw: Mutex<HashMap<String, Arc<RawVideo>>>,
    mjpeg: Mutex<HashMap<String, Arc<MjpegVideo>>>,
    captures: Mutex<HashMap<String, Vec<Capture>>>,
    signals: Mutex<HashMap<String, Arc<AntennaSignal>>>,
    accums: Mutex<HashMap<String, SpectrumAccum>>,
}

impl AppAssets {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub fn add_raw(&self, name: impl Into<String>, video: Arc<RawVideo>) {
        self.raw.lock().insert(name.into(), video);
    }

    pub fn add_mjpeg(&self, name: impl Into<String>, video: Arc<MjpegVideo>) {
        self.mjpeg.lock().insert(name.into(), video);
    }

    /// Insert the raw video only if absent (asset reuse across builds).
    pub fn ensure_raw(
        &self,
        name: impl Into<String>,
        make: impl FnOnce() -> Arc<RawVideo>,
    ) -> Arc<RawVideo> {
        self.raw
            .lock()
            .entry(name.into())
            .or_insert_with(make)
            .clone()
    }

    /// Insert the MJPEG video only if absent.
    pub fn ensure_mjpeg(
        &self,
        name: impl Into<String>,
        make: impl FnOnce() -> Arc<MjpegVideo>,
    ) -> Arc<MjpegVideo> {
        self.mjpeg
            .lock()
            .entry(name.into())
            .or_insert_with(make)
            .clone()
    }

    /// Insert an antenna signal only if absent.
    pub fn ensure_signal(
        &self,
        name: impl Into<String>,
        make: impl FnOnce() -> Arc<AntennaSignal>,
    ) -> Arc<AntennaSignal> {
        self.signals
            .lock()
            .entry(name.into())
            .or_insert_with(make)
            .clone()
    }

    /// Adopt the *input* assets of `src` (raw/MJPEG videos, antenna
    /// signals) without touching the output state (captures,
    /// accumulators). Inputs are immutable `Arc`s, so adopting is
    /// refcount-only — this is how an isolated per-instance asset set
    /// (see [`crate::experiment::build_isolated`]) reuses the expensive
    /// process-wide generated videos while keeping captures private.
    pub fn adopt_inputs(&self, src: &AppAssets) {
        {
            let mut raw = self.raw.lock();
            for (k, v) in src.raw.lock().iter() {
                raw.entry(k.clone()).or_insert_with(|| v.clone());
            }
        }
        {
            let mut mjpeg = self.mjpeg.lock();
            for (k, v) in src.mjpeg.lock().iter() {
                mjpeg.entry(k.clone()).or_insert_with(|| v.clone());
            }
        }
        {
            let mut signals = self.signals.lock();
            for (k, v) in src.signals.lock().iter() {
                signals.entry(k.clone()).or_insert_with(|| v.clone());
            }
        }
    }

    pub fn signal(&self, name: &str) -> Arc<AntennaSignal> {
        self.signals
            .lock()
            .get(name)
            .unwrap_or_else(|| panic!("antenna signal '{name}' not registered"))
            .clone()
    }

    /// Create (or fetch) a named spectrum accumulator with `bins` bins.
    pub fn accumulator(&self, name: impl Into<String>, bins: usize) -> SpectrumAccum {
        self.accums
            .lock()
            .entry(name.into())
            .or_insert_with(|| spectrum_accum(bins))
            .clone()
    }

    /// Create (or fetch) a named capture set with `ports` buffers.
    pub fn capture_set(&self, name: impl Into<String>, ports: usize) -> Vec<Capture> {
        self.captures
            .lock()
            .entry(name.into())
            .or_insert_with(|| (0..ports).map(|_| capture()).collect())
            .clone()
    }

    pub fn raw(&self, name: &str) -> Arc<RawVideo> {
        self.raw
            .lock()
            .get(name)
            .unwrap_or_else(|| panic!("raw video '{name}' not registered"))
            .clone()
    }

    pub fn mjpeg(&self, name: &str) -> Arc<MjpegVideo> {
        self.mjpeg
            .lock()
            .get(name)
            .unwrap_or_else(|| panic!("mjpeg video '{name}' not registered"))
            .clone()
    }

    /// Captured frames of capture set `name`, port `port`.
    pub fn captured(&self, name: &str, port: usize) -> Vec<Vec<u8>> {
        let cap = {
            let caps = self.captures.lock();
            let set = caps
                .get(name)
                .unwrap_or_else(|| panic!("capture set '{name}' missing"));
            set[port].clone()
        };
        let frames = cap.lock().clone();
        frames
    }

    /// Drop all captured frames and accumulated spectra (between runs).
    pub fn clear_captures(&self) {
        for set in self.captures.lock().values() {
            for c in set {
                c.lock().clear();
            }
        }
        for accum in self.accums.lock().values() {
            let mut acc = accum.lock();
            acc.0.fill(0.0);
            acc.1 = 0;
        }
    }
}

/// Parse a comma-separated payload list (`"5,3"`).
fn parse_payloads(raw: &str) -> Vec<i64> {
    raw.split(',')
        .map(|p| p.trim().parse::<i64>().expect("payloads must be integers"))
        .collect()
}

/// Build the registry for the application classes over `assets`.
pub fn registry(assets: &Arc<AppAssets>) -> ComponentRegistry {
    let mut reg = ComponentRegistry::new();

    let a = assets.clone();
    reg.register("plane_source", move |p| {
        let video = a.raw(p.str("file"));
        let field = p.int("field") as usize;
        assert!(field < 3, "field must be 0..3");
        let label = format!("{}[{}]", p.str("file"), field);
        Box::new(PlaneSource::new(video, field, label))
    });

    let a = assets.clone();
    reg.register("mjpeg_source", move |p| {
        Box::new(MjpegSource::new(a.mjpeg(p.str("file"))))
    });

    reg.register("jpeg_decode", |p| {
        Box::new(JpegDecode::new(p.str_or("label", "dec").to_string()))
    });

    reg.register("jpeg_decode_idct", |p| {
        let field = p.int("field") as usize;
        Box::new(JpegDecodeIdct::new(
            field,
            format!("{}[{}]", p.str_or("label", "fused"), field),
        ))
    });

    reg.register("idct", |p| {
        Box::new(Idct::new(p.str_or("label", "idct").to_string()))
    });

    reg.register("downscale", |p| {
        let factor = p.int("factor") as usize;
        Box::new(Downscale::new(
            factor,
            p.str_or("label", "small").to_string(),
        ))
    });

    reg.register("blend", |p| {
        Box::new(Blend::new(
            p.int("x") as u32,
            p.int("y") as u32,
            p.str_or("label", "blended").to_string(),
        ))
    });

    reg.register("blur_h", |p| {
        Box::new(BlurH::new(
            p.int_or("ksize", 3) as usize,
            p.str_or("label", "hout").to_string(),
        ))
    });

    reg.register("blur_v", |p| {
        Box::new(BlurV::new(
            p.int_or("ksize", 3) as usize,
            p.str_or("label", "vout").to_string(),
        ))
    });

    let a = assets.clone();
    reg.register("frame_sink", move |p| {
        let name = p.str("capture");
        let ports = p.int_or("ports", 3) as usize;
        let caps = a.capture_set(name, ports);
        Box::new(FrameSink::new(caps.into_iter().map(Some).collect()))
    });

    reg.register("pass", |_p| Box::new(Pass));

    let a = assets.clone();
    reg.register("antenna_source", move |p| {
        Box::new(AntennaSource::new(a.signal(p.str("signal"))))
    });

    reg.register("channelize", |p| {
        Box::new(Channelize::new(p.int("n") as usize))
    });

    reg.register("power_detect", |p| {
        Box::new(PowerDetect::new(p.int("n") as usize))
    });

    reg.register("combine_power", |_p| Box::new(CombinePower));

    let a = assets.clone();
    reg.register("spectrum_integrator", move |p| {
        let bins = p.int("bins") as usize;
        Box::new(SpectrumIntegrator::new(
            bins,
            a.accumulator(p.str("accum"), bins),
        ))
    });

    reg.register("injector", |p| {
        let payloads = parse_payloads(p.str_or("payloads", "0"));
        Box::new(
            Injector::with_payloads(
                p.queue("events"),
                p.str("event").to_string(),
                p.int("every") as u64,
                payloads,
            )
            .lead(p.int_or("lead", 0) as u64),
        )
    });

    reg
}

#[cfg(test)]
mod tests {
    use super::*;
    use media::video::VideoSpec;

    #[test]
    fn registry_provides_all_classes() {
        let assets = AppAssets::new();
        let reg = registry(&assets);
        for class in [
            "plane_source",
            "mjpeg_source",
            "jpeg_decode",
            "jpeg_decode_idct",
            "idct",
            "downscale",
            "blend",
            "blur_h",
            "blur_v",
            "frame_sink",
            "pass",
            "injector",
            "antenna_source",
            "channelize",
            "power_detect",
            "combine_power",
            "spectrum_integrator",
        ] {
            assert!(reg.contains(class), "missing class '{class}'");
        }
    }

    #[test]
    fn capture_sets_are_shared_by_name() {
        let assets = AppAssets::new();
        let a = assets.capture_set("out", 3);
        let b = assets.capture_set("out", 3);
        a[1].lock().push(vec![1, 2, 3]);
        assert_eq!(assets.captured("out", 1), vec![vec![1, 2, 3]]);
        drop(b);
        assets.clear_captures();
        assert!(assets.captured("out", 1).is_empty());
    }

    #[test]
    fn assets_lookup() {
        let assets = AppAssets::new();
        assets.add_raw(
            "bg",
            Arc::new(RawVideo::generate(VideoSpec::new(8, 8, 1, 0))),
        );
        assert_eq!(assets.raw("bg").spec.width, 8);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn missing_video_panics() {
        let assets = AppAssets::new();
        let _ = assets.raw("ghost");
    }

    #[test]
    fn payload_parsing() {
        assert_eq!(parse_payloads("5,3"), vec![5, 3]);
        assert_eq!(parse_payloads("0"), vec![0]);
        assert_eq!(parse_payloads(" 1 , -2 "), vec![1, -2]);
    }
}
