//! Radio-telescope spectrometer: the paper's §6 HPC direction.
//!
//! *"We also plan to look at High Performance Computing applications ...
//! An example application is the processing of data from radio
//! telescopes."* — this module is that application: each antenna's sample
//! stream is channelized (window + FFT, data-parallel over the spectra of
//! a block), power-detected, incoherently combined across antennas and
//! integrated into a mean spectrum. One graph iteration processes one
//! block of `spectra_per_block × fft_size` samples per antenna.

use crate::registry::{registry, AppAssets};
use dsp::signal::{AntennaSignal, Tone};
use std::sync::Arc;
use xspcl::{compile, Elaborated, XspclError};

/// Configuration of a telescope build.
#[derive(Debug, Clone)]
pub struct TelescopeConfig {
    pub antennas: usize,
    /// FFT size (power of two).
    pub fft_size: usize,
    /// Spectra per block (= per graph iteration, per antenna).
    pub spectra_per_block: usize,
    /// Data-parallel slices of the channelize/power groups.
    pub slices: usize,
    /// Tones visible in the band (fraction of sample rate, amplitude).
    pub tones: Vec<Tone>,
    pub noise: f32,
    pub distinct_blocks: usize,
    pub seed: u64,
}

impl TelescopeConfig {
    /// A LOFAR-station-flavoured default: 4 antennas, 1024-channel
    /// spectra, 16 spectra per block.
    pub fn standard() -> Self {
        Self {
            antennas: 4,
            fft_size: 1024,
            spectra_per_block: 16,
            slices: 8,
            tones: vec![
                Tone {
                    freq: 0.121,
                    amplitude: 1.4,
                },
                Tone {
                    freq: 0.33,
                    amplitude: 0.8,
                },
            ],
            noise: 0.5,
            distinct_blocks: 4,
            seed: 4242,
        }
    }

    /// Small configuration for tests.
    pub fn small() -> Self {
        Self {
            antennas: 2,
            fft_size: 128,
            spectra_per_block: 4,
            slices: 2,
            tones: vec![Tone {
                freq: 16.0 / 128.0,
                amplitude: 2.0,
            }],
            noise: 0.1,
            distinct_blocks: 2,
            seed: 99,
        }
    }
}

/// Emit the XSPCL document for `cfg`.
pub fn telescope_xml(cfg: &TelescopeConfig) -> String {
    let mut s = String::from("<xspcl>\n");
    // per-antenna pipeline as a procedure (§3.2 abstraction): samples →
    // channelize (sliced) → power (sliced)
    s.push_str(&format!(
        r#"  <procedure name="antenna_pipeline">
    <formal name="signal"/>
    <formalstream name="power"/>
    <stream name="samples"/><stream name="spectra"/>
    <body>
      <component name="adc" class="antenna_source">
        <out port="output" stream="samples"/>
        <param name="signal" value="$signal"/>
      </component>
      <parallel shape="slice" n="{slices}" name="fftg">
        <parblock>
          <component name="fft" class="channelize">
            <in port="input" stream="samples"/>
            <out port="output" stream="spectra"/>
            <param name="n" value="{n}"/>
          </component>
        </parblock>
      </parallel>
      <parallel shape="slice" n="{slices}" name="powg">
        <parblock>
          <component name="power" class="power_detect">
            <in port="input" stream="spectra"/>
            <out port="output" stream="power"/>
            <param name="n" value="{n}"/>
          </component>
        </parblock>
      </parallel>
    </body>
  </procedure>
"#,
        slices = cfg.slices,
        n = cfg.fft_size,
    ));
    s.push_str("  <procedure name=\"main\">\n");
    for a in 0..cfg.antennas {
        s.push_str(&format!("    <stream name=\"power{a}\"/>\n"));
    }
    s.push_str("    <stream name=\"combined\"/>\n    <body>\n");
    s.push_str("      <parallel shape=\"task\" name=\"antennas\">\n");
    for a in 0..cfg.antennas {
        s.push_str(&format!(
            "        <parblock><call procedure=\"antenna_pipeline\"><param name=\"signal\" value=\"ant{a}\"/><bind formal=\"power\" stream=\"power{a}\"/></call></parblock>\n"
        ));
    }
    s.push_str("      </parallel>\n");
    s.push_str("      <component name=\"combine\" class=\"combine_power\">\n");
    for a in 0..cfg.antennas {
        s.push_str(&format!(
            "        <in port=\"ant{a}\" stream=\"power{a}\"/>\n"
        ));
    }
    s.push_str("        <out port=\"output\" stream=\"combined\"/>\n      </component>\n");
    s.push_str(&format!(
        "      <component name=\"integrate\" class=\"spectrum_integrator\"><in port=\"input\" stream=\"combined\"/><param name=\"bins\" value=\"{}\"/><param name=\"accum\" value=\"spectrum\"/></component>\n",
        cfg.fft_size / 2
    ));
    s.push_str("    </body>\n  </procedure>\n</xspcl>\n");
    s
}

/// A compiled telescope application.
pub struct TelescopeApp {
    pub cfg: TelescopeConfig,
    pub assets: Arc<AppAssets>,
    pub elaborated: Elaborated,
    pub xml: String,
}

pub fn build(cfg: &TelescopeConfig) -> Result<TelescopeApp, XspclError> {
    build_on(cfg, AppAssets::new())
}

pub fn build_on(cfg: &TelescopeConfig, assets: Arc<AppAssets>) -> Result<TelescopeApp, XspclError> {
    let block_len = cfg.fft_size * cfg.spectra_per_block;
    for a in 0..cfg.antennas {
        let tones = cfg.tones.clone();
        let (noise, seed, blocks) = (cfg.noise, cfg.seed + a as u64, cfg.distinct_blocks);
        assets.ensure_signal(format!("ant{a}"), || {
            Arc::new(AntennaSignal::generate(
                block_len, blocks, &tones, noise, seed,
            ))
        });
    }
    assets.accumulator("spectrum", cfg.fft_size / 2);
    let xml = telescope_xml(cfg);
    let reg = registry(&assets);
    let elaborated = compile(&xml, &reg)?;
    Ok(TelescopeApp {
        cfg: cfg.clone(),
        assets,
        elaborated,
        xml,
    })
}

/// The integrated mean spectrum after a run.
pub fn mean_spectrum(app: &TelescopeApp) -> Vec<f64> {
    dsp::components::mean_spectrum(&app.assets.accumulator("spectrum", app.cfg.fft_size / 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinch::engine::{run_native, run_sim, RunConfig};
    use spacecake::Machine;

    #[test]
    fn compiles_and_runs() {
        let cfg = TelescopeConfig::small();
        let app = build(&cfg).unwrap();
        let report = run_native(&app.elaborated.spec, &RunConfig::new(6).workers(3)).unwrap();
        assert_eq!(report.iterations, 6);
    }

    #[test]
    fn finds_the_injected_tone() {
        let cfg = TelescopeConfig::small();
        let app = build(&cfg).unwrap();
        run_native(&app.elaborated.spec, &RunConfig::new(6).workers(2)).unwrap();
        let mean = mean_spectrum(&app);
        let peak = mean
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 16, "mean spectrum must peak at the injected tone bin");
    }

    #[test]
    fn engines_agree_bit_exactly() {
        let cfg = TelescopeConfig::small();
        let app = build(&cfg).unwrap();
        run_native(&app.elaborated.spec, &RunConfig::new(4).workers(3)).unwrap();
        let native = mean_spectrum(&app);

        let app = build(&cfg).unwrap();
        app.assets.clear_captures();
        let mut m = Machine::with_cores(4);
        run_sim(&app.elaborated.spec, &RunConfig::new(4), &mut m).unwrap();
        let sim = mean_spectrum(&app);
        assert_eq!(
            native, sim,
            "floating-point results are order-fixed, so bit-equal"
        );
    }

    #[test]
    fn scales_on_the_simulated_tile() {
        let cfg = TelescopeConfig::small();
        let cycles = |cores: usize| {
            let app = build(&cfg).unwrap();
            app.assets.clear_captures();
            let mut m = Machine::with_cores(cores);
            run_sim(&app.elaborated.spec, &RunConfig::new(6), &mut m)
                .unwrap()
                .cycles
        };
        let one = cycles(1);
        let four = cycles(4);
        assert!(four < one, "4 cores {four} must beat 1 core {one}");
    }
}
