//! # apps — the paper's evaluation applications
//!
//! The three streaming applications of §4, each in two forms:
//!
//! * the **XSPCL application**: an XSPCL document (under `xspcl/*.xml`),
//!   compiled through the `xspcl` crate against a component registry and
//!   executed by the Hinch run-time system (native threads or the
//!   SpaceCAKE simulator);
//! * the **hand-written sequential baseline** that does not use the
//!   run-time system at all and fuses operations the way the paper's
//!   baselines do (down scale + blend in one function for PiP;
//!   block-wise decode+IDCT for JPiP; unfused phases for Blur).
//!
//! | App  | input | parallelism | reconfigurable variant |
//! |------|-------|-------------|------------------------|
//! | PiP  | 720×576 uncompressed, 96 frames | fields task-parallel, scaler+blender sliced ×8 | PiP-12: 2nd picture toggled every 12 frames |
//! | JPiP | 1280×720 MJPEG, 24 frames | fields task-parallel; IDCT, scaler, blender sliced ×45 | JPiP-12 |
//! | Blur | 360×288 luminance, 96 frames | H/V phases crossdep ×9 | Blur-35: 3×3 ↔ 5×5 every 12 frames |
//!
//! [`experiment`] wraps everything into the one-call runners the
//! benchmark harness and the examples use.

pub mod blur;
pub mod experiment;
pub mod jpip;
pub mod mosaic;
pub mod pip;
pub mod reconfig;
pub mod registry;
pub mod telescope;
pub mod verify;

pub use experiment::{App, AppConfig};
pub use registry::AppAssets;
