//! Mosaic: the paper's motivating scenario from §1 — "watching multiple
//! compressed video streams on a single screen".
//!
//! `tiles` MJPEG streams are each entropy-decoded, inverse-transformed,
//! scaled down by 2 and composed into quadrants of one screen. Built
//! entirely from the existing component classes and the `jpeg_in` /
//! `sliced_idct` / `sliced_downscale` / `sliced_blend` procedures — the
//! reuse story the coordination language promises: a new application is a
//! new XSPCL document, not new component code.

use crate::registry::{registry, AppAssets};
use media::jpeg::mjpeg::MjpegVideo;
use media::scale::scaled_dims;
use media::video::VideoSpec;
use std::sync::Arc;
use xspcl::{compile, Elaborated, XspclError};

/// Configuration of a mosaic build.
#[derive(Debug, Clone)]
pub struct MosaicConfig {
    /// Number of video tiles (1..=4, composed into quadrants).
    pub tiles: usize,
    /// Size of each input stream (and of the screen).
    pub width: usize,
    pub height: usize,
    /// Slices for the IDCT/scale/blend groups.
    pub slices: usize,
    pub quality: u8,
    pub distinct_frames: usize,
    pub seed: u64,
}

impl MosaicConfig {
    /// A CE-plausible default: four 640×360 MJPEG streams on one screen.
    pub fn standard() -> Self {
        Self {
            tiles: 4,
            width: 640,
            height: 360,
            slices: 9,
            quality: 75,
            distinct_frames: 4,
            seed: 7777,
        }
    }

    /// Small configuration for tests.
    pub fn small(tiles: usize) -> Self {
        Self {
            tiles,
            width: 64,
            height: 32,
            slices: 2,
            quality: 80,
            distinct_frames: 2,
            seed: 31,
        }
    }

    /// Quadrant position of tile `k`.
    pub fn position(&self, k: usize) -> (usize, usize) {
        let (qw, qh) = scaled_dims(self.width, self.height, 2);
        (
            if k.is_multiple_of(2) { 0 } else { qw },
            if k < 2 { 0 } else { qh },
        )
    }
}

/// Emit the XSPCL document for `cfg`.
pub fn mosaic_xml(cfg: &MosaicConfig) -> String {
    assert!((1..=4).contains(&cfg.tiles), "1..=4 tiles");
    let mut s = String::from("<xspcl>\n");
    s.push_str(crate::jpip::JPEG_PROCS);
    s.push_str(crate::pip::SLICED_OPS);
    s.push_str("  <procedure name=\"main\">\n");
    for f in 0..3 {
        s.push_str(&format!("    <stream name=\"screen{f}\"/>\n"));
        for t in 0..cfg.tiles {
            s.push_str(&format!(
                "    <stream name=\"c_t{t}_{f}\"/><stream name=\"px_t{t}_{f}\"/><stream name=\"small_t{t}_{f}\"/><stream name=\"o{t}_{f}\"/>\n"
            ));
        }
    }
    s.push_str("    <body>\n");
    // per-field chains: screen source + per tile (decode → idct → scale →
    // blend), blends chained in place across the quadrants
    s.push_str("      <parallel shape=\"task\" name=\"fields\">\n");
    // tile inputs are shared across fields, so they sit in their own
    // parblocks (each jpeg_in produces all three coefficient fields)
    for t in 0..cfg.tiles {
        s.push_str(&format!(
            "        <parblock><call procedure=\"jpeg_in\"><param name=\"file\" value=\"tile{t}\"/><bind formal=\"cy\" stream=\"c_t{t}_0\"/><bind formal=\"cu\" stream=\"c_t{t}_1\"/><bind formal=\"cv\" stream=\"c_t{t}_2\"/></call></parblock>\n"
        ));
    }
    for f in 0..3 {
        s.push_str(&format!(
            "        <parblock><component name=\"screen_in{f}\" class=\"plane_source\"><out port=\"output\" stream=\"screen{f}\"/><param name=\"file\" value=\"screen\"/><param name=\"field\" value=\"{f}\"/></component></parblock>\n"
        ));
    }
    s.push_str("      </parallel>\n");
    // IDCTs + scales, fields concurrent
    s.push_str("      <parallel shape=\"task\" name=\"transform\">\n");
    for t in 0..cfg.tiles {
        for f in 0..3 {
            s.push_str(&format!(
                "        <parblock><call procedure=\"sliced_idct\"><bind formal=\"input\" stream=\"c_t{t}_{f}\"/><bind formal=\"output\" stream=\"px_t{t}_{f}\"/><param name=\"slices\" value=\"{}\"/></call><call procedure=\"sliced_downscale\"><bind formal=\"input\" stream=\"px_t{t}_{f}\"/><bind formal=\"output\" stream=\"small_t{t}_{f}\"/><param name=\"factor\" value=\"2\"/><param name=\"slices\" value=\"{}\"/></call></parblock>\n",
                cfg.slices, cfg.slices
            ));
        }
    }
    s.push_str("      </parallel>\n");
    // blends: chained per field (in place on the screen buffer)
    for t in 0..cfg.tiles {
        let (x, y) = cfg.position(t);
        let prev = if t == 0 {
            "screen".to_string()
        } else {
            format!("o{}_", t - 1)
        };
        s.push_str(&format!(
            "      <parallel shape=\"task\" name=\"blend{t}\">\n"
        ));
        for f in 0..3 {
            let bg = if t == 0 {
                format!("screen{f}")
            } else {
                format!("o{}_{f}", t - 1)
            };
            let _ = &prev;
            s.push_str(&format!(
                "        <parblock><call procedure=\"sliced_blend\"><bind formal=\"background\" stream=\"{bg}\"/><bind formal=\"picture\" stream=\"small_t{t}_{f}\"/><bind formal=\"output\" stream=\"o{t}_{f}\"/><param name=\"x\" value=\"{x}\"/><param name=\"y\" value=\"{y}\"/><param name=\"slices\" value=\"{}\"/></call></parblock>\n",
                cfg.slices
            ));
        }
        s.push_str("      </parallel>\n");
    }
    let last = cfg.tiles - 1;
    s.push_str(&format!(
        "      <component name=\"output\" class=\"frame_sink\"><in port=\"y\" stream=\"o{last}_0\"/><in port=\"u\" stream=\"o{last}_1\"/><in port=\"v\" stream=\"o{last}_2\"/><param name=\"capture\" value=\"out\"/></component>\n"
    ));
    s.push_str("    </body>\n  </procedure>\n</xspcl>\n");
    s
}

/// A compiled mosaic application.
pub struct MosaicApp {
    pub cfg: MosaicConfig,
    pub assets: Arc<AppAssets>,
    pub elaborated: Elaborated,
    pub xml: String,
}

pub fn build(cfg: &MosaicConfig) -> Result<MosaicApp, XspclError> {
    build_on(cfg, AppAssets::new())
}

pub fn build_on(cfg: &MosaicConfig, assets: Arc<AppAssets>) -> Result<MosaicApp, XspclError> {
    let spec = VideoSpec::new(cfg.width, cfg.height, cfg.distinct_frames, cfg.seed);
    for t in 0..cfg.tiles {
        let tile_spec = VideoSpec {
            seed: cfg.seed + 1 + t as u64,
            ..spec
        };
        assets.ensure_mjpeg(format!("tile{t}"), || {
            Arc::new(MjpegVideo::generate(tile_spec, cfg.quality))
        });
    }
    assets.ensure_raw("screen", || {
        Arc::new(media::video::RawVideo::generate(VideoSpec {
            seed: cfg.seed,
            ..spec
        }))
    });
    assets.capture_set("out", 3);
    let xml = mosaic_xml(cfg);
    let reg = registry(&assets);
    let elaborated = compile(&xml, &reg)?;
    Ok(MosaicApp {
        cfg: cfg.clone(),
        assets,
        elaborated,
        xml,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinch::engine::{run_native, RunConfig};
    use media::jpeg::codec::decode_plane;
    use media::jpeg::quant::Channel;
    use media::scale::downscale_rows;

    #[test]
    fn compiles_for_all_tile_counts() {
        for tiles in 1..=4 {
            let app = build(&MosaicConfig::small(tiles)).expect("compiles");
            assert!(app.elaborated.spec.leaf_count() > 0, "tiles={tiles}");
        }
    }

    #[test]
    fn four_tiles_compose_the_quadrants() {
        let cfg = MosaicConfig::small(4);
        let app = build(&cfg).unwrap();
        let frames = 3u64;
        run_native(&app.elaborated.spec, &RunConfig::new(frames).workers(3)).unwrap();
        let got = app.assets.captured("out", 0);
        assert_eq!(got.len(), frames as usize);

        // reference: decode tile 0's Y plane, downscale by 2 — must appear
        // verbatim in the top-left quadrant of every frame
        let (w, h) = (cfg.width, cfg.height);
        let (qw, qh) = scaled_dims(w, h, 2);
        for (frame_idx, frame) in got.iter().enumerate() {
            let tile0 = app.assets.mjpeg("tile0");
            let img = tile0.frame(frame_idx);
            let (pixels, _) = decode_plane(&img.scans[0], w, h, Channel::Luma, img.quality);
            let mut small = vec![0u8; qw * qh];
            downscale_rows(&pixels, w, h, 2, 0..qh, &mut small);
            for row in 0..qh {
                assert_eq!(
                    &frame[row * w..row * w + qw],
                    &small[row * qw..(row + 1) * qw],
                    "frame {frame_idx} row {row} of the top-left quadrant"
                );
            }
        }
    }

    #[test]
    fn positions_tile_the_screen() {
        let cfg = MosaicConfig::standard();
        let (qw, qh) = scaled_dims(cfg.width, cfg.height, 2);
        assert_eq!(cfg.position(0), (0, 0));
        assert_eq!(cfg.position(1), (qw, 0));
        assert_eq!(cfg.position(2), (0, qh));
        assert_eq!(cfg.position(3), (qw, qh));
    }
}
