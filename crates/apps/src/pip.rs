//! Picture-in-Picture (PiP).
//!
//! Reads multiple uncompressed videos and combines them into one: the
//! background is simply copied, each picture-in-picture video is scaled
//! down by 4 and blended in. Task parallelism: the pipeline plus the three
//! color fields processed concurrently; data parallelism: the down scaler
//! and blender run with 8 slices (paper §4, app 1; 720×576, 96 frames).
//!
//! The XSPCL document is produced by [`pip_xml`] — playing the role of the
//! paper's graphical front-end emitting the coordination language — and
//! compiled against the [`crate::registry`]. The hand-written sequential
//! baseline ([`sequential`]) fuses down scaling and blending into a single
//! function, exactly the difference the paper names as the source of PiP's
//! ~5 % XSPCL overhead.

use crate::registry::{registry, AppAssets};
use hinch::meter::Meter;
use media::costs::*;
use media::scale::scaled_dims;
use media::video::{RawVideo, VideoSpec};
use std::sync::Arc;
use xspcl::{compile, Elaborated, XspclError};

/// Configuration of a PiP build.
#[derive(Debug, Clone)]
pub struct PipConfig {
    /// Number of picture-in-picture videos (1 or 2 in the paper).
    pub pips: usize,
    /// Frame size.
    pub width: usize,
    pub height: usize,
    /// Down-scale factor.
    pub factor: usize,
    /// Slice count for the scaler and blender groups.
    pub slices: usize,
    /// Distinct generated frames (iterations wrap around).
    pub distinct_frames: usize,
    /// Generator seed.
    pub seed: u64,
    /// `Some(n)`: build the reconfigurable variant (PiP-12) that toggles
    /// the second picture every `n` frames.
    pub reconfig_every: Option<u64>,
}

impl PipConfig {
    /// The paper's configuration with `pips` pictures.
    pub fn paper(pips: usize) -> Self {
        Self {
            pips,
            width: 720,
            height: 576,
            factor: 4,
            slices: 8,
            distinct_frames: 8,
            seed: 42,
            reconfig_every: None,
        }
    }

    /// The paper's PiP-12: starts with one picture, toggles the second
    /// every 12 frames.
    pub fn paper_reconfig() -> Self {
        Self {
            pips: 2,
            reconfig_every: Some(12),
            ..Self::paper(2)
        }
    }

    /// A small configuration for tests.
    pub fn small(pips: usize) -> Self {
        Self {
            pips,
            width: 64,
            height: 48,
            factor: 4,
            slices: 4,
            distinct_frames: 3,
            seed: 7,
            reconfig_every: None,
        }
    }

    /// Picture position for pip `k` (0-based): first top-left, second
    /// top-right.
    pub fn position(&self, k: usize) -> (usize, usize) {
        let (pw, _) = scaled_dims(self.width, self.height, self.factor);
        let margin = (self.width / 45).max(2);
        if k == 0 {
            (margin, margin)
        } else {
            (self.width - pw - margin, margin)
        }
    }
}

/// Shared fragment: the sliced down-scale and blend procedures (the
/// paper's Fig. 3 procedural abstraction).
pub(crate) const SLICED_OPS: &str = r#"
  <procedure name="sliced_downscale">
    <formal name="factor"/><formal name="slices"/>
    <formalstream name="input"/><formalstream name="output"/>
    <body>
      <parallel shape="slice" n="$slices" name="sc">
        <parblock>
          <component name="scaler" class="downscale">
            <in port="input" stream="input"/>
            <out port="output" stream="output"/>
            <param name="factor" value="$factor"/>
          </component>
        </parblock>
      </parallel>
    </body>
  </procedure>
  <procedure name="sliced_blend">
    <formal name="x"/><formal name="y"/><formal name="slices"/>
    <formalstream name="background"/><formalstream name="picture"/><formalstream name="output"/>
    <body>
      <parallel shape="slice" n="$slices" name="bl">
        <parblock>
          <component name="blender" class="blend">
            <in port="background" stream="background"/>
            <in port="picture" stream="picture"/>
            <out port="output" stream="output"/>
            <param name="x" value="$x"/><param name="y" value="$y"/>
          </component>
        </parblock>
      </parallel>
    </body>
  </procedure>
"#;

/// Emit the XSPCL document for `cfg` (the front-end step of Fig. 1).
pub fn pip_xml(cfg: &PipConfig) -> String {
    assert!(
        cfg.pips >= 1 && cfg.pips <= 2,
        "PiP supports 1 or 2 pictures"
    );
    let mut s = String::from("<xspcl>\n");
    if cfg.reconfig_every.is_some() {
        s.push_str("  <queue name=\"mq\"/>\n");
    }
    s.push_str(SLICED_OPS);
    s.push_str("  <procedure name=\"main\">\n");
    // streams: per field f: bg{f}, p1{f}, s1{f}(in proc), o1{f}; pip2: p2{f}, o2{f}
    for f in 0..3 {
        s.push_str(&format!("    <stream name=\"bg{f}\"/><stream name=\"p1_{f}\"/><stream name=\"small1_{f}\"/><stream name=\"o1_{f}\"/>\n"));
        if cfg.pips == 2 {
            s.push_str(&format!(
                "    <stream name=\"p2_{f}\"/><stream name=\"small2_{f}\"/><stream name=\"o2_{f}\"/>\n"
            ));
        }
    }
    s.push_str("    <body>\n");

    let reconfig = cfg.reconfig_every;
    if let Some(every) = reconfig {
        s.push_str(&format!(
            r#"      <manager name="m" queue="mq">
        <on event="flip"><toggle option="pip2"/><toggle option="bypass"/></on>
        <body>
          <component name="inj" class="injector">
            <param name="events" queue="mq"/>
            <param name="event" value="flip"/>
            <param name="every" value="{every}"/>
            <param name="lead" value="{lead}"/>
          </component>
"#,
            lead = every.saturating_sub(2).min(6),
        ));
    }

    // one task-parallel chain per color field: source the background and
    // picture fields, then scale and blend — keeping each field's
    // producer→consumer data hot instead of staging global barriers
    let (x1, y1) = cfg.position(0);
    let (x2, y2) = cfg.position(1.min(cfg.pips - 1));
    s.push_str("      <parallel shape=\"task\" name=\"fields\">\n");
    for f in 0..3 {
        s.push_str("        <parblock>\n");
        s.push_str(&format!(
            "          <component name=\"bg_in{f}\" class=\"plane_source\"><out port=\"output\" stream=\"bg{f}\"/><param name=\"file\" value=\"bg\"/><param name=\"field\" value=\"{f}\"/></component>\n"
        ));
        s.push_str(&format!(
            "          <component name=\"p1_in{f}\" class=\"plane_source\"><out port=\"output\" stream=\"p1_{f}\"/><param name=\"file\" value=\"pip1\"/><param name=\"field\" value=\"{f}\"/></component>\n"
        ));
        s.push_str(&format!(
            "          <call procedure=\"sliced_downscale\"><bind formal=\"input\" stream=\"p1_{f}\"/><bind formal=\"output\" stream=\"small1_{f}\"/><param name=\"factor\" value=\"{}\"/><param name=\"slices\" value=\"{}\"/></call>\n",
            cfg.factor, cfg.slices
        ));
        s.push_str(&format!(
            "          <call procedure=\"sliced_blend\"><bind formal=\"background\" stream=\"bg{f}\"/><bind formal=\"picture\" stream=\"small1_{f}\"/><bind formal=\"output\" stream=\"o1_{f}\"/><param name=\"x\" value=\"{x1}\"/><param name=\"y\" value=\"{y1}\"/><param name=\"slices\" value=\"{}\"/></call>\n",
            cfg.slices
        ));
        if cfg.pips == 2 && reconfig.is_none() {
            // static PiP-2: the second picture continues the field chain
            s.push_str(&format!(
                "          <component name=\"p2_in{f}\" class=\"plane_source\"><out port=\"output\" stream=\"p2_{f}\"/><param name=\"file\" value=\"pip2\"/><param name=\"field\" value=\"{f}\"/></component>\n"
            ));
            s.push_str(&format!(
                "          <call procedure=\"sliced_downscale\"><bind formal=\"input\" stream=\"p2_{f}\"/><bind formal=\"output\" stream=\"small2_{f}\"/><param name=\"factor\" value=\"{}\"/><param name=\"slices\" value=\"{}\"/></call>\n",
                cfg.factor, cfg.slices
            ));
            s.push_str(&format!(
                "          <call procedure=\"sliced_blend\"><bind formal=\"background\" stream=\"o1_{f}\"/><bind formal=\"picture\" stream=\"small2_{f}\"/><bind formal=\"output\" stream=\"o2_{f}\"/><param name=\"x\" value=\"{x2}\"/><param name=\"y\" value=\"{y2}\"/><param name=\"slices\" value=\"{}\"/></call>\n",
                cfg.slices
            ));
        }
        s.push_str("        </parblock>\n");
    }
    s.push_str("      </parallel>\n");

    // PiP-12: the second picture's whole chain is an option, with a
    // complementary pass-through so the sink's input is always produced
    if cfg.pips == 2 && reconfig.is_some() {
        s.push_str("      <option name=\"pip2\" enabled=\"false\">\n        <parallel shape=\"task\" name=\"fields2\">\n");
        for f in 0..3 {
            s.push_str("          <parblock>\n");
            s.push_str(&format!(
                "            <component name=\"p2_in{f}\" class=\"plane_source\"><out port=\"output\" stream=\"p2_{f}\"/><param name=\"file\" value=\"pip2\"/><param name=\"field\" value=\"{f}\"/></component>\n"
            ));
            s.push_str(&format!(
                "            <call procedure=\"sliced_downscale\"><bind formal=\"input\" stream=\"p2_{f}\"/><bind formal=\"output\" stream=\"small2_{f}\"/><param name=\"factor\" value=\"{}\"/><param name=\"slices\" value=\"{}\"/></call>\n",
                cfg.factor, cfg.slices
            ));
            s.push_str(&format!(
                "            <call procedure=\"sliced_blend\"><bind formal=\"background\" stream=\"o1_{f}\"/><bind formal=\"picture\" stream=\"small2_{f}\"/><bind formal=\"output\" stream=\"o2_{f}\"/><param name=\"x\" value=\"{x2}\"/><param name=\"y\" value=\"{y2}\"/><param name=\"slices\" value=\"{}\"/></call>\n",
                cfg.slices
            ));
            s.push_str("          </parblock>\n");
        }
        s.push_str("        </parallel>\n      </option>\n");
        s.push_str("      <option name=\"bypass\" enabled=\"true\">\n        <parallel shape=\"task\" name=\"byp\">\n");
        for f in 0..3 {
            s.push_str(&format!(
                "          <parblock><component name=\"pass{f}\" class=\"pass\"><in port=\"input\" stream=\"o1_{f}\"/><out port=\"output\" stream=\"o2_{f}\"/></component></parblock>\n"
            ));
        }
        s.push_str("        </parallel>\n      </option>\n");
    }

    // output component
    let out = if cfg.pips == 2 { "o2_" } else { "o1_" };
    s.push_str(&format!(
        "      <component name=\"output\" class=\"frame_sink\"><in port=\"y\" stream=\"{out}0\"/><in port=\"u\" stream=\"{out}1\"/><in port=\"v\" stream=\"{out}2\"/><param name=\"capture\" value=\"out\"/></component>\n"
    ));

    if reconfig.is_some() {
        s.push_str("        </body>\n      </manager>\n");
    }
    s.push_str("    </body>\n  </procedure>\n</xspcl>\n");
    s
}

/// A compiled, runnable PiP application.
pub struct PipApp {
    pub cfg: PipConfig,
    pub assets: Arc<AppAssets>,
    pub elaborated: Elaborated,
    pub xml: String,
}

/// Generate inputs, build the registry, compile the XSPCL document.
pub fn build(cfg: &PipConfig) -> Result<PipApp, XspclError> {
    build_on(cfg, AppAssets::new())
}

/// Like [`build`], reusing already-generated videos in `assets`.
pub fn build_on(cfg: &PipConfig, assets: Arc<AppAssets>) -> Result<PipApp, XspclError> {
    let spec = VideoSpec::new(cfg.width, cfg.height, cfg.distinct_frames, cfg.seed);
    assets.ensure_raw("bg", || Arc::new(RawVideo::generate(spec)));
    assets.ensure_raw("pip1", || {
        Arc::new(RawVideo::generate(VideoSpec {
            seed: cfg.seed + 1,
            ..spec
        }))
    });
    if cfg.pips == 2 {
        assets.ensure_raw("pip2", || {
            Arc::new(RawVideo::generate(VideoSpec {
                seed: cfg.seed + 2,
                ..spec
            }))
        });
    }
    assets.capture_set("out", 3);
    let xml = pip_xml(cfg);
    let reg = registry(&assets);
    let elaborated = compile(&xml, &reg)?;
    Ok(PipApp {
        cfg: cfg.clone(),
        assets,
        elaborated,
        xml,
    })
}

/// The hand-written sequential PiP: down scaling and blending fused into a
/// single function, working buffers reused across frames, no run-time
/// system. Returns the output frames (bit-identical to the XSPCL app's)
/// while charging `meter` with its work.
#[allow(clippy::needless_range_loop)]
pub fn sequential(
    cfg: &PipConfig,
    assets: &AppAssets,
    frames: u64,
    meter: &mut dyn Meter,
) -> Vec<[Vec<u8>; 3]> {
    let bg = assets.raw("bg");
    let pips: Vec<Arc<RawVideo>> = (0..cfg.pips)
        .map(|k| assets.raw(&format!("pip{}", k + 1)))
        .collect();
    let (w, h) = (cfg.width, cfg.height);
    let (pw, ph) = scaled_dims(w, h, cfg.factor);
    // reused working buffers: the composed frame, one input buffer per
    // picture, and the output "file" region
    let out_base = hinch::meter::sim_alloc((w * h) as u64);
    let pip_bases: Vec<u64> = (0..cfg.pips)
        .map(|_| hinch::meter::sim_alloc((w * h) as u64))
        .collect();
    let file_base = hinch::meter::sim_alloc((w * h * 3) as u64);
    let mut outputs = Vec::with_capacity(frames as usize);
    let mut composed = vec![0u8; w * h];
    for frame in 0..frames as usize {
        let mut fields: [Vec<u8>; 3] = Default::default();
        for field in [0, 1, 2] {
            // read background from the file, copy into the working buffer
            meter.touch(bg.read_access(frame, field));
            composed.copy_from_slice(bg.field(frame, field));
            meter.touch(hinch::meter::MemAccess {
                base: out_base,
                len: (w * h) as u64,
                kind: hinch::meter::AccessKind::Write,
            });
            meter.charge(CYC_COPY_PX * (w * h) as u64);

            // fused down scale + blend for each picture
            for (k, pip) in pips.iter().enumerate() {
                let (px, py) = cfg.position(k);
                let src = pip.field(frame, field);
                // read the picture frame from its file into the (reused)
                // input buffer — both versions pay the input read-in
                meter.touch(pip.read_access(frame, field));
                meter.touch(hinch::meter::MemAccess {
                    base: pip_bases[k],
                    len: (w * h) as u64,
                    kind: hinch::meter::AccessKind::Write,
                });
                meter.charge(CYC_COPY_PX * (w * h) as u64);
                let area = (cfg.factor * cfg.factor) as u32;
                for oy in 0..ph {
                    for ox in 0..pw {
                        let mut acc = 0u32;
                        for dy in 0..cfg.factor {
                            let row = (oy * cfg.factor + dy) * w + ox * cfg.factor;
                            acc += src[row..row + cfg.factor]
                                .iter()
                                .map(|&p| p as u32)
                                .sum::<u32>();
                        }
                        composed[(py + oy) * w + px + ox] = ((acc + area / 2) / area) as u8;
                    }
                }
                meter.touch(hinch::meter::MemAccess {
                    base: pip_bases[k],
                    len: (w * h) as u64,
                    kind: hinch::meter::AccessKind::Read,
                });
                meter.charge(
                    CYC_DOWNSCALE_IN_PX * (pw * ph * cfg.factor * cfg.factor) as u64
                        + CYC_BLEND_PX * (pw * ph) as u64,
                );
                // the blended region of the working buffer is rewritten
                meter.touch(hinch::meter::MemAccess {
                    base: out_base + (py * w) as u64,
                    len: (ph * w) as u64,
                    kind: hinch::meter::AccessKind::Write,
                });
            }

            // write the composed field to the output file
            meter.touch(hinch::meter::MemAccess {
                base: file_base + (field * w * h) as u64,
                len: (w * h) as u64,
                kind: hinch::meter::AccessKind::Write,
            });
            meter.charge(CYC_COPY_PX * (w * h) as u64);
            fields[field] = composed.clone();
        }
        outputs.push(fields);
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinch::engine::{run_native, RunConfig};
    use hinch::meter::NullMeter;

    #[test]
    fn xml_compiles_for_all_variants() {
        for cfg in [
            PipConfig::small(1),
            PipConfig::small(2),
            PipConfig {
                reconfig_every: Some(4),
                ..PipConfig::small(2)
            },
        ] {
            let app = build(&cfg).expect("compiles");
            assert!(app.elaborated.spec.leaf_count() > 0);
        }
    }

    #[test]
    fn paper_config_has_expected_structure() {
        let app = build(&PipConfig::paper(1)).unwrap();
        // 6 sources + 3 scaler + 3 blender + sink = 13 component specs
        assert_eq!(app.elaborated.spec.leaf_count(), 13);
        let mut classes = std::collections::HashMap::new();
        app.elaborated.spec.visit_leaves(&mut |c| {
            *classes.entry(c.class.clone()).or_insert(0) += 1;
        });
        assert_eq!(classes["plane_source"], 6);
        assert_eq!(classes["downscale"], 3);
        assert_eq!(classes["blend"], 3);
        assert_eq!(classes["frame_sink"], 1);
    }

    #[test]
    fn xspcl_output_matches_sequential_baseline() {
        for pips in [1, 2] {
            let cfg = PipConfig::small(pips);
            let app = build(&cfg).unwrap();
            let frames = 6u64;
            run_native(&app.elaborated.spec, &RunConfig::new(frames).workers(2)).unwrap();
            let mut meter = NullMeter;
            let want = sequential(&cfg, &app.assets, frames, &mut meter);
            for field in [0, 1, 2] {
                let got = app.assets.captured("out", field);
                assert_eq!(got.len(), frames as usize);
                for (i, frame) in got.iter().enumerate() {
                    assert_eq!(
                        frame, &want[i][field],
                        "pips={pips} field={field} frame={i} differs"
                    );
                }
            }
        }
    }

    #[test]
    fn reconfigurable_variant_runs_and_toggles() {
        let cfg = PipConfig {
            reconfig_every: Some(4),
            ..PipConfig::small(2)
        };
        let app = build(&cfg).unwrap();
        let report = run_native(&app.elaborated.spec, &RunConfig::new(16).workers(2)).unwrap();
        assert_eq!(report.iterations, 16);
        assert!(report.reconfigs >= 2, "got {} reconfigs", report.reconfigs);
        // all frames produced despite reconfigurations
        assert_eq!(app.assets.captured("out", 0).len(), 16);
    }

    #[test]
    fn positions_inside_frame() {
        let cfg = PipConfig::paper(2);
        let (pw, ph) = scaled_dims(cfg.width, cfg.height, cfg.factor);
        for k in 0..2 {
            let (x, y) = cfg.position(k);
            assert!(x + pw <= cfg.width);
            assert!(y + ph <= cfg.height);
        }
    }
}
