//! Scripted event injection for the reconfigurable application variants.
//!
//! The paper toggles the second picture-in-picture (PiP-12 / JPiP-12) and
//! switches the blur kernel (Blur-35) every 12 frames. The stimulus is a
//! graph component that sends an event to the manager's queue — standing
//! in for the paper's "user pressed a key" and exercising exactly the
//! asynchronous-event machinery of §3.1/§3.4.

use hinch::component::{Component, RunCtx};
use hinch::event::{Event, EventQueue};

/// Sends `event` to `queue` every `every` iterations, cycling through
/// `payloads`.
///
/// `lead` fires each event that many iterations early: a reconfiguration
/// detected at the manager entry of iteration *i* only takes effect after
/// the admitted pipeline (depth *K*) drains, so an event meant to switch
/// the application at frame `k*every` must be sent around iteration
/// `k*every - 1 - K`. Without the lead the first window is systematically
/// longer than the rest, biasing the duty cycle.
pub struct Injector {
    queue: EventQueue,
    event: String,
    every: u64,
    lead: u64,
    payloads: Vec<i64>,
    sent: u64,
}

impl Injector {
    pub fn new(queue: EventQueue, event: impl Into<String>, every: u64) -> Self {
        Self::with_payloads(queue, event, every, vec![0])
    }

    /// Cycle through `payloads` on successive events (Blur-35 alternates
    /// kernel sizes 5, 3, 5, ...).
    pub fn with_payloads(
        queue: EventQueue,
        event: impl Into<String>,
        every: u64,
        payloads: Vec<i64>,
    ) -> Self {
        assert!(every >= 1);
        assert!(!payloads.is_empty());
        Self {
            queue,
            event: event.into(),
            every,
            lead: 0,
            payloads,
            sent: 0,
        }
    }

    /// Fire events `lead` iterations early (pipeline-drain compensation).
    pub fn lead(mut self, lead: u64) -> Self {
        assert!(
            lead + 1 < self.every,
            "lead must leave room within the period"
        );
        self.lead = lead;
        self
    }
}

impl Component for Injector {
    fn class(&self) -> &'static str {
        "injector"
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>) {
        if (ctx.iteration() + 1 + self.lead).is_multiple_of(self.every) {
            let payload = self.payloads[(self.sent as usize) % self.payloads.len()];
            self.queue
                .send(Event::with_payload(self.event.clone(), payload));
            self.sent += 1;
        }
        ctx.charge(20);
    }
}

/// Forwards its input packet unchanged: the complementary-option
/// pass-through used when an optional processing stage is disabled (the
/// sink keeps a fixed input stream; see `DESIGN.md`).
pub struct Pass;

impl Component for Pass {
    fn class(&self) -> &'static str {
        "pass"
    }

    fn run(&mut self, ctx: &mut RunCtx<'_>) {
        for port in 0..ctx.num_inputs() {
            let packet = ctx.read::<media::Plane>(port);
            ctx.write_arc(port, packet);
        }
        ctx.charge(50);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinch::meter::NullMeter;
    use hinch::stream::Stream;
    use std::sync::Arc;

    fn run_at(inj: &mut Injector, iter: u64) {
        let mut meter = NullMeter;
        let mut ctx = RunCtx::new(iter, &[], &[], &mut meter);
        inj.run(&mut ctx);
    }

    #[test]
    fn fires_every_n_iterations() {
        let q = EventQueue::new("q");
        let mut inj = Injector::new(q.clone(), "flip", 12);
        for i in 0..36 {
            run_at(&mut inj, i);
        }
        assert_eq!(q.len(), 3);
        // fired at iterations 11, 23, 35
        run_at(&mut inj, 36);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn cycles_payloads() {
        let q = EventQueue::new("q");
        let mut inj = Injector::with_payloads(q.clone(), "switch", 2, vec![5, 3]);
        for i in 0..8 {
            run_at(&mut inj, i);
        }
        let payloads: Vec<i64> = q.drain().into_iter().map(|e| e.payload).collect();
        assert_eq!(payloads, vec![5, 3, 5, 3]);
    }

    #[test]
    fn pass_forwards_same_arc() {
        let input = Stream::new("i");
        let output = Stream::new("o");
        let plane = Arc::new(media::Plane::from_pixels("p", 2, 2, vec![1, 2, 3, 4]));
        input.write(0, plane.clone());
        let mut meter = NullMeter;
        let inputs = [input];
        let outputs = [output.clone()];
        let mut ctx = RunCtx::new(0, &inputs, &outputs, &mut meter);
        Pass.run(&mut ctx);
        let forwarded = output.read_as::<media::Plane>(0);
        assert!(Arc::ptr_eq(&plane, &forwarded));
    }
}
