//! Analysis input: load a trace back from its CSV export.
//!
//! [`crate::export::csv`] writes one row per event; [`events_from_csv`]
//! is its inverse, so a recorded trace can be saved, committed as a test
//! fixture, or shipped to another machine and analyzed offline (see the
//! `insight` crate's `hinch-insight --csv`). The round-trip is lossless:
//! `events_from_csv(csv(&events)) == events`.

use crate::{CacheDelta, SpanKind, StallCause, TraceEvent};

/// Split one CSV line into fields, honoring `"`-quoting with `""`
/// escapes (the dialect [`crate::export::csv`] emits).
fn split_csv(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if field.is_empty() && !quoted => quoted = true,
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    quoted = false;
                }
            }
            ',' if !quoted => fields.push(std::mem::take(&mut field)),
            c => field.push(c),
        }
    }
    if quoted {
        return Err("unterminated quoted field".into());
    }
    fields.push(field);
    Ok(fields)
}

fn num(fields: &[String], idx: usize, what: &str) -> Result<u64, String> {
    let raw = fields
        .get(idx)
        .ok_or_else(|| format!("missing field '{what}' (column {idx})"))?;
    raw.parse::<u64>()
        .map_err(|e| format!("bad {what} '{raw}': {e}"))
}

fn opt_num(fields: &[String], idx: usize, what: &str) -> Result<Option<u64>, String> {
    match fields.get(idx).map(String::as_str) {
        None | Some("") => Ok(None),
        Some(raw) => raw
            .parse::<u64>()
            .map(Some)
            .map_err(|e| format!("bad {what} '{raw}': {e}")),
    }
}

fn field<'a>(fields: &'a [String], idx: usize, what: &str) -> Result<&'a str, String> {
    fields
        .get(idx)
        .map(String::as_str)
        .ok_or_else(|| format!("missing field '{what}' (column {idx})"))
}

/// Parse one exported CSV row (no header) back into a [`TraceEvent`].
fn parse_row(fields: &[String]) -> Result<TraceEvent, String> {
    let event = field(fields, 0, "event")?;
    Ok(match event {
        "component" | "mgr_entry" | "mgr_exit" => {
            let kind = match event {
                "component" => SpanKind::Component,
                "mgr_entry" => SpanKind::ManagerEntry,
                _ => SpanKind::ManagerExit,
            };
            let l1 = opt_num(fields, 7, "l1_misses")?;
            let l2 = opt_num(fields, 8, "l2_misses")?;
            let mem = opt_num(fields, 9, "mem_cycles")?;
            let cache = match (l1, l2, mem) {
                (None, None, None) => None,
                _ => Some(CacheDelta {
                    l1_misses: l1.unwrap_or(0),
                    l2_misses: l2.unwrap_or(0),
                    mem_cycles: mem.unwrap_or(0),
                }),
            };
            TraceEvent::JobSpan {
                label: field(fields, 1, "label")?.to_string(),
                kind,
                iter: num(fields, 2, "iter")?,
                core: num(fields, 3, "core")? as u32,
                start: num(fields, 4, "start")?,
                end: num(fields, 5, "end")?,
                cycles: num(fields, 6, "cycles")?,
                cache,
            }
        }
        "admit" => TraceEvent::IterationAdmitted {
            iter: num(fields, 2, "iter")?,
            at: num(fields, 4, "start")?,
        },
        "retire" => TraceEvent::IterationRetired {
            iter: num(fields, 2, "iter")?,
            at: num(fields, 4, "start")?,
        },
        "quiesce_begin" => TraceEvent::QuiesceBegin {
            at: num(fields, 4, "start")?,
        },
        "quiesce_end" => TraceEvent::QuiesceEnd {
            at: num(fields, 4, "start")?,
        },
        "dag_swap" => TraceEvent::DagSwap {
            version: num(fields, 10, "version")?,
            at: num(fields, 4, "start")?,
        },
        "reconfig" => {
            let value = field(fields, 10, "plans+grafted")?;
            let (plans, grafted) = value
                .split_once('+')
                .ok_or_else(|| format!("bad reconfig value '{value}' (want plans+grafted)"))?;
            TraceEvent::ReconfigApplied {
                plans: plans
                    .parse()
                    .map_err(|e| format!("bad plans '{plans}': {e}"))?,
                grafted: grafted
                    .parse()
                    .map_err(|e| format!("bad grafted '{grafted}': {e}"))?,
                at: num(fields, 4, "start")?,
            }
        }
        "poll" => TraceEvent::EventPoll {
            manager: field(fields, 1, "manager")?.to_string(),
            events: num(fields, 10, "events")?,
            at: num(fields, 4, "start")?,
        },
        "occupancy" => TraceEvent::StreamOccupancy {
            stream: field(fields, 1, "stream")?.to_string(),
            live_slots: num(fields, 10, "live_slots")?,
            at: num(fields, 4, "start")?,
        },
        "stall" => {
            let cause = field(fields, 1, "cause")?;
            TraceEvent::CoreStall {
                core: num(fields, 3, "core")? as u32,
                cause: StallCause::parse(cause)
                    .ok_or_else(|| format!("unknown stall cause '{cause}'"))?,
                start: num(fields, 4, "start")?,
                end: num(fields, 5, "end")?,
            }
        }
        "frame_retired" => TraceEvent::FrameRetired {
            graph: num(fields, 3, "graph")? as u32,
            iter: num(fields, 2, "iter")?,
            latency: num(fields, 10, "latency")?,
            at: num(fields, 4, "start")?,
        },
        "ring_drop" => TraceEvent::RingDrop {
            worker: num(fields, 3, "worker")? as u32,
            dropped: num(fields, 10, "dropped")?,
            at: num(fields, 4, "start")?,
        },
        other => return Err(format!("unknown event type '{other}'")),
    })
}

/// Parse a trace exported by [`crate::export::csv`] back into events.
///
/// The header row is required (it documents the column layout and guards
/// against feeding arbitrary CSVs in); trailing blank lines are ignored.
pub fn events_from_csv(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, header)) if header.starts_with("event,label,") => {}
        _ => return Err("not a hinch trace CSV (missing 'event,label,...' header)".into()),
    }
    let mut events = Vec::new();
    for (lineno, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_csv(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(parse_row(&fields).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::csv;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::IterationAdmitted { iter: 0, at: 0 },
            TraceEvent::JobSpan {
                label: "a,b\"c".into(),
                kind: SpanKind::Component,
                iter: 0,
                core: 0,
                start: 0,
                end: 10,
                cycles: 10,
                cache: Some(CacheDelta {
                    l1_misses: 3,
                    l2_misses: 1,
                    mem_cycles: 40,
                }),
            },
            TraceEvent::JobSpan {
                label: "plain".into(),
                kind: SpanKind::ManagerEntry,
                iter: 1,
                core: 2,
                start: 12,
                end: 13,
                cycles: 1,
                cache: None,
            },
            TraceEvent::CoreStall {
                core: 1,
                cause: StallCause::Backpressure,
                start: 0,
                end: 12,
            },
            TraceEvent::EventPoll {
                manager: "m".into(),
                events: 2,
                at: 13,
            },
            TraceEvent::QuiesceBegin { at: 13 },
            TraceEvent::IterationRetired { iter: 0, at: 14 },
            TraceEvent::StreamOccupancy {
                stream: "s".into(),
                live_slots: 2,
                at: 14,
            },
            TraceEvent::ReconfigApplied {
                plans: 1,
                grafted: 3,
                at: 14,
            },
            TraceEvent::DagSwap { version: 1, at: 14 },
            TraceEvent::QuiesceEnd { at: 20 },
            TraceEvent::FrameRetired {
                graph: 7,
                iter: 42,
                latency: 1_250_000,
                at: 21,
            },
            TraceEvent::RingDrop {
                worker: 3,
                dropped: 128,
                at: 22,
            },
        ]
    }

    #[test]
    fn csv_round_trips() {
        let events = sample_events();
        let parsed = events_from_csv(&csv(&events)).expect("parse");
        assert_eq!(parsed, events);
    }

    /// Golden rows for the telemetry-era event kinds: the exact CSV text
    /// is pinned, so a format drift breaks here rather than in a
    /// downstream consumer's archive.
    #[test]
    fn telemetry_rows_golden() {
        let events = vec![
            TraceEvent::FrameRetired {
                graph: 7,
                iter: 42,
                latency: 1_250_000,
                at: 21,
            },
            TraceEvent::RingDrop {
                worker: 3,
                dropped: 128,
                at: 22,
            },
        ];
        let text = csv(&events);
        let golden =
            "event,label,iter,core,start,end,cycles,l1_misses,l2_misses,mem_cycles,value\n\
                      frame_retired,,42,7,21,21,,,,,1250000\n\
                      ring_drop,,,3,22,22,,,,,128\n";
        assert_eq!(text, golden);
        assert_eq!(events_from_csv(golden).expect("parse"), events);
    }

    #[test]
    fn rejects_non_trace_input() {
        assert!(events_from_csv("hello\nworld\n").is_err());
        assert!(events_from_csv("").is_err());
    }

    #[test]
    fn reports_line_numbers() {
        let text = "event,label,iter,core,start,end,cycles,l1_misses,l2_misses,mem_cycles,value\n\
                    admit,,0,,0,0,,,,,\n\
                    bogus,,,,,,,,,,\n";
        let err = events_from_csv(text).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn split_handles_quotes() {
        assert_eq!(
            split_csv("a,\"b,\"\"c\",d").unwrap(),
            vec!["a".to_string(), "b,\"c".into(), "d".into()]
        );
        assert!(split_csv("\"open").is_err());
    }
}
