//! # ring — bounded per-worker flight recorder
//!
//! A [`Ring`] is a fixed-capacity, overwrite-oldest event buffer with
//! exactly one writer (a worker thread) and any number of concurrent
//! snapshot readers. It is the always-on telemetry substrate of the
//! serving runtime: recording is a handful of atomic stores with no
//! locks, no allocation and no branches on the reader side, so it can
//! stay enabled in production.
//!
//! ## Protocol
//!
//! Every slot is a word-level seqlock: a sequence word plus four data
//! words, all plain atomics (any bit pattern is a valid `u64`, so there
//! is no `unsafe` anywhere). For the monotonic write position `p`
//! (never masked — it increments forever) the single writer:
//!
//! 1. `seq.store(2p + 1)` — slot enters the *dirty* state;
//! 2. stores the four encoded words (`Release`);
//! 3. `seq.store(2p + 2, Release)` — slot is *clean* for position `p`;
//! 4. `head.store(p + 1, Release)` — publishes the new position.
//!
//! A reader targeting position `p` loads `s1 = seq` (`Acquire`), the
//! four words (`Acquire`), then `s2 = seq`, and accepts the event only
//! if `s1 == s2 == 2p + 2`. If the reader raced a wrapping writer and
//! read any word of a *newer* write, the `Acquire` load of that word
//! synchronizes with the writer's `Release` store, which itself
//! happened after the writer set `seq` odd — so `s2` is forced to
//! observe a value `!= 2p + 2` and the torn read is discarded. Readers
//! never retry a slot (the event is simply counted as dropped), which
//! makes [`Ring::drain`] wait-free: workers are never paused and a
//! stalled reader can not block a writer.
//!
//! Events are compact, fixed-size [`RingEvent`]s (no strings — graph
//! and node identities are numeric and resolved to labels at render
//! time). Consistency of the protocol is model-checked in
//! `crates/schedcheck/tests/ring_model.rs` and stress-tested below.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{StallCause, Time, TraceEvent};

/// One compact flight-recorder event. `Copy`, four words on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingEvent {
    /// A job (component or manager invocation) of `graph` ran on the
    /// recording worker from `start` to `end`. `node` is the node's
    /// index in its graph's flattened DAG.
    Job {
        graph: u32,
        node: u32,
        start: Time,
        end: Time,
    },
    /// The recording worker sat idle from `start` to `end`; `cause` is
    /// classified at park time from the tenants' admission state.
    Stall {
        worker: u32,
        cause: StallCause,
        start: Time,
        end: Time,
    },
    /// Frame `iter` of `graph` retired; `latency` is its
    /// admission-to-retirement time in the runtime clock.
    Retire {
        graph: u32,
        iter: u32,
        at: Time,
        latency: u64,
    },
}

const KIND_JOB: u64 = 1;
const KIND_STALL: u64 = 2;
const KIND_RETIRE: u64 = 3;

impl RingEvent {
    /// Encode into the four slot words.
    fn encode(&self) -> [u64; 4] {
        match *self {
            RingEvent::Job {
                graph,
                node,
                start,
                end,
            } => [KIND_JOB, pack(graph, node), start, end],
            RingEvent::Stall {
                worker,
                cause,
                start,
                end,
            } => [KIND_STALL, pack(worker, cause.index() as u32), start, end],
            RingEvent::Retire {
                graph,
                iter,
                at,
                latency,
            } => [KIND_RETIRE, pack(graph, iter), at, latency],
        }
    }

    /// Decode four slot words; `None` for an invalid kind or cause
    /// (a torn read that slipped past the seqlock would land here, but
    /// the protocol guarantees it can not — see the module docs).
    fn decode(w: [u64; 4]) -> Option<RingEvent> {
        let (a, b) = unpack(w[1]);
        match w[0] {
            KIND_JOB => Some(RingEvent::Job {
                graph: a,
                node: b,
                start: w[2],
                end: w[3],
            }),
            KIND_STALL => Some(RingEvent::Stall {
                worker: a,
                cause: *StallCause::ALL.get(b as usize)?,
                start: w[2],
                end: w[3],
            }),
            KIND_RETIRE => Some(RingEvent::Retire {
                graph: a,
                iter: b,
                at: w[2],
                latency: w[3],
            }),
            _ => None,
        }
    }

    /// Primary timestamp (start for intervals).
    pub fn at(&self) -> Time {
        match *self {
            RingEvent::Job { start, .. } | RingEvent::Stall { start, .. } => start,
            RingEvent::Retire { at, .. } => at,
        }
    }

    /// Lift into the full [`TraceEvent`] model (for CSV/Chrome export
    /// and offline analysis). Numeric identities are rendered as
    /// `g<graph>.n<node>` labels.
    pub fn to_trace(&self) -> TraceEvent {
        match *self {
            RingEvent::Job {
                graph,
                node,
                start,
                end,
            } => TraceEvent::JobSpan {
                label: format!("g{graph}.n{node}"),
                kind: crate::SpanKind::Component,
                iter: 0,
                core: 0,
                start,
                end,
                cycles: 0,
                cache: None,
            },
            RingEvent::Stall {
                worker,
                cause,
                start,
                end,
            } => TraceEvent::CoreStall {
                core: worker,
                cause,
                start,
                end,
            },
            RingEvent::Retire {
                graph,
                iter,
                at,
                latency,
            } => TraceEvent::FrameRetired {
                graph,
                iter: iter as u64,
                latency,
                at,
            },
        }
    }
}

fn pack(a: u32, b: u32) -> u64 {
    (a as u64) << 32 | b as u64
}

fn unpack(w: u64) -> (u32, u32) {
    ((w >> 32) as u32, w as u32)
}

/// One seqlock slot: sequence word + four data words.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    words: [AtomicU64; 4],
}

/// Fixed-capacity, overwrite-oldest, single-writer event ring.
///
/// Exactly one thread may call [`Ring::record`]; any number may
/// [`Ring::drain`] concurrently with their own [`Cursor`]s.
pub struct Ring {
    slots: Box<[Slot]>,
    mask: u64,
    /// Next position to write; positions are monotonic (never masked).
    head: AtomicU64,
}

impl Ring {
    /// Create a ring with at least `capacity` slots (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots: Vec<Slot> = (0..cap).map(|_| Slot::default()).collect();
        Ring {
            slots: slots.into_boxed_slice(),
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (monotonic, not the live count).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Record one event. **Single-writer**: only the owning worker may
    /// call this; concurrent writers would corrupt the seqlock.
    pub fn record(&self, ev: RingEvent) {
        let p = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(p & self.mask) as usize];
        slot.seq.store(2 * p + 1, Ordering::Relaxed);
        let words = ev.encode();
        for (w, v) in slot.words.iter().zip(words) {
            w.store(v, Ordering::Release);
        }
        slot.seq.store(2 * p + 2, Ordering::Release);
        self.head.store(p + 1, Ordering::Release);
    }

    /// Drain every event recorded since `cursor`, advancing it. Events
    /// overwritten before this call (the cursor fell more than
    /// `capacity` behind) or overwritten *during* it (a racing writer
    /// lapped the slot mid-read) are counted in [`Drain::dropped`]
    /// rather than retried, so the drain is wait-free and never pauses
    /// the writer.
    pub fn drain(&self, cursor: &mut Cursor) -> Drain {
        let head = self.head.load(Ordering::Acquire);
        let lo = cursor.0.max(head.saturating_sub(self.mask + 1));
        let mut out = Drain {
            events: Vec::with_capacity((head - lo) as usize),
            dropped: lo - cursor.0,
        };
        for p in lo..head {
            let slot = &self.slots[(p & self.mask) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            let mut words = [0u64; 4];
            for (v, w) in words.iter_mut().zip(slot.words.iter()) {
                *v = w.load(Ordering::Acquire);
            }
            let s2 = slot.seq.load(Ordering::Relaxed);
            let want = 2 * p + 2;
            match (s1 == want && s2 == want)
                .then(|| RingEvent::decode(words))
                .flatten()
            {
                Some(ev) => out.events.push(ev),
                None => out.dropped += 1,
            }
        }
        cursor.0 = head;
        out
    }
}

/// A reader's drain position in one [`Ring`]. Each consumer keeps its
/// own cursor; cursors never affect the writer.
#[derive(Debug, Default, Clone, Copy)]
pub struct Cursor(u64);

/// Result of one [`Ring::drain`].
#[derive(Debug, Default)]
pub struct Drain {
    /// Events recovered, in recording order.
    pub events: Vec<RingEvent>,
    /// Events lost to overwrite (reader lag) — never torn, just gone.
    pub dropped: u64,
}

/// One ring per worker of a runtime, plus a snapshot cursor set.
///
/// Workers write only their own ring (upholding the single-writer
/// contract); [`RingSet::snapshot`] drains all rings into one batch.
pub struct RingSet {
    rings: Vec<Arc<Ring>>,
}

impl RingSet {
    pub fn new(workers: usize, capacity: usize) -> Self {
        RingSet {
            rings: (0..workers)
                .map(|_| Arc::new(Ring::new(capacity)))
                .collect(),
        }
    }

    /// The ring owned by worker `i` (clone the `Arc` into the worker).
    pub fn ring(&self, i: usize) -> Arc<Ring> {
        self.rings[i].clone()
    }

    pub fn workers(&self) -> usize {
        self.rings.len()
    }

    /// Drain all rings since `cursors` (which must come from
    /// [`RingSet::cursors`] and be reused across snapshots).
    pub fn snapshot(&self, cursors: &mut Vec<Cursor>) -> RingSnapshot {
        cursors.resize(self.rings.len(), Cursor::default());
        let mut snap = RingSnapshot::default();
        for (i, (ring, cur)) in self.rings.iter().zip(cursors.iter_mut()).enumerate() {
            let d = ring.drain(cur);
            snap.dropped += d.dropped;
            snap.events
                .extend(d.events.into_iter().map(|e| (i as u32, e)));
        }
        snap.events.sort_by_key(|(_, e)| e.at());
        snap
    }

    /// Fresh cursor set positioned at "everything recorded so far is
    /// history" — i.e. the first snapshot sees only *new* events.
    pub fn cursors(&self) -> Vec<Cursor> {
        vec![Cursor::default(); self.rings.len()]
    }
}

/// Merged result of draining every ring of a [`RingSet`].
#[derive(Debug, Default)]
pub struct RingSnapshot {
    /// `(worker, event)` pairs merged across rings, ordered by
    /// [`RingEvent::at`].
    pub events: Vec<(u32, RingEvent)>,
    /// Total events lost to overwrite across all rings.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    fn retire(graph: u32, iter: u32) -> RingEvent {
        RingEvent::Retire {
            graph,
            iter,
            at: iter as u64 * 10,
            latency: 7,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let evs = [
            RingEvent::Job {
                graph: 3,
                node: 9,
                start: 100,
                end: 250,
            },
            RingEvent::Stall {
                worker: 2,
                cause: StallCause::Backpressure,
                start: 5,
                end: 6,
            },
            RingEvent::Retire {
                graph: u32::MAX,
                iter: 12345,
                at: u64::MAX,
                latency: 42,
            },
        ];
        for ev in evs {
            assert_eq!(RingEvent::decode(ev.encode()), Some(ev));
        }
        assert_eq!(RingEvent::decode([99, 0, 0, 0]), None);
        assert_eq!(RingEvent::decode([KIND_STALL, pack(0, 17), 0, 0]), None);
    }

    #[test]
    fn drain_in_order_without_wrap() {
        let ring = Ring::new(16);
        let mut cur = Cursor::default();
        for i in 0..10 {
            ring.record(retire(0, i));
        }
        let d = ring.drain(&mut cur);
        assert_eq!(d.dropped, 0);
        assert_eq!(d.events.len(), 10);
        for (i, ev) in d.events.iter().enumerate() {
            assert_eq!(*ev, retire(0, i as u32));
        }
        // nothing new: empty drain
        let d = ring.drain(&mut cur);
        assert!(d.events.is_empty());
        assert_eq!(d.dropped, 0);
    }

    #[test]
    fn wrap_overwrites_oldest_and_counts_dropped() {
        let ring = Ring::new(8);
        let mut cur = Cursor::default();
        for i in 0..20 {
            ring.record(retire(0, i));
        }
        let d = ring.drain(&mut cur);
        assert_eq!(d.dropped, 12);
        let iters: Vec<u32> = d
            .events
            .iter()
            .map(|e| match e {
                RingEvent::Retire { iter, .. } => *iter,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(iters, (12..20).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(Ring::new(0).capacity(), 2);
        assert_eq!(Ring::new(3).capacity(), 4);
        assert_eq!(Ring::new(4096).capacity(), 4096);
    }

    #[test]
    fn ring_set_merges_by_time() {
        let set = RingSet::new(2, 8);
        let mut curs = set.cursors();
        set.ring(0).record(RingEvent::Job {
            graph: 0,
            node: 0,
            start: 20,
            end: 30,
        });
        set.ring(1).record(RingEvent::Job {
            graph: 1,
            node: 0,
            start: 10,
            end: 15,
        });
        let snap = set.snapshot(&mut curs);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].0, 1); // earlier timestamp first
        assert_eq!(snap.events[1].0, 0);
        assert!(set.snapshot(&mut curs).events.is_empty());
    }

    /// Seeded stress: 2–8 writer threads wrap their rings thousands of
    /// times while a reader snapshots concurrently. Every recovered
    /// event must decode, belong to its writer, and arrive in strictly
    /// increasing per-writer order; received + dropped must account for
    /// every record exactly once.
    #[test]
    fn concurrent_snapshot_never_tears_or_duplicates() {
        for &workers in &[2usize, 3, 5, 8] {
            let set = Arc::new(RingSet::new(workers, 64));
            let stop = Arc::new(AtomicBool::new(false));
            const PER_WRITER: u32 = 20_000;

            let writers: Vec<_> = (0..workers)
                .map(|w| {
                    let ring = set.ring(w);
                    // xorshift-seeded jitter so interleavings vary but
                    // the test stays deterministic per seed.
                    let mut rng = 0x9e3779b9u32
                        .wrapping_mul(w as u32 + 1)
                        .wrapping_add(workers as u32);
                    std::thread::spawn(move || {
                        for i in 0..PER_WRITER {
                            ring.record(retire(w as u32, i));
                            rng ^= rng << 13;
                            rng ^= rng >> 17;
                            rng ^= rng << 5;
                            if rng.is_multiple_of(64) {
                                std::hint::spin_loop();
                            }
                        }
                    })
                })
                .collect();

            let reader = {
                let set = set.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut curs = set.cursors();
                    let mut last: Vec<i64> = vec![-1; set.workers()];
                    let mut received = vec![0u64; set.workers()];
                    let mut dropped = 0u64;
                    loop {
                        let done = stop.load(Ordering::Acquire);
                        let snap = set.snapshot(&mut curs);
                        dropped += snap.dropped;
                        for (_, ev) in snap.events {
                            match ev {
                                RingEvent::Retire {
                                    graph,
                                    iter,
                                    at,
                                    latency,
                                } => {
                                    let w = graph as usize;
                                    assert!(
                                        (iter as i64) > last[w],
                                        "worker {w}: iter {iter} after {}",
                                        last[w]
                                    );
                                    assert_eq!(at, iter as u64 * 10, "torn payload");
                                    assert_eq!(latency, 7, "torn payload");
                                    last[w] = iter as i64;
                                    received[w] += 1;
                                }
                                other => panic!("unexpected event {other:?}"),
                            }
                        }
                        if done {
                            return (received, dropped);
                        }
                    }
                })
            };

            for h in writers {
                h.join().unwrap();
            }
            stop.store(true, Ordering::Release);
            let (received, dropped) = reader.join().unwrap();
            let total: u64 = received.iter().sum::<u64>() + dropped;
            assert_eq!(total, PER_WRITER as u64 * workers as u64);
            for (w, r) in received.iter().enumerate() {
                assert!(*r > 0, "worker {w} contributed nothing");
            }
        }
    }
}
