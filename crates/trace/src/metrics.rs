//! Always-on counter / histogram registry for the engines.
//!
//! Full tracing ([`crate::Recorder`]) buffers every event and is opt-in
//! per run. This module is the lightweight companion: an
//! [`EngineMetrics`] registry that both engines bump with **one relaxed
//! atomic per event** even when no trace sink is attached, so a
//! production run always has utilization counters and latency
//! histograms to report. A run without a registry pays one branch per
//! would-be update, exactly like the disabled trace sink (see the
//! `metrics_overhead` bench next to `trace_overhead`).
//!
//! Times are in the clock of the engine that updates the registry:
//! virtual cycles under the simulation engine, wall-clock nanoseconds
//! under the native engine.

use crate::StallCause;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter (relaxed atomics: totals are
/// exact once the run has joined its workers; mid-run reads are
/// approximate).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets in a [`LogHistogram`]: bucket 0 holds
/// value 0, bucket `b` holds values in `[2^(b-1), 2^b)`.
pub const LOG_BUCKETS: usize = 65;

/// A hand-rolled HDR-style histogram with power-of-two buckets: O(1)
/// lock-free recording (one relaxed atomic add), ~2x relative error on
/// percentile estimates, fixed 65 x 8 bytes of storage for the full
/// `u64` range.
pub struct LogHistogram {
    buckets: [AtomicU64; LOG_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            buckets: [0u64; LOG_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl LogHistogram {
    /// Bucket index for `value`.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Lower bound of bucket `b` (inclusive).
    pub fn bucket_low(b: usize) -> u64 {
        if b == 0 {
            0
        } else {
            1u64 << (b - 1)
        }
    }

    /// Upper bound of bucket `b` (inclusive).
    pub fn bucket_high(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile (`q` in
    /// [0, 1]); 0 when empty. HDR-style: at most one power of two above
    /// the true value.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_high(b);
            }
        }
        Self::bucket_high(LOG_BUCKETS - 1)
    }

    /// `(bucket low, bucket high, count)` for every non-empty bucket.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, bucket)| {
                let n = bucket.load(Ordering::Relaxed);
                (n > 0).then(|| (Self::bucket_low(b), Self::bucket_high(b), n))
            })
            .collect()
    }

    /// Raw per-bucket counts, full fixed width. Two snapshots taken at
    /// different times can be subtracted element-wise to get the
    /// distribution of values recorded *between* them (counters are
    /// monotonic), which is how `insight::live` computes windowed
    /// percentiles without per-value storage.
    pub fn bucket_counts(&self) -> [u64; LOG_BUCKETS] {
        let mut out = [0u64; LOG_BUCKETS];
        for (o, b) in out.iter_mut().zip(self.buckets.iter()) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Prometheus-style cumulative buckets: `(upper bound, count of
    /// values <= bound)` for every bucket up to and including the
    /// highest non-empty one. The implicit `+Inf` bucket equals
    /// [`LogHistogram::count`]. Empty histogram yields no entries.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        Self::cumulative_from_counts(&self.bucket_counts())
    }

    /// [`LogHistogram::cumulative_buckets`] over an explicit counts
    /// array (e.g. a window diff of two [`LogHistogram::bucket_counts`]
    /// snapshots).
    pub fn cumulative_from_counts(counts: &[u64]) -> Vec<(u64, u64)> {
        let last = match counts.iter().rposition(|&n| n > 0) {
            Some(b) => b,
            None => return Vec::new(),
        };
        let mut seen = 0u64;
        counts[..=last]
            .iter()
            .enumerate()
            .map(|(b, &n)| {
                seen += n;
                (Self::bucket_high(b), seen)
            })
            .collect()
    }

    /// Quantile estimate over an explicit counts array (same convention
    /// as [`LogHistogram::quantile`]: upper bound of the rank bucket,
    /// 0 when empty).
    pub fn quantile_from_counts(counts: &[u64], q: f64) -> u64 {
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_high(b);
            }
        }
        Self::bucket_high(counts.len().saturating_sub(1))
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .finish()
    }
}

/// The always-on registry both engines update. Attach one via
/// `RunConfig::metrics`; share it across runs to aggregate, or use a
/// fresh one per run and read it afterwards.
#[derive(Debug, Default)]
pub struct EngineMetrics {
    /// Jobs executed (components + manager invocations).
    pub jobs: Counter,
    /// Iterations retired.
    pub iterations: Counter,
    /// Reconfiguration batches applied.
    pub reconfigs: Counter,
    /// Quiesce (drain + resync) windows closed.
    pub quiesce_windows: Counter,
    /// Total time inside quiesce windows.
    pub quiesce_time: Counter,
    /// Manager event-queue polls.
    pub event_polls: Counter,
    /// Events drained by those polls.
    pub events_drained: Counter,
    /// Per-job duration histogram (cycles or nanoseconds).
    pub job_time: LogHistogram,
    /// Total stalled time per cause (indexed by [`StallCause::index`]).
    pub stall_time: [Counter; StallCause::ALL.len()],
    /// Stall intervals per cause.
    pub stall_intervals: [Counter; StallCause::ALL.len()],
}

impl EngineMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one executed job of duration `time`.
    #[inline]
    pub fn on_job(&self, time: u64) {
        self.jobs.inc();
        self.job_time.record(time);
    }

    /// Record one idle interval.
    #[inline]
    pub fn on_stall(&self, cause: StallCause, time: u64) {
        self.stall_time[cause.index()].add(time);
        self.stall_intervals[cause.index()].inc();
    }

    /// Total stalled time across causes.
    pub fn stalled_total(&self) -> u64 {
        self.stall_time.iter().map(|c| c.get()).sum()
    }

    /// Multi-line human-readable dump; `unit` is e.g. `"cycles"` or
    /// `"ns"` (see [`crate::Clock::unit`]).
    pub fn render(&self, unit: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "== engine metrics ({unit}) ==");
        let _ = writeln!(
            out,
            "jobs {}  iterations {}  reconfigs {}  event polls {} ({} events)",
            self.jobs.get(),
            self.iterations.get(),
            self.reconfigs.get(),
            self.event_polls.get(),
            self.events_drained.get(),
        );
        let _ = writeln!(
            out,
            "job time: mean {:.1} {unit}  p50 <= {}  p99 <= {}  max <= {}",
            self.job_time.mean(),
            self.job_time.quantile(0.50),
            self.job_time.quantile(0.99),
            self.job_time.quantile(1.0),
        );
        let _ = writeln!(
            out,
            "quiesce: {} window(s), {} {unit}",
            self.quiesce_windows.get(),
            self.quiesce_time.get(),
        );
        for cause in StallCause::ALL {
            let i = cause.index();
            let _ = writeln!(
                out,
                "stall {:<13} {:>8} interval(s)  {:>14} {unit}",
                cause.as_str(),
                self.stall_intervals[i].get(),
                self.stall_time[i].get(),
            );
        }
        out
    }
}

/// Identity of one graph instance in a multi-tenant runtime: numeric id
/// plus the human-readable application name it was spawned with.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GraphLabel {
    pub graph_id: u64,
    pub app: String,
}

/// Registry of per-graph-instance [`EngineMetrics`], keyed by
/// [`GraphLabel`], so stall and throughput numbers can be attributed per
/// tenant (hinch-insight reads this). Registration is cold-path only —
/// the hot path stays the per-graph `EngineMetrics` relaxed atomics, so
/// the disabled-path overhead of the engines is unchanged.
///
/// Uses `std::sync::Mutex` (this crate is dependency-free by design).
#[derive(Debug, Default)]
pub struct LabeledMetrics {
    entries: std::sync::Mutex<Vec<(GraphLabel, std::sync::Arc<EngineMetrics>)>>,
}

impl LabeledMetrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a tenant's registry. A re-registration under the same
    /// graph id replaces the previous entry.
    pub fn register(&self, label: GraphLabel, metrics: std::sync::Arc<EngineMetrics>) {
        let mut entries = self.entries.lock().unwrap();
        entries.retain(|(l, _)| l.graph_id != label.graph_id);
        entries.push((label, metrics));
    }

    /// Drop the entry for `graph_id` (graph drained / torn down).
    pub fn unregister(&self, graph_id: u64) {
        self.entries
            .lock()
            .unwrap()
            .retain(|(l, _)| l.graph_id != graph_id);
    }

    /// Snapshot of the live entries, ordered by graph id.
    pub fn snapshot(&self) -> Vec<(GraphLabel, std::sync::Arc<EngineMetrics>)> {
        let mut all = self.entries.lock().unwrap().clone();
        all.sort_by_key(|(l, _)| l.graph_id);
        all
    }

    /// Per-tenant one-liners (jobs, iterations, stalled time) followed by
    /// each tenant's full [`EngineMetrics::render`]; `unit` as there.
    pub fn render(&self, unit: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let snapshot = self.snapshot();
        let _ = writeln!(out, "== per-graph metrics: {} tenant(s) ==", snapshot.len());
        for (label, m) in &snapshot {
            let _ = writeln!(
                out,
                "g{} [{}]: jobs {}  iterations {}  reconfigs {}  stalled {} {unit}",
                label.graph_id,
                label.app,
                m.jobs.get(),
                m.iterations.get(),
                m.reconfigs.get(),
                m.stalled_total(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        for b in 1..LOG_BUCKETS {
            assert_eq!(LogHistogram::bucket_of(LogHistogram::bucket_low(b)), b);
            assert_eq!(LogHistogram::bucket_of(LogHistogram::bucket_high(b)), b);
        }
    }

    #[test]
    fn histogram_mean_and_quantiles() {
        let h = LogHistogram::default();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert!((h.mean() - 22.0).abs() < 1e-9);
        // p50 falls in bucket [2,3]; the estimate is its upper bound.
        assert_eq!(h.quantile(0.5), 3);
        // max falls in bucket [64,127]
        assert_eq!(h.quantile(1.0), 127);
        assert_eq!(h.quantile(0.0), 1);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|(_, _, n)| n).sum::<u64>(), 5);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LogHistogram::default();
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
        assert!(h.cumulative_buckets().is_empty());
        assert_eq!(LogHistogram::quantile_from_counts(&[0; 4], 0.5), 0);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let h = LogHistogram::default();
        for v in [0u64, 1, 2, 3, 4, 100, 100] {
            h.record(v);
        }
        let cum = h.cumulative_buckets();
        // Dense up to the last non-empty bucket (bucket_of(100) = 7).
        assert_eq!(cum.len(), 8);
        assert!(cum.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(cum.last().unwrap().1, h.count());
        assert_eq!(cum[0], (0, 1)); // le=0 holds the one zero value
    }

    #[test]
    fn window_diff_recovers_interval_quantiles() {
        let h = LogHistogram::default();
        for v in [1u64, 1, 1, 1] {
            h.record(v);
        }
        let before = h.bucket_counts();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let after = h.bucket_counts();
        let diff: Vec<u64> = after.iter().zip(before).map(|(a, b)| a - b).collect();
        assert_eq!(diff.iter().sum::<u64>(), 3);
        // All three window values land in [64, 511]; p50 over the window
        // ignores the pre-window 1s entirely.
        assert_eq!(
            LogHistogram::quantile_from_counts(&diff, 0.5),
            LogHistogram::bucket_high(LogHistogram::bucket_of(200))
        );
        // ... while the full histogram's p50 is still dominated by the 1s.
        assert_eq!(h.quantile(0.5), 1);
    }

    #[test]
    fn registry_accumulates() {
        let m = EngineMetrics::new();
        m.on_job(10);
        m.on_job(20);
        m.on_stall(StallCause::Starvation, 5);
        m.on_stall(StallCause::Quiesce, 7);
        m.iterations.inc();
        assert_eq!(m.jobs.get(), 2);
        assert_eq!(m.job_time.sum(), 30);
        assert_eq!(m.stalled_total(), 12);
        assert_eq!(m.stall_time[StallCause::Starvation.index()].get(), 5);
        let text = m.render("cycles");
        assert!(text.contains("jobs 2"), "{text}");
        assert!(text.contains("starvation"), "{text}");
    }

    #[test]
    fn labeled_registry_attributes_per_graph() {
        let reg = LabeledMetrics::new();
        let a = std::sync::Arc::new(EngineMetrics::new());
        let b = std::sync::Arc::new(EngineMetrics::new());
        reg.register(
            GraphLabel {
                graph_id: 0,
                app: "pip".into(),
            },
            a.clone(),
        );
        reg.register(
            GraphLabel {
                graph_id: 1,
                app: "blur".into(),
            },
            b.clone(),
        );
        a.on_job(10);
        b.on_job(20);
        b.on_job(30);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0.app, "pip");
        assert_eq!(snap[0].1.jobs.get(), 1);
        assert_eq!(snap[1].1.jobs.get(), 2);
        let text = reg.render("ns");
        assert!(text.contains("g1 [blur]: jobs 2"), "{text}");
        reg.unregister(0);
        assert_eq!(reg.snapshot().len(), 1);
        // Same-id re-registration replaces.
        reg.register(
            GraphLabel {
                graph_id: 1,
                app: "blur2".into(),
            },
            std::sync::Arc::new(EngineMetrics::new()),
        );
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0.app, "blur2");
        assert_eq!(snap[0].1.jobs.get(), 0);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let m = std::sync::Arc::new(EngineMetrics::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..1000 {
                        m.on_job(i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.jobs.get(), 4000);
        assert_eq!(m.job_time.count(), 4000);
    }
}
