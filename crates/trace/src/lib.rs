//! # trace — flight-recorder tracing for the Hinch engines
//!
//! Both engines can emit a stream of typed [`TraceEvent`]s into a
//! [`TraceSink`]: job spans (which node ran which iteration on which
//! core, and when), scheduler events (iteration admission/retirement,
//! quiesce windows, DAG version swaps, reconfiguration application,
//! event-queue polls) and stream-occupancy samples. Timestamps are
//! *virtual cycles* under the simulation engine and *wall-clock
//! nanoseconds* under the native engine; the [`Clock`] tag says which.
//!
//! The default sink is the [`Recorder`]: a thread-buffered flight
//! recorder. Each recording thread appends to its own shard (found via a
//! `thread_local` cache, so the hot path takes no contended lock), and a
//! process-wide sequence counter provides a total order for the final
//! merge. Under the deterministic simulation engine all events come from
//! one thread, so a drained trace — and every exporter in
//! [`export`] — is byte-identical across runs.
//!
//! Tracing is opt-in per run. A run without a sink pays one branch per
//! would-be event and performs no allocation; see the
//! `trace_overhead` bench.

pub mod export;
pub mod input;
pub mod metrics;
pub mod ring;

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};

/// A timestamp: wall-clock nanoseconds (native engine) or virtual cycles
/// (simulation engine). Which one is in force is described by [`Clock`].
pub type Time = u64;

/// What the timestamps of a trace mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Wall-clock nanoseconds since the start of the run (native engine).
    WallNanos,
    /// Virtual platform cycles (simulation engine).
    VirtualCycles,
}

impl Clock {
    /// Unit suffix for human-readable output.
    pub fn unit(&self) -> &'static str {
        match self {
            Clock::WallNanos => "ns",
            Clock::VirtualCycles => "cycles",
        }
    }
}

/// Cache-model counters attributed to a single job (simulation engine
/// only): the difference of the platform statistics across the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheDelta {
    pub l1_misses: u64,
    pub l2_misses: u64,
    pub mem_cycles: u64,
}

/// Which kind of scheduled job a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A component invocation.
    Component,
    /// A manager entry invocation (event poll).
    ManagerEntry,
    /// A manager exit invocation (synchronization point).
    ManagerExit,
}

impl SpanKind {
    pub fn as_str(&self) -> &'static str {
        match self {
            SpanKind::Component => "component",
            SpanKind::ManagerEntry => "mgr_entry",
            SpanKind::ManagerExit => "mgr_exit",
        }
    }
}

/// Why a core (or worker) sat idle for an interval.
///
/// The engines tag every idle interval at the point the core blocks, so
/// the stalls of one core *partition* its idle time exactly: no two
/// stall intervals overlap and, together with the job spans, they tile
/// `[0, makespan]` under the simulation engine (see `crates/insight`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StallCause {
    /// Stream-empty starvation: the next job's input data was not yet
    /// produced (waiting on upstream components).
    Starvation,
    /// Stream-full backpressure: all pipeline slots were occupied, so no
    /// new iteration could be admitted until one retired.
    Backpressure,
    /// Quiesce window: admission halted for a reconfiguration (pipeline
    /// drain + resync barrier).
    Quiesce,
    /// Job-queue empty: every iteration was admitted and this core had
    /// no work left (end-of-run drain).
    JobQueueEmpty,
}

impl StallCause {
    /// All causes, in a fixed order (indexes into per-cause arrays).
    pub const ALL: [StallCause; 4] = [
        StallCause::Starvation,
        StallCause::Backpressure,
        StallCause::Quiesce,
        StallCause::JobQueueEmpty,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            StallCause::Starvation => "starvation",
            StallCause::Backpressure => "backpressure",
            StallCause::Quiesce => "quiesce",
            StallCause::JobQueueEmpty => "queue_empty",
        }
    }

    /// Index into [`StallCause::ALL`]-shaped arrays.
    pub fn index(&self) -> usize {
        match self {
            StallCause::Starvation => 0,
            StallCause::Backpressure => 1,
            StallCause::Quiesce => 2,
            StallCause::JobQueueEmpty => 3,
        }
    }

    /// Inverse of [`StallCause::as_str`].
    pub fn parse(s: &str) -> Option<StallCause> {
        StallCause::ALL.into_iter().find(|c| c.as_str() == s)
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// One job execution: node `label`, iteration `iter`, on `core`,
    /// from `start` to `end`. `cycles` is the charged virtual cost
    /// (0 under the native engine, where `end - start` is the
    /// measurement); `cache` carries the per-job cache-model counters
    /// when a metered platform is in use.
    JobSpan {
        label: String,
        kind: SpanKind,
        iter: u64,
        core: u32,
        start: Time,
        end: Time,
        cycles: u64,
        cache: Option<CacheDelta>,
    },
    /// The scheduler admitted iteration `iter` into the pipeline.
    IterationAdmitted { iter: u64, at: Time },
    /// Iteration `iter` retired (all its jobs done, stream slots freed).
    IterationRetired { iter: u64, at: Time },
    /// A reconfiguration plan exists; admission stopped and the pipeline
    /// started draining (start of the paper's Fig. 10 window).
    QuiesceBegin { at: Time },
    /// The pipeline resumed after applying pending reconfigurations
    /// (end of the drain + resync window).
    QuiesceEnd { at: Time },
    /// A re-flattened DAG (new `version`) was installed.
    DagSwap { version: u64, at: Time },
    /// Reconfiguration plans were applied at quiescence.
    ReconfigApplied { plans: u64, grafted: u64, at: Time },
    /// A manager entry polled its event queue and drained `events`.
    EventPoll {
        manager: String,
        events: u64,
        at: Time,
    },
    /// Occupancy sample of one stream (live iteration slots).
    StreamOccupancy {
        stream: String,
        live_slots: u64,
        at: Time,
    },
    /// One idle interval of a core (or native worker), tagged with why
    /// the core blocked. Emitted at the point the stall *ends* (when the
    /// core picks up its next job, or at run end for the final drain).
    CoreStall {
        core: u32,
        cause: StallCause,
        start: Time,
        end: Time,
    },
    /// Frame `iter` of serving-runtime graph `graph` retired; `latency`
    /// is its admission-to-retirement time. The multi-graph runtime's
    /// flight recorder ([`ring`]) emits these per retired frame.
    FrameRetired {
        graph: u32,
        iter: u64,
        latency: u64,
        at: Time,
    },
    /// A flight-recorder consumer on `worker`'s ring fell behind and
    /// `dropped` events were overwritten before they could be drained.
    RingDrop { worker: u32, dropped: u64, at: Time },
}

impl TraceEvent {
    /// The primary timestamp of the event (`start` for spans).
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::JobSpan { start, .. } | TraceEvent::CoreStall { start, .. } => *start,
            TraceEvent::IterationAdmitted { at, .. }
            | TraceEvent::IterationRetired { at, .. }
            | TraceEvent::QuiesceBegin { at }
            | TraceEvent::QuiesceEnd { at }
            | TraceEvent::DagSwap { at, .. }
            | TraceEvent::ReconfigApplied { at, .. }
            | TraceEvent::EventPoll { at, .. }
            | TraceEvent::StreamOccupancy { at, .. }
            | TraceEvent::FrameRetired { at, .. }
            | TraceEvent::RingDrop { at, .. } => *at,
        }
    }
}

/// Receiver for trace events. Implementations must be cheap and
/// thread-safe: the native engine records from every worker thread.
pub trait TraceSink: Send + Sync {
    fn record(&self, event: TraceEvent);
}

/// A sink that discards everything; used by the overhead benchmarks to
/// measure the cost of event *construction* alone.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&self, _event: TraceEvent) {}
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread cache of `recorder id → shard`, so the hot recording
    /// path never touches the recorder's shared shard list.
    static LOCAL_SHARDS: RefCell<Vec<(u64, Weak<Shard>)>> =
        const { RefCell::new(Vec::new()) };
}

#[derive(Default)]
struct Shard {
    /// `(global sequence number, event)` — the sequence number restores a
    /// total order when shards are merged.
    events: Mutex<Vec<(u64, TraceEvent)>>,
}

struct Inner {
    id: u64,
    clock: Clock,
    seq: AtomicU64,
    shards: Mutex<Vec<Arc<Shard>>>,
}

/// The flight recorder: buffers events in per-thread shards and merges
/// them into arrival order on [`Recorder::events`].
///
/// Cloning is cheap (an `Arc` bump); clones share the same buffer.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl Recorder {
    pub fn new(clock: Clock) -> Self {
        Self {
            inner: Arc::new(Inner {
                id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
                clock,
                seq: AtomicU64::new(0),
                shards: Mutex::new(Vec::new()),
            }),
        }
    }

    pub fn clock(&self) -> Clock {
        self.inner.clock
    }

    /// This recorder as a sink, ready for
    /// [`RunConfig::trace`](../hinch/struct.RunConfig.html).
    pub fn sink(&self) -> Arc<dyn TraceSink> {
        Arc::new(self.clone())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.seq.load(Ordering::Relaxed) as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All events, merged across threads into recording order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let shards = lock(&self.inner.shards).clone();
        let mut all: Vec<(u64, TraceEvent)> = Vec::new();
        for shard in &shards {
            all.extend(lock(&shard.events).iter().cloned());
        }
        all.sort_by_key(|(seq, _)| *seq);
        all.into_iter().map(|(_, event)| event).collect()
    }

    fn local_shard(&self) -> Arc<Shard> {
        LOCAL_SHARDS.with(|cell| {
            let mut map = cell.borrow_mut();
            if let Some((_, weak)) = map.iter().find(|(id, _)| *id == self.inner.id) {
                if let Some(shard) = weak.upgrade() {
                    return shard;
                }
            }
            let shard = Arc::new(Shard::default());
            lock(&self.inner.shards).push(shard.clone());
            map.retain(|(_, weak)| weak.strong_count() > 0);
            map.push((self.inner.id, Arc::downgrade(&shard)));
            shard
        })
    }
}

impl TraceSink for Recorder {
    fn record(&self, event: TraceEvent) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let shard = self.local_shard();
        lock(&shard.events).push((seq, event));
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("clock", &self.inner.clock)
            .field("events", &self.len())
            .finish()
    }
}

/// Lock a mutex, ignoring poisoning (a recording thread that panicked
/// leaves a perfectly usable event buffer behind).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Structural invariants every well-formed trace satisfies. Returns a
/// description of the first violation, if any.
///
/// * spans on one core never overlap and start monotonically;
/// * span `end >= start`;
/// * every quiesce-begin is closed by exactly one quiesce-end (no nested
///   or dangling windows).
pub fn check_invariants(events: &[TraceEvent]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut last_end: HashMap<u32, (Time, String)> = HashMap::new();
    let mut open_quiesce = 0usize;
    for event in events {
        match event {
            TraceEvent::JobSpan {
                label,
                core,
                start,
                end,
                ..
            } => {
                if end < start {
                    return Err(format!(
                        "span '{label}' on core {core} ends before it starts"
                    ));
                }
                if let Some((prev_end, prev_label)) = last_end.get(core) {
                    if start < prev_end {
                        return Err(format!(
                            "core {core}: span '{label}' [{start}, {end}] overlaps \
                             '{prev_label}' ending at {prev_end}"
                        ));
                    }
                }
                last_end.insert(*core, (*end, label.clone()));
            }
            TraceEvent::CoreStall {
                core,
                cause,
                start,
                end,
            } if end < start => {
                return Err(format!(
                    "stall ({}) on core {core} ends before it starts",
                    cause.as_str()
                ));
            }
            TraceEvent::QuiesceBegin { at } => {
                if open_quiesce > 0 {
                    return Err(format!("nested quiesce-begin at {at}"));
                }
                open_quiesce += 1;
            }
            TraceEvent::QuiesceEnd { at } => {
                if open_quiesce == 0 {
                    return Err(format!("quiesce-end at {at} without a begin"));
                }
                open_quiesce -= 1;
            }
            _ => {}
        }
    }
    if open_quiesce > 0 {
        return Err(format!("{open_quiesce} quiesce window(s) never closed"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(label: &str, core: u32, start: Time, end: Time) -> TraceEvent {
        TraceEvent::JobSpan {
            label: label.into(),
            kind: SpanKind::Component,
            iter: 0,
            core,
            start,
            end,
            cycles: end - start,
            cache: None,
        }
    }

    #[test]
    fn recorder_preserves_order() {
        let rec = Recorder::new(Clock::VirtualCycles);
        rec.record(span("a", 0, 0, 5));
        rec.record(TraceEvent::IterationRetired { iter: 0, at: 5 });
        rec.record(span("b", 0, 5, 9));
        let events = rec.events();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.len(), 3);
        assert!(matches!(
            events[1],
            TraceEvent::IterationRetired { iter: 0, at: 5 }
        ));
    }

    #[test]
    fn recorder_merges_across_threads() {
        let rec = Recorder::new(Clock::WallNanos);
        let handles: Vec<_> = (0..4u32)
            .map(|core| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        rec.record(span("w", core, i * 10, i * 10 + 5));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let events = rec.events();
        assert_eq!(events.len(), 400);
        // every thread contributed all of its events
        for core in 0..4u32 {
            let n = events
                .iter()
                .filter(|e| matches!(e, TraceEvent::JobSpan { core: c, .. } if *c == core))
                .count();
            assert_eq!(n, 100);
        }
    }

    #[test]
    fn clones_share_the_buffer() {
        let rec = Recorder::new(Clock::VirtualCycles);
        let clone = rec.clone();
        clone.record(span("x", 0, 0, 1));
        assert_eq!(rec.events().len(), 1);
    }

    #[test]
    fn two_recorders_do_not_interfere() {
        let a = Recorder::new(Clock::VirtualCycles);
        let b = Recorder::new(Clock::VirtualCycles);
        a.record(span("a", 0, 0, 1));
        b.record(span("b", 0, 0, 1));
        b.record(span("b2", 0, 1, 2));
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 2);
    }

    #[test]
    fn invariants_accept_clean_trace() {
        let events = vec![
            span("a", 0, 0, 10),
            span("b", 1, 0, 4),
            TraceEvent::QuiesceBegin { at: 10 },
            TraceEvent::QuiesceEnd { at: 20 },
            span("c", 0, 20, 30),
        ];
        assert!(check_invariants(&events).is_ok());
    }

    #[test]
    fn invariants_reject_overlap() {
        let events = vec![span("a", 0, 0, 10), span("b", 0, 5, 15)];
        let err = check_invariants(&events).unwrap_err();
        assert!(err.contains("overlaps"), "{err}");
    }

    #[test]
    fn invariants_reject_dangling_quiesce() {
        let events = vec![TraceEvent::QuiesceBegin { at: 3 }];
        assert!(check_invariants(&events).is_err());
        let events = vec![TraceEvent::QuiesceEnd { at: 3 }];
        assert!(check_invariants(&events).is_err());
    }

    #[test]
    fn null_sink_discards() {
        let sink = NullSink;
        sink.record(span("a", 0, 0, 1));
    }
}
