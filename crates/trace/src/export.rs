//! Exporters: Chrome-trace JSON (Perfetto / `chrome://tracing`),
//! per-core utilization summary, and CSV.
//!
//! All exporters are pure functions of the event slice, so a
//! deterministic trace (simulation engine) exports byte-identically.

use crate::{CacheDelta, Clock, StallCause, Time, TraceEvent};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Synthetic Chrome-trace thread id for the scheduler lane (instant
/// events and quiesce windows live there, below the per-core lanes).
const SCHED_TID: u64 = 1_000;

/// Export as Chrome trace-event JSON.
///
/// Open the output in [Perfetto](https://ui.perfetto.dev) or
/// `chrome://tracing`: one lane per core with a span per job (carrying
/// iteration, kind, charged cycles and cache counters in `args`), a
/// scheduler lane with quiesce windows as spans plus instant events for
/// admissions/retirements/DAG swaps/event polls, and one counter track
/// per sampled stream.
///
/// Native-engine timestamps (nanoseconds) are scaled to the microseconds
/// Chrome expects, keeping nanosecond precision via fractional values;
/// virtual cycles are exported 1 cycle = 1 µs so cycle numbers read
/// directly off the Perfetto ruler.
pub fn chrome_trace_json(events: &[TraceEvent], clock: Clock) -> String {
    let ts = |t: Time| -> String {
        match clock {
            Clock::WallNanos => format!("{}.{:03}", t / 1000, t % 1000),
            Clock::VirtualCycles => t.to_string(),
        }
    };
    let mut entries: Vec<String> = Vec::new();
    entries.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{{\"name\":\"hinch ({})\"}}}}",
        clock.unit()
    ));
    entries.push(format!(
        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{SCHED_TID},\
         \"args\":{{\"name\":\"scheduler\"}}}}"
    ));
    let mut named_cores: Vec<u32> = Vec::new();
    let mut quiesce_open: Option<Time> = None;
    // Cumulative stalled time per cause, sampled onto one counter track
    // (one series per cause) every time a stall interval closes.
    let mut stall_totals = [0u64; StallCause::ALL.len()];
    // Per-stream occupancy histogram (samples per live-slot count),
    // summarized as instant events at the end of the export.
    let mut occupancy: BTreeMap<&str, BTreeMap<u64, u64>> = BTreeMap::new();
    let mut t_last: Time = 0;
    for event in events {
        t_last = t_last.max(match event {
            TraceEvent::JobSpan { end, .. } | TraceEvent::CoreStall { end, .. } => *end,
            other => other.at(),
        });
        match event {
            TraceEvent::JobSpan {
                label,
                kind,
                iter,
                core,
                start,
                end,
                cycles,
                cache,
            } => {
                if !named_cores.contains(core) {
                    named_cores.push(*core);
                    entries.push(format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{core},\
                         \"args\":{{\"name\":\"core {core}\"}}}}"
                    ));
                }
                let mut args = format!(
                    "\"iteration\":{iter},\"kind\":\"{}\",\"cycles\":{cycles}",
                    kind.as_str()
                );
                if let Some(CacheDelta {
                    l1_misses,
                    l2_misses,
                    mem_cycles,
                }) = cache
                {
                    let _ = write!(
                        args,
                        ",\"l1_misses\":{l1_misses},\"l2_misses\":{l2_misses},\
                         \"mem_cycles\":{mem_cycles}"
                    );
                }
                entries.push(format!(
                    "{{\"name\":{},\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":0,\"tid\":{core},\"args\":{{{args}}}}}",
                    json_string(label),
                    kind.as_str(),
                    ts(*start),
                    ts(end.saturating_sub(*start)),
                ));
            }
            TraceEvent::QuiesceBegin { at } => quiesce_open = Some(*at),
            TraceEvent::QuiesceEnd { at } => {
                let begin = quiesce_open.take().unwrap_or(*at);
                entries.push(format!(
                    "{{\"name\":\"quiesce\",\"cat\":\"sched\",\"ph\":\"X\",\"ts\":{},\
                     \"dur\":{},\"pid\":0,\"tid\":{SCHED_TID},\
                     \"args\":{{\"drain_resync\":{}}}}}",
                    ts(begin),
                    ts(at.saturating_sub(begin)),
                    at.saturating_sub(begin),
                ));
            }
            TraceEvent::StreamOccupancy {
                stream,
                live_slots,
                at,
            } => {
                *occupancy
                    .entry(stream.as_str())
                    .or_default()
                    .entry(*live_slots)
                    .or_default() += 1;
                entries.push(format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                     \"args\":{{\"live_slots\":{live_slots}}}}}",
                    json_string(&format!("stream {stream}")),
                    ts(*at),
                ));
            }
            TraceEvent::CoreStall {
                core,
                cause,
                start,
                end,
            } => {
                if !named_cores.contains(core) {
                    named_cores.push(*core);
                    entries.push(format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{core},\
                         \"args\":{{\"name\":\"core {core}\"}}}}"
                    ));
                }
                // The idle interval itself, on the core's lane …
                entries.push(format!(
                    "{{\"name\":{},\"cat\":\"stall\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                     \"pid\":0,\"tid\":{core},\"args\":{{\"cause\":\"{}\"}}}}",
                    json_string(&format!("stall: {}", cause.as_str())),
                    ts(*start),
                    ts(end.saturating_sub(*start)),
                    cause.as_str(),
                ));
                // … and the cumulative per-cause attribution as a counter
                // track (one series per cause).
                stall_totals[cause.index()] += end.saturating_sub(*start);
                let series: Vec<String> = StallCause::ALL
                    .iter()
                    .map(|c| format!("\"{}\":{}", c.as_str(), stall_totals[c.index()]))
                    .collect();
                entries.push(format!(
                    "{{\"name\":\"stalled time\",\"ph\":\"C\",\"ts\":{},\"pid\":0,\
                     \"args\":{{{}}}}}",
                    ts(*end),
                    series.join(","),
                ));
            }
            other => {
                let (name, args) = match other {
                    TraceEvent::IterationAdmitted { iter, .. } => (
                        "iteration admitted".to_string(),
                        format!("\"iteration\":{iter}"),
                    ),
                    TraceEvent::IterationRetired { iter, .. } => (
                        "iteration retired".to_string(),
                        format!("\"iteration\":{iter}"),
                    ),
                    TraceEvent::DagSwap { version, .. } => {
                        ("dag swap".to_string(), format!("\"version\":{version}"))
                    }
                    TraceEvent::ReconfigApplied { plans, grafted, .. } => (
                        "reconfig applied".to_string(),
                        format!("\"plans\":{plans},\"grafted\":{grafted}"),
                    ),
                    TraceEvent::EventPoll {
                        manager, events, ..
                    } => (format!("poll {manager}"), format!("\"events\":{events}")),
                    TraceEvent::FrameRetired {
                        graph,
                        iter,
                        latency,
                        ..
                    } => (
                        format!("frame retired g{graph}"),
                        format!("\"graph\":{graph},\"iteration\":{iter},\"latency\":{latency}"),
                    ),
                    TraceEvent::RingDrop {
                        worker, dropped, ..
                    } => (
                        format!("ring drop w{worker}"),
                        format!("\"worker\":{worker},\"dropped\":{dropped}"),
                    ),
                    _ => unreachable!("span/quiesce/occupancy handled above"),
                };
                entries.push(format!(
                    "{{\"name\":{},\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
                     \"pid\":0,\"tid\":{SCHED_TID},\"args\":{{{args}}}}}",
                    json_string(&name),
                    ts(other.at()),
                ));
            }
        }
    }
    // Occupancy-histogram summaries: one instant event per sampled
    // stream at the end of the trace, carrying the sample count per
    // live-slot level (hover it in Perfetto to read the distribution).
    for (stream, hist) in &occupancy {
        let buckets: Vec<String> = hist
            .iter()
            .map(|(slots, n)| format!("\"slots_{slots}\":{n}"))
            .collect();
        entries.push(format!(
            "{{\"name\":{},\"cat\":\"sched\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\
             \"pid\":0,\"tid\":{SCHED_TID},\"args\":{{{}}}}}",
            json_string(&format!("occupancy histogram {stream}")),
            ts(t_last),
            buckets.join(","),
        ));
    }
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n]}\n");
    out
}

/// Export every event as one CSV row (for the bench harness / plotting).
pub fn csv(events: &[TraceEvent]) -> String {
    let mut out = String::from(
        "event,label,iter,core,start,end,cycles,l1_misses,l2_misses,mem_cycles,value\n",
    );
    for event in events {
        match event {
            TraceEvent::JobSpan {
                label,
                kind,
                iter,
                core,
                start,
                end,
                cycles,
                cache,
            } => {
                // Cache fields stay empty when no cache model ran, so the
                // importer can round-trip `None` (0,0,0 would be a real
                // measurement).
                let (l1, l2, mem) = match cache {
                    Some(c) => (
                        c.l1_misses.to_string(),
                        c.l2_misses.to_string(),
                        c.mem_cycles.to_string(),
                    ),
                    None => (String::new(), String::new(), String::new()),
                };
                let _ = writeln!(
                    out,
                    "{},{},{iter},{core},{start},{end},{cycles},{l1},{l2},{mem},",
                    kind.as_str(),
                    csv_field(label),
                );
            }
            TraceEvent::IterationAdmitted { iter, at } => {
                let _ = writeln!(out, "admit,,{iter},,{at},{at},,,,,");
            }
            TraceEvent::IterationRetired { iter, at } => {
                let _ = writeln!(out, "retire,,{iter},,{at},{at},,,,,");
            }
            TraceEvent::QuiesceBegin { at } => {
                let _ = writeln!(out, "quiesce_begin,,,,{at},{at},,,,,");
            }
            TraceEvent::QuiesceEnd { at } => {
                let _ = writeln!(out, "quiesce_end,,,,{at},{at},,,,,");
            }
            TraceEvent::DagSwap { version, at } => {
                let _ = writeln!(out, "dag_swap,,,,{at},{at},,,,,{version}");
            }
            TraceEvent::ReconfigApplied { plans, grafted, at } => {
                let _ = writeln!(out, "reconfig,,,,{at},{at},,,,,{plans}+{grafted}");
            }
            TraceEvent::EventPoll {
                manager,
                events,
                at,
            } => {
                let _ = writeln!(out, "poll,{},,,{at},{at},,,,,{events}", csv_field(manager));
            }
            TraceEvent::StreamOccupancy {
                stream,
                live_slots,
                at,
            } => {
                let _ = writeln!(
                    out,
                    "occupancy,{},,,{at},{at},,,,,{live_slots}",
                    csv_field(stream)
                );
            }
            TraceEvent::CoreStall {
                core,
                cause,
                start,
                end,
            } => {
                let _ = writeln!(out, "stall,{},,{core},{start},{end},,,,,", cause.as_str());
            }
            TraceEvent::FrameRetired {
                graph,
                iter,
                latency,
                at,
            } => {
                let _ = writeln!(out, "frame_retired,,{iter},{graph},{at},{at},,,,,{latency}");
            }
            TraceEvent::RingDrop {
                worker,
                dropped,
                at,
            } => {
                let _ = writeln!(out, "ring_drop,,,{worker},{at},{at},,,,,{dropped}");
            }
        }
    }
    out
}

/// Per-node aggregate used by the summary.
#[derive(Default, Clone)]
struct NodeBusy {
    jobs: u64,
    busy: u64,
}

/// Per-core utilization / Gantt text summary: idle percentage per core,
/// load imbalance, the critical-path (busiest) node, and the quiesce
/// windows of Fig. 10.
pub fn utilization_summary(events: &[TraceEvent], clock: Clock) -> String {
    let unit = clock.unit();
    let mut per_core: BTreeMap<u32, u64> = BTreeMap::new();
    let mut per_node: BTreeMap<String, NodeBusy> = BTreeMap::new();
    let mut span_min: Option<Time> = None;
    let mut span_max: Time = 0;
    let mut spans: Vec<(u32, Time, Time)> = Vec::new();
    let mut quiesce_open: Option<Time> = None;
    let mut windows: Vec<(Time, Time)> = Vec::new();
    let mut stalls: BTreeMap<u32, [u64; StallCause::ALL.len()]> = BTreeMap::new();
    for event in events {
        match event {
            TraceEvent::JobSpan {
                label,
                core,
                start,
                end,
                ..
            } => {
                let busy = end.saturating_sub(*start);
                *per_core.entry(*core).or_default() += busy;
                let node = per_node.entry(label.clone()).or_default();
                node.jobs += 1;
                node.busy += busy;
                span_min = Some(span_min.map_or(*start, |m| m.min(*start)));
                span_max = span_max.max(*end);
                spans.push((*core, *start, *end));
            }
            TraceEvent::QuiesceBegin { at } => quiesce_open = Some(*at),
            TraceEvent::QuiesceEnd { at } => {
                windows.push((quiesce_open.take().unwrap_or(*at), *at));
            }
            TraceEvent::CoreStall {
                core,
                cause,
                start,
                end,
            } => {
                stalls.entry(*core).or_default()[cause.index()] += end.saturating_sub(*start);
            }
            _ => {}
        }
    }
    let t0 = span_min.unwrap_or(0);
    let total = span_max.saturating_sub(t0);
    let mut out = String::new();
    let _ = writeln!(out, "== per-core utilization ({unit}) ==");
    let _ = writeln!(
        out,
        "window: {total} {unit} across {} core(s)",
        per_core.len()
    );
    for (&core, &busy) in &per_core {
        let pct_busy = percent(busy, total);
        let _ = writeln!(
            out,
            "core {core}: busy {busy:>12} {unit}  idle {:>5.1}%  |{}|",
            100.0 - pct_busy,
            gantt_bar(&spans, core, t0, span_max),
        );
    }
    if !per_core.is_empty() {
        let max = per_core.values().copied().max().unwrap_or(0);
        let mean = per_core.values().sum::<u64>() as f64 / per_core.len() as f64;
        let imbalance = if mean > 0.0 { max as f64 / mean } else { 1.0 };
        let _ = writeln!(out, "load imbalance (max/mean busy): {imbalance:.3}");
    }
    if let Some((label, node)) = per_node
        .iter()
        .max_by(|a, b| a.1.busy.cmp(&b.1.busy).then(b.0.cmp(a.0)))
    {
        let _ = writeln!(
            out,
            "critical-path node: {label} ({} jobs, {} {unit} busy)",
            node.jobs, node.busy
        );
    }
    let mut nodes: Vec<_> = per_node.iter().collect();
    nodes.sort_by(|a, b| b.1.busy.cmp(&a.1.busy).then(a.0.cmp(b.0)));
    let _ = writeln!(out, "-- hottest nodes --");
    for (label, node) in nodes.iter().take(8) {
        let _ = writeln!(
            out,
            "  {label:<28} {:>4} jobs  {:>12} {unit}  ({:>5.1}% of window)",
            node.jobs,
            node.busy,
            percent(node.busy, total),
        );
    }
    if !stalls.is_empty() {
        let _ = writeln!(out, "-- stall attribution (idle time by cause) --");
        let mut totals = [0u64; StallCause::ALL.len()];
        for (&core, causes) in &stalls {
            let per_core: Vec<String> = StallCause::ALL
                .iter()
                .filter(|c| causes[c.index()] > 0)
                .map(|c| format!("{} {}", c.as_str(), causes[c.index()]))
                .collect();
            let _ = writeln!(out, "  core {core}: {}", per_core.join("  "));
            for c in StallCause::ALL {
                totals[c.index()] += causes[c.index()];
            }
        }
        let stalled: u64 = totals.iter().sum();
        for c in StallCause::ALL {
            let t = totals[c.index()];
            if t > 0 {
                let _ = writeln!(
                    out,
                    "  total {:<13} {t:>12} {unit} ({:>5.1}% of stalled time)",
                    c.as_str(),
                    percent(t, stalled),
                );
            }
        }
    }
    if !windows.is_empty() {
        let _ = writeln!(out, "-- quiesce windows (drain + resync) --");
        for (i, (begin, end)) in windows.iter().enumerate() {
            let _ = writeln!(out, "  #{i}: [{begin}, {end}]  {} {unit}", end - begin);
        }
        let sum: u64 = windows.iter().map(|(b, e)| e - b).sum();
        let _ = writeln!(
            out,
            "  total quiesced: {sum} {unit} ({:.2}% of window)",
            percent(sum, total)
        );
    }
    out
}

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 * 100.0 / whole as f64
    }
}

/// A fixed-width textual Gantt lane: each cell covers `total/width` of
/// the run and is shaded by how busy the core was in that bucket.
fn gantt_bar(spans: &[(u32, Time, Time)], core: u32, t0: Time, t1: Time) -> String {
    const WIDTH: usize = 50;
    const SHADES: [char; 5] = [' ', '.', ':', 'o', '#'];
    let total = t1.saturating_sub(t0);
    if total == 0 {
        return " ".repeat(WIDTH);
    }
    let mut busy = vec![0u64; WIDTH];
    let bucket = |t: Time| -> usize {
        (((t - t0) as u128 * WIDTH as u128 / total as u128) as usize).min(WIDTH - 1)
    };
    for &(c, start, end) in spans {
        if c != core || end <= start {
            continue;
        }
        let (b0, b1) = (bucket(start), bucket(end.max(start + 1) - 1));
        for (i, slot) in busy.iter_mut().enumerate().take(b1 + 1).skip(b0) {
            let cell_start = t0 + (total as u128 * i as u128 / WIDTH as u128) as u64;
            let cell_end = t0 + (total as u128 * (i + 1) as u128 / WIDTH as u128) as u64;
            let overlap = end.min(cell_end).saturating_sub(start.max(cell_start));
            *slot += overlap;
        }
    }
    busy.iter()
        .enumerate()
        .map(|(i, &b)| {
            let cell_start = t0 + (total as u128 * i as u128 / WIDTH as u128) as u64;
            let cell_end = t0 + (total as u128 * (i + 1) as u128 / WIDTH as u128) as u64;
            let cell = (cell_end - cell_start).max(1);
            let frac = (b as f64 / cell as f64).clamp(0.0, 1.0);
            SHADES[((frac * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1)]
        })
        .collect()
}

/// Escape a string as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanKind;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::IterationAdmitted { iter: 0, at: 0 },
            TraceEvent::JobSpan {
                label: "dec".into(),
                kind: SpanKind::Component,
                iter: 0,
                core: 0,
                start: 0,
                end: 100,
                cycles: 100,
                cache: Some(CacheDelta {
                    l1_misses: 3,
                    l2_misses: 1,
                    mem_cycles: 40,
                }),
            },
            TraceEvent::JobSpan {
                label: "scale".into(),
                kind: SpanKind::Component,
                iter: 0,
                core: 1,
                start: 20,
                end: 60,
                cycles: 40,
                cache: None,
            },
            TraceEvent::CoreStall {
                core: 1,
                cause: StallCause::Starvation,
                start: 60,
                end: 100,
            },
            TraceEvent::EventPoll {
                manager: "m".into(),
                events: 1,
                at: 100,
            },
            TraceEvent::QuiesceBegin { at: 100 },
            TraceEvent::IterationRetired { iter: 0, at: 110 },
            TraceEvent::StreamOccupancy {
                stream: "s".into(),
                live_slots: 2,
                at: 110,
            },
            TraceEvent::ReconfigApplied {
                plans: 1,
                grafted: 2,
                at: 110,
            },
            TraceEvent::DagSwap {
                version: 1,
                at: 110,
            },
            TraceEvent::QuiesceEnd { at: 150 },
        ]
    }

    /// Minimal structural JSON validation: balanced braces/brackets
    /// outside string literals.
    fn assert_balanced_json(s: &str) {
        let (mut depth, mut in_str, mut escape) = (0i64, false, false);
        for c in s.chars() {
            if in_str {
                if escape {
                    escape = false;
                } else if c == '\\' {
                    escape = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    assert!(depth >= 0, "unbalanced JSON");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unbalanced JSON");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn chrome_trace_is_structurally_valid() {
        let json = chrome_trace_json(&sample_events(), Clock::VirtualCycles);
        assert_balanced_json(&json);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"dec\""));
        assert!(json.contains("\"iteration\":0"));
        assert!(json.contains("\"l1_misses\":3"));
        assert!(json.contains("\"name\":\"quiesce\""));
        assert!(json.contains("\"drain_resync\":50"));
        assert!(json.contains("core 1"));
        assert!(json.contains("\"name\":\"stall: starvation\""));
        assert!(json.contains("\"name\":\"stalled time\""));
        assert!(json.contains("\"starvation\":40"));
        assert!(json.contains("occupancy histogram s"));
        assert!(json.contains("\"slots_2\":1"));
    }

    #[test]
    fn chrome_trace_scales_nanos_to_micros() {
        let events = vec![TraceEvent::JobSpan {
            label: "n".into(),
            kind: SpanKind::Component,
            iter: 0,
            core: 0,
            start: 1500,
            end: 4500,
            cycles: 0,
            cache: None,
        }];
        let json = chrome_trace_json(&events, Clock::WallNanos);
        assert!(json.contains("\"ts\":1.500"), "{json}");
        assert!(json.contains("\"dur\":3.000"), "{json}");
    }

    #[test]
    fn csv_has_one_row_per_event() {
        let events = sample_events();
        let csv = csv(&events);
        assert_eq!(csv.lines().count(), events.len() + 1);
        assert!(csv.starts_with("event,label,"));
        assert!(csv.contains("component,dec,0,0,0,100,100,3,1,40,"));
        assert!(csv.contains("component,scale,0,1,20,60,40,,,,"));
        assert!(csv.contains("occupancy,s,,,110,110,,,,,2"));
        assert!(csv.contains("stall,starvation,,1,60,100,,,,,"));
    }

    #[test]
    fn summary_reports_cores_and_quiesce() {
        let summary = utilization_summary(&sample_events(), Clock::VirtualCycles);
        assert!(summary.contains("core 0"), "{summary}");
        assert!(summary.contains("core 1"), "{summary}");
        assert!(summary.contains("load imbalance"), "{summary}");
        assert!(summary.contains("critical-path node: dec"), "{summary}");
        assert!(summary.contains("quiesce windows"), "{summary}");
        assert!(summary.contains("50 cycles"), "{summary}");
        assert!(summary.contains("stall attribution"), "{summary}");
        assert!(summary.contains("starvation 40"), "{summary}");
    }

    #[test]
    fn exports_are_deterministic() {
        let events = sample_events();
        assert_eq!(
            chrome_trace_json(&events, Clock::VirtualCycles),
            chrome_trace_json(&events, Clock::VirtualCycles)
        );
        assert_eq!(csv(&events), csv(&events));
        assert_eq!(
            utilization_summary(&events, Clock::VirtualCycles),
            utilization_summary(&events, Clock::VirtualCycles)
        );
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
