//! Parser robustness: arbitrary input must never panic — only parse or
//! return a located error — and valid documents must survive mutation
//! into either state, never a crash.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]
    #[test]
    fn arbitrary_bytes_never_panic(input in "[ -~<>&\"'/=\\n]{0,200}") {
        let _ = xspcl::xml::parse(&input); // Ok or Err, never a panic
    }

    #[test]
    fn arbitrary_angle_soup_never_panics(
        tags in proptest::collection::vec("[a-z]{1,4}", 0..12),
        closers in proptest::collection::vec(proptest::bool::ANY, 0..12),
    ) {
        let mut s = String::new();
        for (i, t) in tags.iter().enumerate() {
            if *closers.get(i).unwrap_or(&false) {
                s.push_str(&format!("</{t}>"));
            } else {
                s.push_str(&format!("<{t} a=\"1\">text"));
            }
        }
        let _ = xspcl::xml::parse(&s);
    }

    #[test]
    fn truncations_of_a_valid_document_never_panic(cut in 0usize..400) {
        let doc = r#"<?xml version="1.0"?>
          <xspcl>
            <queue name="mq"/>
            <procedure name="main">
              <stream name="s"/>
              <body>
                <component name="a" class="x"><out port="o" stream="s"/>
                  <param name="p" value="&lt;&amp;&gt;"/>
                </component>
              </body>
            </procedure>
          </xspcl>"#;
        let cut = cut.min(doc.len());
        // cut at a char boundary
        let mut end = cut;
        while !doc.is_char_boundary(end) {
            end -= 1;
        }
        let _ = xspcl::parse_and_validate(&doc[..end]);
    }

    #[test]
    fn validation_never_panics_on_structurally_valid_xml(
        name in "[a-z]{1,6}",
        attr in "[a-z]{1,6}",
        n in 0u32..100,
    ) {
        // structurally fine XML that is semantically arbitrary XSPCL
        let doc = format!(
            "<xspcl><procedure name=\"main\"><body>\
             <parallel shape=\"slice\" n=\"{n}\" name=\"{name}\">\
             <parblock><component name=\"{name}\" class=\"{attr}\">\
             <out port=\"o\" stream=\"{attr}\"/></component></parblock>\
             </parallel></body></procedure></xspcl>"
        );
        let _ = xspcl::parse_and_validate(&doc);
    }
}

#[test]
fn deeply_nested_elements_are_fine() {
    // 256 levels of nesting: recursion depth must be manageable
    let mut s = String::new();
    for _ in 0..256 {
        s.push_str("<a>");
    }
    for _ in 0..256 {
        s.push_str("</a>");
    }
    let root = xspcl::xml::parse(&s).unwrap();
    let mut depth = 0;
    let mut cur = &root;
    while let Some(child) = cur.children.first() {
        depth += 1;
        cur = child;
    }
    assert_eq!(depth, 255);
}

#[test]
fn enormous_attribute_values_are_fine() {
    let big = "x".repeat(100_000);
    let doc = format!("<a v=\"{big}\"/>");
    let e = xspcl::xml::parse(&doc).unwrap();
    assert_eq!(e.attr("v").unwrap().len(), 100_000);
}
