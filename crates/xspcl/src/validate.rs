//! Semantic validation of an XSPCL document.
//!
//! These are the language-level rules; the structural graph rules (single
//! stream writer, crossdep arity, ...) are re-checked by the run-time
//! system on the elaborated graph.
//!
//! [`check_all`] reports *every* semantic error in one pass as
//! [`Diagnostics`] (code `XA090`), so a user fixing a document sees the
//! full list instead of one error per compile. [`check`] is the
//! fail-fast wrapper the compilation pipeline uses: it returns the first
//! diagnostic as an [`XspclError`].

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics};
use crate::error::XspclError;
use std::collections::{HashMap, HashSet};

/// Diagnostic code for document-level semantic errors.
pub const SEMANTIC: &str = "XA090";

/// Validate a parsed document, stopping at the first error.
pub fn check(doc: &Document) -> Result<(), XspclError> {
    match check_all(doc).into_iter().next() {
        None => Ok(()),
        Some(d) => Err(XspclError::semantic(d.message, d.span)),
    }
}

/// Validate a parsed document, reporting every semantic error found.
/// Diagnostics come out in document order (the first one is what
/// [`check`] fails with).
pub fn check_all(doc: &Document) -> Diagnostics {
    let mut diags = Diagnostics::new();
    // unique queues
    let mut queues = HashSet::new();
    for q in &doc.queues {
        if !queues.insert(q.name.as_str()) {
            diags.push(semantic(format!("duplicate queue '{}'", q.name), q.span));
        }
    }
    // unique procedures, main exists
    let mut procs = HashMap::new();
    for p in &doc.procedures {
        if procs.insert(p.name.as_str(), p).is_some() {
            diags.push(semantic(
                format!("duplicate procedure '{}'", p.name),
                p.span,
            ));
        }
    }
    match doc.main() {
        None => diags.push(semantic("no 'main' procedure", crate::xml::Span::UNKNOWN)),
        Some(main) => {
            if !main.formals.is_empty() || !main.formal_streams.is_empty() {
                diags.push(semantic("'main' may not declare formals", main.span));
            }
        }
    }

    no_recursion(doc, &mut diags);

    for p in &doc.procedures {
        check_procedure(doc, p, &queues, &mut diags);
    }
    diags
}

fn semantic(message: impl Into<String>, span: crate::xml::Span) -> Diagnostic {
    Diagnostic::error(SEMANTIC, message).with_span(span)
}

/// Recursion is not supported: there is no way to end it (§3.2).
fn no_recursion(doc: &Document, diags: &mut Diagnostics) {
    fn visit<'a>(
        doc: &'a Document,
        name: &'a str,
        stack: &mut Vec<&'a str>,
        done: &mut HashSet<&'a str>,
        diags: &mut Diagnostics,
    ) {
        if done.contains(name) {
            return;
        }
        if let Some(pos) = stack.iter().position(|&s| s == name) {
            let cycle: Vec<&str> = stack[pos..].iter().copied().chain([name]).collect();
            let p = doc.procedure(name).expect("checked");
            diags.push(semantic(
                format!("recursive procedure call: {}", cycle.join(" -> ")),
                p.span,
            ));
            return;
        }
        let Some(p) = doc.procedure(name) else {
            return; // unknown callee reported elsewhere
        };
        stack.push(name);
        let mut calls = Vec::new();
        collect_calls(&p.body, &mut calls);
        for callee in calls {
            visit(doc, callee, stack, done, diags);
        }
        stack.pop();
        done.insert(name);
    }
    let mut done = HashSet::new();
    for p in &doc.procedures {
        visit(doc, &p.name, &mut Vec::new(), &mut done, diags);
    }
}

fn collect_calls<'a>(body: &'a [Stmt], out: &mut Vec<&'a str>) {
    for stmt in body {
        match stmt {
            Stmt::Call(c) => out.push(&c.procedure),
            Stmt::Parallel(p) => {
                for b in &p.parblocks {
                    collect_calls(b, out);
                }
            }
            Stmt::Manager(m) => collect_calls(&m.body, out),
            Stmt::Option(o) => collect_calls(&o.body, out),
            Stmt::Component(_) => {}
        }
    }
}

fn check_procedure(doc: &Document, p: &Procedure, queues: &HashSet<&str>, diags: &mut Diagnostics) {
    // stream namespace: locals + formal streams, no duplicates
    let mut streams: HashSet<&str> = HashSet::new();
    for s in p.streams.iter().chain(p.formal_streams.iter()) {
        if !streams.insert(s) {
            diags.push(semantic(
                format!("duplicate stream '{s}' in procedure '{}'", p.name),
                p.span,
            ));
        }
    }
    let formals: HashSet<&str> = p.formals.iter().map(|f| f.name.as_str()).collect();
    let ctx = Ctx {
        doc,
        proc: p,
        streams: &streams,
        formals: &formals,
        queues,
        in_manager: false,
    };
    check_body(&p.body, &ctx, diags);
}

struct Ctx<'a> {
    doc: &'a Document,
    proc: &'a Procedure,
    streams: &'a HashSet<&'a str>,
    formals: &'a HashSet<&'a str>,
    queues: &'a HashSet<&'a str>,
    in_manager: bool,
}

fn stream_ok(ctx: &Ctx<'_>, s: &str) -> bool {
    // `$x` refers to a formal stream only through <bind>; plain names must
    // be declared. A `$name` value is allowed if it names a value formal
    // (substituted textually) — rare but legal for computed stream names.
    if let Some(f) = s.strip_prefix('$') {
        return ctx.formals.contains(f) || ctx.streams.contains(f);
    }
    ctx.streams.contains(s)
}

fn check_body(body: &[Stmt], ctx: &Ctx<'_>, diags: &mut Diagnostics) {
    for stmt in body {
        match stmt {
            Stmt::Component(c) => {
                for (_, s) in c.inputs.iter().chain(c.outputs.iter()) {
                    if !stream_ok(ctx, s) {
                        diags.push(semantic(
                            format!(
                                "component '{}' uses undeclared stream '{}' (procedure '{}')",
                                c.name, s, ctx.proc.name
                            ),
                            c.span,
                        ));
                    }
                }
                for param in &c.params {
                    check_param(param, ctx, c.span, diags);
                }
            }
            Stmt::Call(call) => {
                let Some(callee) = ctx.doc.procedure(&call.procedure) else {
                    diags.push(semantic(
                        format!("call to unknown procedure '{}'", call.procedure),
                        call.span,
                    ));
                    continue; // bind/param checks need the callee
                };
                // every formal stream bound exactly once, no unknown binds
                let mut bound = HashSet::new();
                for (formal, actual) in &call.binds {
                    if !callee.formal_streams.iter().any(|f| f == formal) {
                        diags.push(semantic(
                            format!(
                                "'{}' is not a formal stream of procedure '{}'",
                                formal, call.procedure
                            ),
                            call.span,
                        ));
                    }
                    if !bound.insert(formal.as_str()) {
                        diags.push(semantic(
                            format!("formal stream '{formal}' bound twice"),
                            call.span,
                        ));
                    }
                    if !stream_ok(ctx, actual) {
                        diags.push(semantic(
                            format!("bind to undeclared stream '{actual}'"),
                            call.span,
                        ));
                    }
                }
                for f in &callee.formal_streams {
                    if !bound.contains(f.as_str()) {
                        diags.push(semantic(
                            format!(
                                "call to '{}' does not bind formal stream '{}'",
                                call.procedure, f
                            ),
                            call.span,
                        ));
                    }
                }
                // params must name formals; formals without default need a value
                for param in &call.params {
                    if !callee.formals.iter().any(|f| f.name == param.name) {
                        diags.push(semantic(
                            format!(
                                "'{}' is not a formal of procedure '{}'",
                                param.name, call.procedure
                            ),
                            call.span,
                        ));
                    }
                    check_param(param, ctx, call.span, diags);
                }
                for f in &callee.formals {
                    if f.default.is_none() && !call.params.iter().any(|p| p.name == f.name) {
                        diags.push(semantic(
                            format!(
                                "call to '{}' misses required parameter '{}'",
                                call.procedure, f.name
                            ),
                            call.span,
                        ));
                    }
                }
            }
            Stmt::Parallel(par) => {
                match par.shape {
                    Shape::Task => {
                        if par.parblocks.is_empty() {
                            diags
                                .push(semantic("task group needs at least one parblock", par.span));
                        }
                    }
                    Shape::Slice => {
                        if par.parblocks.len() != 1 {
                            diags.push(semantic(
                                format!(
                                    "slice group must have exactly one parblock, has {}",
                                    par.parblocks.len()
                                ),
                                par.span,
                            ));
                        }
                        if par.n.is_none() {
                            diags
                                .push(semantic("slice group requires the 'n' attribute", par.span));
                        }
                    }
                    Shape::CrossDep => {
                        if par.parblocks.len() < 2 {
                            diags.push(semantic(
                                "crossdep group needs at least two parblocks",
                                par.span,
                            ));
                        }
                        if par.n.is_none() {
                            diags.push(semantic(
                                "crossdep group requires the 'n' attribute",
                                par.span,
                            ));
                        }
                    }
                }
                if let Some(n) = &par.n {
                    if let Some(f) = n.strip_prefix('$') {
                        if !ctx.formals.contains(f) {
                            diags.push(semantic(
                                format!("'n' references unknown formal '${f}'"),
                                par.span,
                            ));
                        }
                    } else if n.parse::<usize>().is_err() {
                        diags.push(semantic(
                            format!("'n' must be a positive integer or $formal, got '{n}'"),
                            par.span,
                        ));
                    }
                }
                for b in &par.parblocks {
                    check_body(b, ctx, diags);
                }
            }
            Stmt::Manager(m) => {
                if !ctx.queues.contains(m.queue.as_str()) {
                    diags.push(semantic(
                        format!("manager '{}' polls undeclared queue '{}'", m.name, m.queue),
                        m.span,
                    ));
                }
                // options in this manager's scope
                let mut options = HashSet::new();
                collect_options(&m.body, &mut options);
                for rule in &m.rules {
                    for action in &rule.actions {
                        match action {
                            ActionStmt::Enable(o)
                            | ActionStmt::Disable(o)
                            | ActionStmt::Toggle(o) => {
                                if !options.contains(o.as_str()) {
                                    diags.push(semantic(
                                        format!(
                                            "manager '{}' refers to unknown option '{}'",
                                            m.name, o
                                        ),
                                        rule.span,
                                    ));
                                }
                            }
                            ActionStmt::Forward(q) => {
                                if !ctx.queues.contains(q.as_str()) {
                                    diags.push(semantic(
                                        format!("forward to undeclared queue '{q}'"),
                                        rule.span,
                                    ));
                                }
                            }
                            ActionStmt::Broadcast(_) => {}
                        }
                    }
                }
                let inner = Ctx {
                    in_manager: true,
                    ..*ctx
                };
                check_body(&m.body, &inner, diags);
            }
            Stmt::Option(o) => {
                if !ctx.in_manager {
                    diags.push(semantic(
                        format!(
                            "option '{}' must be contained inside a manager (§3.4)",
                            o.name
                        ),
                        o.span,
                    ));
                }
                check_body(&o.body, ctx, diags);
            }
        }
    }
}

fn check_param(param: &ParamStmt, ctx: &Ctx<'_>, span: crate::xml::Span, diags: &mut Diagnostics) {
    match &param.value {
        ParamKind::Value(v) => {
            if let Some(f) = v.strip_prefix('$') {
                if !ctx.formals.contains(f) {
                    diags.push(semantic(
                        format!(
                            "parameter '{}' references unknown formal '${f}'",
                            param.name
                        ),
                        span,
                    ));
                }
            }
        }
        ParamKind::Queue(q) => {
            if !ctx.queues.contains(q.as_str()) {
                diags.push(semantic(
                    format!(
                        "parameter '{}' references undeclared queue '{q}'",
                        param.name
                    ),
                    span,
                ));
            }
        }
    }
}

/// Option names within one manager scope (not descending into nested
/// managers).
fn collect_options<'a>(body: &'a [Stmt], out: &mut HashSet<&'a str>) {
    for stmt in body {
        match stmt {
            Stmt::Option(o) => {
                out.insert(&o.name);
                collect_options(&o.body, out);
            }
            Stmt::Parallel(p) => {
                for b in &p.parblocks {
                    collect_options(b, out);
                }
            }
            Stmt::Manager(_) | Stmt::Component(_) | Stmt::Call(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parse_and_validate;

    fn err_of(src: &str) -> String {
        parse_and_validate(src).unwrap_err().to_string()
    }

    #[test]
    fn accepts_minimal_valid_doc() {
        parse_and_validate(
            r#"<xspcl><procedure name="main">
                 <stream name="s"/>
                 <body>
                   <component name="a" class="x"><out stream="s"/></component>
                   <component name="b" class="y"><in stream="s"/></component>
                 </body>
               </procedure></xspcl>"#,
        )
        .unwrap();
    }

    #[test]
    fn requires_main() {
        let e = err_of(r#"<xspcl><procedure name="p"><body/></procedure></xspcl>"#);
        assert!(e.contains("no 'main'"), "{e}");
    }

    #[test]
    fn rejects_duplicate_procedures() {
        let e = err_of(
            r#"<xspcl><procedure name="main"><body/></procedure>
               <procedure name="main"><body/></procedure></xspcl>"#,
        );
        assert!(e.contains("duplicate procedure"), "{e}");
    }

    #[test]
    fn rejects_recursion() {
        let e = err_of(
            r#"<xspcl>
                 <procedure name="main"><body><call procedure="p"/></body></procedure>
                 <procedure name="p"><body><call procedure="q"/></body></procedure>
                 <procedure name="q"><body><call procedure="p"/></body></procedure>
               </xspcl>"#,
        );
        assert!(e.contains("recursive"), "{e}");
        assert!(e.contains("p -> q -> p"), "{e}");
    }

    #[test]
    fn rejects_undeclared_stream() {
        let e = err_of(
            r#"<xspcl><procedure name="main"><body>
                 <component name="a" class="x"><out stream="ghost"/></component>
               </body></procedure></xspcl>"#,
        );
        assert!(e.contains("undeclared stream 'ghost'"), "{e}");
    }

    #[test]
    fn rejects_unbound_formal_stream() {
        let e = err_of(
            r#"<xspcl>
                 <procedure name="main"><stream name="s"/><body>
                   <call procedure="p"/>
                 </body></procedure>
                 <procedure name="p"><formalstream name="x"/><body/></procedure>
               </xspcl>"#,
        );
        assert!(e.contains("does not bind formal stream 'x'"), "{e}");
    }

    #[test]
    fn rejects_missing_required_param() {
        let e = err_of(
            r#"<xspcl>
                 <procedure name="main"><body><call procedure="p"/></body></procedure>
                 <procedure name="p"><formal name="n"/><body/></procedure>
               </xspcl>"#,
        );
        assert!(e.contains("misses required parameter 'n'"), "{e}");
    }

    #[test]
    fn rejects_slice_with_two_parblocks() {
        let e = err_of(
            r#"<xspcl><procedure name="main"><body>
                 <parallel shape="slice" n="4"><parblock/><parblock/></parallel>
               </body></procedure></xspcl>"#,
        );
        assert!(e.contains("exactly one parblock"), "{e}");
    }

    #[test]
    fn rejects_crossdep_with_one_parblock() {
        let e = err_of(
            r#"<xspcl><procedure name="main"><body>
                 <parallel shape="crossdep" n="4"><parblock/></parallel>
               </body></procedure></xspcl>"#,
        );
        assert!(e.contains("at least two parblocks"), "{e}");
    }

    #[test]
    fn rejects_option_outside_manager() {
        let e = err_of(
            r#"<xspcl><procedure name="main"><body>
                 <option name="o"/>
               </body></procedure></xspcl>"#,
        );
        assert!(e.contains("inside a manager"), "{e}");
    }

    #[test]
    fn rejects_manager_with_unknown_queue() {
        let e = err_of(
            r#"<xspcl><procedure name="main"><body>
                 <manager name="m" queue="nope"><body/></manager>
               </body></procedure></xspcl>"#,
        );
        assert!(e.contains("undeclared queue 'nope'"), "{e}");
    }

    #[test]
    fn rejects_rule_for_unknown_option() {
        let e = err_of(
            r#"<xspcl><queue name="q"/><procedure name="main"><body>
                 <manager name="m" queue="q">
                   <on event="e"><toggle option="nope"/></on>
                   <body/>
                 </manager>
               </body></procedure></xspcl>"#,
        );
        assert!(e.contains("unknown option 'nope'"), "{e}");
    }

    #[test]
    fn rejects_bad_n() {
        let e = err_of(
            r#"<xspcl><procedure name="main"><body>
                 <parallel shape="slice" n="lots"><parblock/></parallel>
               </body></procedure></xspcl>"#,
        );
        assert!(e.contains("'n' must be"), "{e}");
    }

    #[test]
    fn accepts_n_from_formal() {
        parse_and_validate(
            r#"<xspcl>
                 <procedure name="main"><stream name="s"/><body>
                   <call procedure="p"><param name="n" value="4"/></call>
                 </body></procedure>
                 <procedure name="p"><formal name="n"/><body>
                   <parallel shape="slice" n="$n"><parblock/></parallel>
                 </body></procedure>
               </xspcl>"#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_main_with_formals() {
        let e = err_of(
            r#"<xspcl><procedure name="main"><formal name="x"/><body/></procedure></xspcl>"#,
        );
        assert!(e.contains("may not declare formals"), "{e}");
    }

    #[test]
    fn check_all_collects_every_error() {
        // three independent mistakes: a ghost stream, an unknown procedure
        // call, and an option outside any manager
        let doc = crate::parse::document(
            &crate::xml::parse(
                r#"<xspcl><procedure name="main"><body>
                     <component name="a" class="x"><out stream="ghost"/></component>
                     <call procedure="nope"/>
                     <option name="o"/>
                   </body></procedure></xspcl>"#,
            )
            .unwrap(),
        )
        .unwrap();
        let diags = crate::validate::check_all(&doc);
        assert_eq!(diags.len(), 3, "{}", diags.render_human());
        let text = diags.render_human();
        assert!(text.contains("undeclared stream 'ghost'"), "{text}");
        assert!(text.contains("unknown procedure 'nope'"), "{text}");
        assert!(text.contains("inside a manager"), "{text}");
        // fail-fast check() reports the first of them
        let first = crate::validate::check(&doc).unwrap_err().to_string();
        assert!(first.contains("undeclared stream 'ghost'"), "{first}");
    }
}
