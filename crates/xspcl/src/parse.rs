//! XML tree → XSPCL AST.

use crate::ast::*;
use crate::error::XspclError;
use crate::xml::Element;

type Result<T> = std::result::Result<T, XspclError>;

fn require_attr<'a>(e: &'a Element, name: &str) -> Result<&'a str> {
    e.attr(name).ok_or_else(|| {
        XspclError::parse(
            format!("<{}> requires attribute '{}'", e.name, name),
            e.span,
        )
    })
}

/// Parse the `<xspcl>` root element.
pub fn document(root: &Element) -> Result<Document> {
    if root.name != "xspcl" {
        return Err(XspclError::parse(
            format!("root element must be <xspcl>, found <{}>", root.name),
            root.span,
        ));
    }
    let mut queues = Vec::new();
    let mut procedures = Vec::new();
    for child in &root.children {
        match child.name.as_str() {
            "queue" => queues.push(QueueDecl {
                name: require_attr(child, "name")?.to_string(),
                span: child.span,
            }),
            "procedure" => procedures.push(procedure(child)?),
            other => {
                return Err(XspclError::parse(
                    format!("unexpected <{other}> under <xspcl> (expected <queue> or <procedure>)"),
                    child.span,
                ))
            }
        }
    }
    Ok(Document { queues, procedures })
}

fn procedure(e: &Element) -> Result<Procedure> {
    let name = require_attr(e, "name")?.to_string();
    let mut formals = Vec::new();
    let mut formal_streams = Vec::new();
    let mut streams = Vec::new();
    let mut body = Vec::new();
    for child in &e.children {
        match child.name.as_str() {
            "formal" => formals.push(Formal {
                name: require_attr(child, "name")?.to_string(),
                default: child.attr("default").map(str::to_string),
            }),
            "formalstream" => formal_streams.push(require_attr(child, "name")?.to_string()),
            "stream" => streams.push(require_attr(child, "name")?.to_string()),
            "body" => body = stmts(&child.children)?,
            other => {
                return Err(XspclError::parse(
                    format!("unexpected <{other}> in <procedure>"),
                    child.span,
                ))
            }
        }
    }
    Ok(Procedure {
        name,
        formals,
        formal_streams,
        streams,
        body,
        span: e.span,
    })
}

fn stmts(elements: &[Element]) -> Result<Vec<Stmt>> {
    elements.iter().map(stmt).collect()
}

fn stmt(e: &Element) -> Result<Stmt> {
    match e.name.as_str() {
        "component" => component(e).map(Stmt::Component),
        "call" => call(e).map(Stmt::Call),
        "parallel" => parallel(e).map(Stmt::Parallel),
        "manager" => manager(e).map(Stmt::Manager),
        "option" => option(e).map(Stmt::Option),
        other => Err(XspclError::parse(
            format!(
                "unexpected <{other}> in a body (expected component/call/parallel/manager/option)"
            ),
            e.span,
        )),
    }
}

fn params_of(e: &Element) -> Result<Vec<ParamStmt>> {
    e.children_named("param")
        .map(|p| {
            let name = require_attr(p, "name")?.to_string();
            let value = match (p.attr("value"), p.attr("queue")) {
                (Some(v), None) => ParamKind::Value(v.to_string()),
                (None, Some(q)) => ParamKind::Queue(q.to_string()),
                _ => {
                    return Err(XspclError::parse(
                        "a <param> needs exactly one of 'value' or 'queue'",
                        p.span,
                    ))
                }
            };
            Ok(ParamStmt { name, value })
        })
        .collect()
}

fn component(e: &Element) -> Result<ComponentStmt> {
    let name = require_attr(e, "name")?.to_string();
    let class = require_attr(e, "class")?.to_string();
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut reconfigs = Vec::new();
    for child in &e.children {
        match child.name.as_str() {
            "in" => inputs.push((
                child.attr("port").unwrap_or("input").to_string(),
                require_attr(child, "stream")?.to_string(),
            )),
            "out" => outputs.push((
                child.attr("port").unwrap_or("output").to_string(),
                require_attr(child, "stream")?.to_string(),
            )),
            "param" => {} // handled below
            "reconfig" => reconfigs.push((
                require_attr(child, "key")?.to_string(),
                require_attr(child, "value")?.to_string(),
            )),
            other => {
                return Err(XspclError::parse(
                    format!("unexpected <{other}> in <component>"),
                    child.span,
                ))
            }
        }
    }
    Ok(ComponentStmt {
        name,
        class,
        inputs,
        outputs,
        params: params_of(e)?,
        reconfigs,
        span: e.span,
    })
}

fn call(e: &Element) -> Result<CallStmt> {
    let procedure = require_attr(e, "procedure")?.to_string();
    let mut binds = Vec::new();
    for child in &e.children {
        match child.name.as_str() {
            "bind" => binds.push((
                require_attr(child, "formal")?.to_string(),
                require_attr(child, "stream")?.to_string(),
            )),
            "param" => {}
            other => {
                return Err(XspclError::parse(
                    format!("unexpected <{other}> in <call>"),
                    child.span,
                ))
            }
        }
    }
    Ok(CallStmt {
        procedure,
        binds,
        params: params_of(e)?,
        span: e.span,
    })
}

fn parallel(e: &Element) -> Result<ParallelStmt> {
    let shape = match require_attr(e, "shape")? {
        "task" => Shape::Task,
        "slice" => Shape::Slice,
        "crossdep" => Shape::CrossDep,
        other => {
            return Err(XspclError::parse(
                format!("unknown parallel shape '{other}' (task/slice/crossdep)"),
                e.span,
            ))
        }
    };
    let mut parblocks = Vec::new();
    for child in &e.children {
        if child.name == "parblock" {
            parblocks.push(stmts(&child.children)?);
        } else {
            return Err(XspclError::parse(
                format!(
                    "unexpected <{}> in <parallel> (expected <parblock>)",
                    child.name
                ),
                child.span,
            ));
        }
    }
    Ok(ParallelStmt {
        name: e.attr("name").unwrap_or("par").to_string(),
        shape,
        n: e.attr("n").map(str::to_string),
        parblocks,
        span: e.span,
    })
}

fn manager(e: &Element) -> Result<ManagerStmt> {
    let name = require_attr(e, "name")?.to_string();
    let queue = require_attr(e, "queue")?.to_string();
    let mut rules = Vec::new();
    let mut body = Vec::new();
    for child in &e.children {
        match child.name.as_str() {
            "on" => {
                let event = require_attr(child, "event")?.to_string();
                let actions = child
                    .children
                    .iter()
                    .map(|a| match a.name.as_str() {
                        "enable" => Ok(ActionStmt::Enable(require_attr(a, "option")?.to_string())),
                        "disable" => {
                            Ok(ActionStmt::Disable(require_attr(a, "option")?.to_string()))
                        }
                        "toggle" => Ok(ActionStmt::Toggle(require_attr(a, "option")?.to_string())),
                        "forward" => Ok(ActionStmt::Forward(require_attr(a, "queue")?.to_string())),
                        "broadcast" => {
                            Ok(ActionStmt::Broadcast(require_attr(a, "key")?.to_string()))
                        }
                        other => Err(XspclError::parse(
                            format!("unknown manager action <{other}>"),
                            a.span,
                        )),
                    })
                    .collect::<Result<Vec<_>>>()?;
                rules.push(RuleStmt {
                    event,
                    actions,
                    span: child.span,
                });
            }
            "body" => body = stmts(&child.children)?,
            other => {
                return Err(XspclError::parse(
                    format!("unexpected <{other}> in <manager>"),
                    child.span,
                ))
            }
        }
    }
    Ok(ManagerStmt {
        name,
        queue,
        rules,
        body,
        span: e.span,
    })
}

fn option(e: &Element) -> Result<OptionStmt> {
    let enabled = match e.attr("enabled").unwrap_or("false") {
        "true" | "1" | "yes" => true,
        "false" | "0" | "no" => false,
        other => {
            return Err(XspclError::parse(
                format!("bad 'enabled' value '{other}' (true/false)"),
                e.span,
            ))
        }
    };
    Ok(OptionStmt {
        name: require_attr(e, "name")?.to_string(),
        enabled,
        body: stmts(&e.children)?,
        span: e.span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml;

    fn parse_doc(src: &str) -> Document {
        document(&xml::parse(src).unwrap()).unwrap()
    }

    #[test]
    fn paper_figure2_component() {
        // the spatial down scaler of the paper's Fig. 2
        let doc = parse_doc(
            r#"<xspcl><procedure name="main">
                 <stream name="big"/><stream name="small"/>
                 <body>
                   <component name="scaler" class="downscale">
                     <in port="input" stream="big"/>
                     <out port="output" stream="small"/>
                     <param name="factor" value="3"/>
                   </component>
                 </body>
               </procedure></xspcl>"#,
        );
        let main = doc.main().unwrap();
        assert_eq!(main.streams, vec!["big", "small"]);
        let Stmt::Component(c) = &main.body[0] else {
            panic!()
        };
        assert_eq!(c.class, "downscale");
        assert_eq!(c.inputs, vec![("input".to_string(), "big".to_string())]);
        assert_eq!(c.params[0].name, "factor");
        assert_eq!(c.params[0].value, ParamKind::Value("3".into()));
    }

    #[test]
    fn paper_figure3_procedure_and_call() {
        let doc = parse_doc(
            r#"<xspcl>
                 <procedure name="main">
                   <stream name="s"/>
                   <body>
                     <call procedure="p">
                       <bind formal="x" stream="s"/>
                       <param name="n" value="4"/>
                     </call>
                   </body>
                 </procedure>
                 <procedure name="p">
                   <formal name="n" default="2"/>
                   <formalstream name="x"/>
                   <body/>
                 </procedure>
               </xspcl>"#,
        );
        assert_eq!(doc.procedures.len(), 2);
        let Stmt::Call(c) = &doc.main().unwrap().body[0] else {
            panic!()
        };
        assert_eq!(c.procedure, "p");
        assert_eq!(c.binds, vec![("x".to_string(), "s".to_string())]);
        let p = doc.procedure("p").unwrap();
        assert_eq!(p.formals[0].default.as_deref(), Some("2"));
        assert_eq!(p.formal_streams, vec!["x"]);
    }

    #[test]
    fn paper_figure4_parallel_shapes() {
        let doc = parse_doc(
            r#"<xspcl><procedure name="main"><body>
                 <parallel shape="task" name="t">
                   <parblock/>
                   <parblock/>
                 </parallel>
                 <parallel shape="slice" n="8" name="s">
                   <parblock/>
                 </parallel>
                 <parallel shape="crossdep" n="9" name="c">
                   <parblock/>
                   <parblock/>
                 </parallel>
               </body></procedure></xspcl>"#,
        );
        let body = &doc.main().unwrap().body;
        let Stmt::Parallel(t) = &body[0] else {
            panic!()
        };
        assert_eq!(t.shape, Shape::Task);
        assert_eq!(t.parblocks.len(), 2);
        let Stmt::Parallel(s) = &body[1] else {
            panic!()
        };
        assert_eq!(s.shape, Shape::Slice);
        assert_eq!(s.n.as_deref(), Some("8"));
        let Stmt::Parallel(c) = &body[2] else {
            panic!()
        };
        assert_eq!(c.shape, Shape::CrossDep);
    }

    #[test]
    fn paper_figure6_manager() {
        let doc = parse_doc(
            r#"<xspcl>
                 <queue name="mq"/>
                 <procedure name="main"><body>
                   <manager name="m" queue="mq">
                     <on event="key"><toggle option="pip2"/></on>
                     <on event="move"><broadcast key="pos"/></on>
                     <on event="pass"><forward queue="mq"/></on>
                     <body>
                       <option name="pip2" enabled="false"/>
                     </body>
                   </manager>
                 </body></procedure>
               </xspcl>"#,
        );
        assert_eq!(doc.queues[0].name, "mq");
        let Stmt::Manager(m) = &doc.main().unwrap().body[0] else {
            panic!()
        };
        assert_eq!(m.rules.len(), 3);
        assert_eq!(m.rules[0].actions, vec![ActionStmt::Toggle("pip2".into())]);
        assert_eq!(
            m.rules[1].actions,
            vec![ActionStmt::Broadcast("pos".into())]
        );
        let Stmt::Option(o) = &m.body[0] else {
            panic!()
        };
        assert!(!o.enabled);
    }

    #[test]
    fn unknown_tags_rejected() {
        let root = xml::parse(r#"<xspcl><widget/></xspcl>"#).unwrap();
        assert!(matches!(document(&root), Err(XspclError::Parse { .. })));
    }

    #[test]
    fn param_needs_value_or_queue() {
        let root = xml::parse(
            r#"<xspcl><procedure name="main"><body>
                 <component name="c" class="k"><param name="p"/></component>
               </body></procedure></xspcl>"#,
        )
        .unwrap();
        assert!(document(&root).is_err());
    }

    #[test]
    fn wrong_root_rejected() {
        let root = xml::parse("<spcxml/>").unwrap();
        assert!(document(&root).is_err());
    }
}
