//! # XSPCL — a component-based coordination language for streaming apps
//!
//! XSPCL (pronounced *x-special*) is the paper's primary contribution: an
//! XML-based coordination language in which a streaming consumer-
//! electronics application is specified as a Series-Parallel graph of
//! components connected by streams, with procedures for abstraction,
//! three shapes of parallelism (`task`, `slice`, `crossdep`), managers
//! with `option` subgraphs for dynamic reconfiguration, and asynchronous
//! event wiring.
//!
//! The processing pipeline mirrors the paper's Fig. 1:
//!
//! ```text
//!   front-end → XSPCL document → [xml] → [parse] → [validate]
//!                                   → [elaborate] → hinch::GraphSpec → run
//!                                   → [codegen]   → DOT / Rust glue
//! ```
//!
//! * [`xml`] — a small, dependency-free XML parser (tags, attributes,
//!   comments, CDATA, entities, line/col spans);
//! * [`ast`] — the XSPCL document model;
//! * [`parse`] — XML tree → AST with spanned errors;
//! * [`validate`] — semantic rules (unique procedures, `main` present, no
//!   recursion, declared streams, shape arities, options inside managers);
//! * [`mod@elaborate`] — procedure expansion and stream resolution against a
//!   [`elaborate::ComponentRegistry`], producing a ready-to-run
//!   [`hinch::GraphSpec`] plus the application's event queues. The
//!   elaboration output is *glue only*: it runs at initialization (or
//!   reconfiguration) time, never per frame — the paper's low-overhead
//!   claim, measured in `bench`;
//! * [`codegen`] — Graphviz DOT export and a Rust glue-source emitter
//!   (the equivalent of the paper's generated C program), plus an XML
//!   pretty-printer for round-tripping.
//!
//! The `xspclc` binary bundles these as a command-line tool.
//!
//! # The concrete syntax
//!
//! ```xml
//! <xspcl>
//!   <queue name="mq"/>
//!   <procedure name="main">
//!     <stream name="big"/> <stream name="small"/>
//!     <body>
//!       <component name="input" class="plane_source">
//!         <out port="output" stream="big"/>
//!         <param name="field" value="0"/>
//!       </component>
//!       <parallel shape="slice" n="8" name="sc">
//!         <parblock>
//!           <component name="scaler" class="downscale">
//!             <in port="input" stream="big"/>
//!             <out port="output" stream="small"/>
//!             <param name="factor" value="3"/>
//!           </component>
//!         </parblock>
//!       </parallel>
//!       <component name="sink" class="frame_sink">
//!         <in port="input" stream="small"/>
//!       </component>
//!     </body>
//!   </procedure>
//! </xspcl>
//! ```
//!
//! Attribute values of the form `$name` refer to procedure formals
//! (declared with `<formal name="..." default="..."/>` and bound by
//! `<call>` sites with `<param>`; formal streams are declared with
//! `<formalstream>` and bound with `<bind>`).

pub mod ast;
pub mod codegen;
pub mod diag;
pub mod elaborate;
pub mod error;
pub mod parse;
pub mod validate;
pub mod xml;

pub use ast::Document;
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use elaborate::{elaborate, elaborate_unchecked, ComponentRegistry, Elaborated};
pub use error::XspclError;

/// Parse, validate and elaborate an XSPCL source string in one call.
pub fn compile(source: &str, registry: &ComponentRegistry) -> Result<Elaborated, XspclError> {
    let doc = parse_and_validate(source)?;
    elaborate(&doc, registry)
}

/// Parse and validate an XSPCL source string (no registry needed).
pub fn parse_and_validate(source: &str) -> Result<Document, XspclError> {
    let root = xml::parse(source).map_err(XspclError::from)?;
    let doc = parse::document(&root)?;
    validate::check(&doc)?;
    Ok(doc)
}
