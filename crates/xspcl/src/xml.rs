//! A small XML parser: exactly what an XSPCL document needs.
//!
//! Supports elements, attributes (single or double quoted), text content,
//! comments, CDATA sections, processing instructions / XML declarations
//! (skipped), the five predefined entities and numeric character
//! references. Every element carries its source line and column for error
//! reporting. No namespaces, no DTDs — XSPCL uses neither.

use std::fmt;

/// Position in the source text (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub const UNKNOWN: Span = Span { line: 0, col: 0 };
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// XML parse error with location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    pub message: String,
    pub span: Span,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for XmlError {}

/// An XML element.
#[derive(Debug, Clone, PartialEq)]
pub struct Element {
    pub name: String,
    pub attrs: Vec<(String, String)>,
    pub children: Vec<Element>,
    /// Concatenated text content directly inside this element.
    pub text: String,
    pub span: Span,
}

impl Element {
    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Child elements with a given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// The single child with a given tag name, if present.
    pub fn child<'a>(&'a self, name: &'a str) -> Option<&'a Element> {
        self.children_named(name).next()
    }
}

struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn span(&self) -> Span {
        Span {
            line: self.line,
            col: self.col,
        }
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError {
            message: message.into(),
            span: self.span(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), XmlError> {
        if self.peek() == Some(b) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{}', found {:?}",
                b as char,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.bump();
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }
}

/// Decode entities in a text span.
fn decode_entities(raw: &str, span: Span) -> Result<String, XmlError> {
    if !raw.contains('&') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.char_indices();
    while let Some((_, ch)) = chars.next() {
        if ch != '&' {
            out.push(ch);
            continue;
        }
        let mut entity = String::new();
        let mut closed = false;
        for (_, e) in chars.by_ref() {
            if e == ';' {
                closed = true;
                break;
            }
            entity.push(e);
            if entity.len() > 10 {
                break;
            }
        }
        if !closed {
            return Err(XmlError {
                message: format!("unterminated entity '&{entity}'"),
                span,
            });
        }
        match entity.as_str() {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                let code = u32::from_str_radix(&entity[2..], 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| XmlError {
                        message: format!("bad character reference '&{entity};'"),
                        span,
                    })?;
                out.push(code);
            }
            _ if entity.starts_with('#') => {
                let code = entity[1..]
                    .parse::<u32>()
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| XmlError {
                        message: format!("bad character reference '&{entity};'"),
                        span,
                    })?;
                out.push(code);
            }
            _ => {
                return Err(XmlError {
                    message: format!("unknown entity '&{entity};'"),
                    span,
                })
            }
        }
    }
    Ok(out)
}

/// Parse a complete document, returning the root element.
pub fn parse(input: &str) -> Result<Element, XmlError> {
    let mut c = Cursor::new(input);
    skip_misc(&mut c)?;
    if c.peek() != Some(b'<') {
        return Err(c.err("expected root element"));
    }
    let root = element(&mut c)?;
    skip_misc(&mut c)?;
    if c.peek().is_some() {
        return Err(c.err("content after root element"));
    }
    Ok(root)
}

/// Skip whitespace, comments, PIs and the XML declaration.
fn skip_misc(c: &mut Cursor<'_>) -> Result<(), XmlError> {
    loop {
        c.skip_ws();
        if c.starts_with("<!--") {
            c.bump_n(4);
            while !c.starts_with("-->") {
                if c.bump().is_none() {
                    return Err(c.err("unterminated comment"));
                }
            }
            c.bump_n(3);
        } else if c.starts_with("<?") {
            c.bump_n(2);
            while !c.starts_with("?>") {
                if c.bump().is_none() {
                    return Err(c.err("unterminated processing instruction"));
                }
            }
            c.bump_n(2);
        } else {
            return Ok(());
        }
    }
}

fn element(c: &mut Cursor<'_>) -> Result<Element, XmlError> {
    let span = c.span();
    c.expect(b'<')?;
    let name = c.name()?;
    let mut attrs = Vec::new();
    loop {
        c.skip_ws();
        match c.peek() {
            Some(b'/') => {
                c.bump();
                c.expect(b'>')?;
                return Ok(Element {
                    name,
                    attrs,
                    children: Vec::new(),
                    text: String::new(),
                    span,
                });
            }
            Some(b'>') => {
                c.bump();
                break;
            }
            Some(_) => {
                let key = c.name()?;
                c.skip_ws();
                c.expect(b'=')?;
                c.skip_ws();
                let quote = match c.peek() {
                    Some(q @ (b'"' | b'\'')) => {
                        c.bump();
                        q
                    }
                    _ => return Err(c.err("expected quoted attribute value")),
                };
                let vspan = c.span();
                let start = c.pos;
                while c.peek() != Some(quote) {
                    if c.bump().is_none() {
                        return Err(c.err("unterminated attribute value"));
                    }
                }
                let raw = String::from_utf8_lossy(&c.input[start..c.pos]).into_owned();
                c.bump(); // closing quote
                attrs.push((key, decode_entities(&raw, vspan)?));
            }
            None => return Err(c.err("unterminated start tag")),
        }
    }

    // content
    let mut children = Vec::new();
    let mut text = String::new();
    loop {
        if c.starts_with("</") {
            c.bump_n(2);
            let end_name = c.name()?;
            if end_name != name {
                return Err(c.err(format!(
                    "mismatched end tag: expected </{name}>, found </{end_name}>"
                )));
            }
            c.skip_ws();
            c.expect(b'>')?;
            return Ok(Element {
                name,
                attrs,
                children,
                text: text.trim().to_string(),
                span,
            });
        } else if c.starts_with("<!--") || c.starts_with("<?") {
            skip_misc(c)?;
        } else if c.starts_with("<![CDATA[") {
            c.bump_n(9);
            let start = c.pos;
            while !c.starts_with("]]>") {
                if c.bump().is_none() {
                    return Err(c.err("unterminated CDATA section"));
                }
            }
            text.push_str(&String::from_utf8_lossy(&c.input[start..c.pos]));
            c.bump_n(3);
        } else if c.peek() == Some(b'<') {
            children.push(element(c)?);
        } else {
            let tspan = c.span();
            let start = c.pos;
            while c.peek().is_some() && c.peek() != Some(b'<') {
                c.bump();
            }
            if c.peek().is_none() {
                return Err(c.err(format!("unterminated element <{name}>")));
            }
            let raw = String::from_utf8_lossy(&c.input[start..c.pos]).into_owned();
            text.push_str(&decode_entities(&raw, tspan)?);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document() {
        let e = parse("<a/>").unwrap();
        assert_eq!(e.name, "a");
        assert!(e.attrs.is_empty());
        assert!(e.children.is_empty());
    }

    #[test]
    fn attributes_and_nesting() {
        let e = parse(r#"<app version="1"><item id='x' n="3"/><item id="y"/></app>"#).unwrap();
        assert_eq!(e.attr("version"), Some("1"));
        assert_eq!(e.children.len(), 2);
        assert_eq!(e.children[0].attr("id"), Some("x"));
        assert_eq!(e.children[0].attr("n"), Some("3"));
        assert_eq!(e.children_named("item").count(), 2);
        assert!(e.child("missing").is_none());
    }

    #[test]
    fn text_content() {
        let e = parse("<p>  hello <b>bold</b> world </p>").unwrap();
        assert!(e.text.contains("hello"));
        assert!(e.text.contains("world"));
        assert_eq!(e.child("b").unwrap().text, "bold");
    }

    #[test]
    fn comments_and_declaration_skipped() {
        let e = parse("<?xml version=\"1.0\"?><!-- hi --><a><!-- inner --><b/></a>").unwrap();
        assert_eq!(e.name, "a");
        assert_eq!(e.children.len(), 1);
    }

    #[test]
    fn entities_decode() {
        let e = parse(r#"<a v="&lt;&gt;&amp;&quot;&apos;">&#65;&#x42;</a>"#).unwrap();
        assert_eq!(e.attr("v"), Some("<>&\"'"));
        assert_eq!(e.text, "AB");
    }

    #[test]
    fn cdata_passes_through() {
        let e = parse("<a><![CDATA[<not><parsed>&amp;]]></a>").unwrap();
        assert_eq!(e.text, "<not><parsed>&amp;");
    }

    #[test]
    fn error_has_position() {
        let err = parse("<a>\n  <b>\n</a>").unwrap_err();
        assert_eq!(err.span.line, 3, "{err}");
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"));
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&nope;</a>").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn unterminated_rejected() {
        assert!(parse("<a>").is_err());
        assert!(parse("<a attr=>").is_err());
        assert!(parse("<a attr=\"x>").is_err());
        assert!(parse("<!-- never ends").is_err());
    }

    #[test]
    fn spans_track_elements() {
        let e = parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(e.span.line, 1);
        assert_eq!(e.children[0].span.line, 2);
        assert_eq!(e.children[0].span.col, 3);
    }
}
