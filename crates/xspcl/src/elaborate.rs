//! Elaboration: XSPCL document → executable [`hinch::GraphSpec`].
//!
//! This is the paper's "conversion tool": it expands procedures at their
//! call sites (procedural abstraction is purely an initialization-time
//! concept), resolves stream names to application-global keys, binds
//! component classes to factories from a [`ComponentRegistry`] (the role
//! the `class` attribute plays for C functions in the paper), and
//! materializes managers, rules and event queues.
//!
//! Everything this module does happens **once**, at initialization or
//! reconfiguration time — the per-frame path never touches it. That is the
//! paper's "overhead of XSPCL is negligible" claim, and the `glue`
//! benchmark measures it.

use crate::ast::*;
use crate::error::XspclError;
use crate::xml::Span;
use hinch::component::{Component, ParamValue, Params, ReconfigRequest, RunCtx};
use hinch::event::EventQueue;
use hinch::graph::{ComponentSpec, GraphSpec, ManagerSpec};
use hinch::manager::EventAction;
use std::collections::HashMap;
use std::sync::Arc;

type Result<T> = std::result::Result<T, XspclError>;

/// Constructor for a component class.
pub type Constructor = Arc<dyn Fn(&Params) -> Box<dyn Component> + Send + Sync>;

/// Maps XSPCL `class` names to component constructors — the equivalent of
/// the paper's link step against the component C code.
#[derive(Clone, Default)]
pub struct ComponentRegistry {
    map: HashMap<String, Constructor>,
    stub_unknown: bool,
}

impl ComponentRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry that fabricates inert components for unknown classes.
    /// Only for analysis and code generation — stub components do not
    /// touch their ports, so running them will trip stream checks.
    pub fn stubbed() -> Self {
        Self {
            map: HashMap::new(),
            stub_unknown: true,
        }
    }

    /// Register a constructor for `class`.
    pub fn register<F>(&mut self, class: impl Into<String>, ctor: F) -> &mut Self
    where
        F: Fn(&Params) -> Box<dyn Component> + Send + Sync + 'static,
    {
        self.map.insert(class.into(), Arc::new(ctor));
        self
    }

    pub fn contains(&self, class: &str) -> bool {
        self.map.contains_key(class)
    }

    /// Build a ready [`hinch::graph::ComponentFactory`] for `class` bound
    /// to `params` — the call generated glue code uses.
    ///
    /// # Panics
    /// If the class is unknown (generated glue is only linked against
    /// registries that provide its classes).
    pub fn factory(&self, class: &str, params: Params) -> hinch::graph::ComponentFactory {
        let ctor = self
            .constructor(class, Span::UNKNOWN)
            .unwrap_or_else(|_| panic!("component class '{class}' not registered"));
        hinch::graph::factory(move |p| ctor(p), params)
    }

    fn constructor(&self, class: &str, span: Span) -> Result<Constructor> {
        if let Some(c) = self.map.get(class) {
            return Ok(c.clone());
        }
        if self.stub_unknown {
            let class = class.to_string();
            return Ok(Arc::new(move |_p: &Params| -> Box<dyn Component> {
                Box::new(StubComponent {
                    class: class.clone(),
                })
            }));
        }
        Err(XspclError::elaborate(
            format!("unknown component class '{class}'"),
            span,
        ))
    }
}

struct StubComponent {
    class: String,
}

impl Component for StubComponent {
    fn class(&self) -> &'static str {
        "stub"
    }
    fn run(&mut self, _ctx: &mut RunCtx<'_>) {
        panic!("stub component '{}' must not be executed", self.class);
    }
}

/// The elaboration result: a validated graph spec plus the application's
/// event queues (so the host and injector components can reach them).
pub struct Elaborated {
    pub spec: GraphSpec,
    pub queues: HashMap<String, EventQueue>,
    /// Source spans of elaborated constructs, for diagnostics. Keys are
    /// elaborated names: component instances and slice/crossdep groups
    /// and managers under their scoped name (`main/a`), options as
    /// `option:NAME` and queues as `queue:NAME`.
    pub spans: HashMap<String, Span>,
}

impl Elaborated {
    /// The span recorded for elaborated construct `key`, if any.
    pub fn span_of(&self, key: &str) -> Option<Span> {
        self.spans.get(key).copied()
    }
}

impl std::fmt::Debug for Elaborated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Elaborated")
            .field("components", &self.spec.leaf_count())
            .field("queues", &self.queues.keys().collect::<Vec<_>>())
            .finish()
    }
}

/// Elaborate a validated document against a registry.
pub fn elaborate(doc: &Document, registry: &ComponentRegistry) -> Result<Elaborated> {
    let elaborated = elaborate_unchecked(doc, registry)?;
    elaborated.spec.validate()?;
    Ok(elaborated)
}

/// Like [`elaborate`], but without the run-time system's final structural
/// validation. The static analyzer uses this so it can report structural
/// problems itself — with spans and all at once — instead of receiving
/// hinch's first error only.
pub fn elaborate_unchecked(doc: &Document, registry: &ComponentRegistry) -> Result<Elaborated> {
    let queues: HashMap<String, EventQueue> = doc
        .queues
        .iter()
        .map(|q| (q.name.clone(), EventQueue::new(q.name.clone())))
        .collect();
    let main = doc
        .main()
        .ok_or_else(|| XspclError::semantic("no 'main' procedure", Span::UNKNOWN))?;
    let mut elab = Elaborator {
        doc,
        registry,
        queues: &queues,
        call_counter: 0,
        spans: doc
            .queues
            .iter()
            .map(|q| (format!("queue:{}", q.name), q.span))
            .collect(),
    };
    let env = Env {
        formals: HashMap::new(),
        streams: main
            .streams
            .iter()
            .map(|s| (s.clone(), format!("main/{s}")))
            .collect(),
        scope: "main".to_string(),
    };
    let spec = seq_of(elab.body(&main.body, &env)?);
    let spans = elab.spans;
    Ok(Elaborated {
        spec,
        queues,
        spans,
    })
}

struct Env {
    /// Value formals in scope (already resolved to literals).
    formals: HashMap<String, String>,
    /// Stream name in scope → application-global stream key.
    streams: HashMap<String, String>,
    scope: String,
}

impl Env {
    /// Substitute `$formal` references (whole-value substitution).
    fn value(&self, raw: &str, span: Span) -> Result<String> {
        if let Some(f) = raw.strip_prefix('$') {
            self.formals
                .get(f)
                .cloned()
                .ok_or_else(|| XspclError::elaborate(format!("unbound formal '${f}'"), span))
        } else {
            Ok(raw.to_string())
        }
    }

    fn stream(&self, raw: &str, span: Span) -> Result<String> {
        let name = self.value(raw, span)?;
        self.streams
            .get(&name)
            .cloned()
            .ok_or_else(|| XspclError::elaborate(format!("unbound stream '{name}'"), span))
    }
}

fn seq_of(mut parts: Vec<GraphSpec>) -> GraphSpec {
    if parts.len() == 1 {
        parts.pop().expect("len checked")
    } else {
        GraphSpec::Seq(parts)
    }
}

/// Parse a parameter literal to a typed value: int, then float, else
/// string.
fn typed_value(raw: &str) -> ParamValue {
    if let Ok(i) = raw.parse::<i64>() {
        ParamValue::Int(i)
    } else if let Ok(f) = raw.parse::<f64>() {
        ParamValue::Float(f)
    } else {
        ParamValue::Str(raw.to_string())
    }
}

struct Elaborator<'a> {
    doc: &'a Document,
    registry: &'a ComponentRegistry,
    queues: &'a HashMap<String, EventQueue>,
    call_counter: usize,
    spans: HashMap<String, Span>,
}

impl Elaborator<'_> {
    fn body(&mut self, body: &[Stmt], env: &Env) -> Result<Vec<GraphSpec>> {
        body.iter().map(|stmt| self.stmt(stmt, env)).collect()
    }

    fn stmt(&mut self, stmt: &Stmt, env: &Env) -> Result<GraphSpec> {
        match stmt {
            Stmt::Component(c) => self.component(c, env),
            Stmt::Call(c) => self.call(c, env),
            Stmt::Parallel(p) => self.parallel(p, env),
            Stmt::Manager(m) => self.manager(m, env),
            Stmt::Option(o) => {
                self.spans.insert(format!("option:{}", o.name), o.span);
                Ok(GraphSpec::Option {
                    name: o.name.clone(),
                    enabled: o.enabled,
                    body: Box::new(seq_of(self.body(&o.body, env)?)),
                })
            }
        }
    }

    fn component(&mut self, c: &ComponentStmt, env: &Env) -> Result<GraphSpec> {
        let mut params = Params::new();
        for p in &c.params {
            match &p.value {
                ParamKind::Value(raw) => {
                    let v = env.value(raw, c.span)?;
                    params = params.set(p.name.clone(), typed_value(&v));
                }
                ParamKind::Queue(qname) => {
                    let q = self.queues.get(qname).ok_or_else(|| {
                        XspclError::elaborate(format!("undeclared queue '{qname}'"), c.span)
                    })?;
                    params = params.set(p.name.clone(), q.clone());
                }
            }
        }
        let ctor = self.registry.constructor(&c.class, c.span)?;
        let scoped = format!("{}/{}", env.scope, c.name);
        self.spans.insert(scoped.clone(), c.span);
        let mut spec = ComponentSpec::new(
            scoped,
            c.class.clone(),
            hinch::graph::factory(move |p| ctor(p), params.clone()),
        )
        .with_params(params);
        for (_, s) in &c.inputs {
            spec = spec.input(env.stream(s, c.span)?);
        }
        for (_, s) in &c.outputs {
            spec = spec.output(env.stream(s, c.span)?);
        }
        for (key, value) in &c.reconfigs {
            let v = env.value(value, c.span)?;
            spec = spec.reconfig(ReconfigRequest::User {
                key: key.clone(),
                value: typed_value(&v),
            });
        }
        Ok(GraphSpec::Leaf(spec))
    }

    fn call(&mut self, call: &CallStmt, env: &Env) -> Result<GraphSpec> {
        let callee = self.doc.procedure(&call.procedure).ok_or_else(|| {
            XspclError::elaborate(format!("unknown procedure '{}'", call.procedure), call.span)
        })?;
        self.call_counter += 1;
        let scope = format!("{}/{}#{}", env.scope, call.procedure, self.call_counter);

        // value formals: defaults, overridden by actuals
        let mut formals = HashMap::new();
        for f in &callee.formals {
            if let Some(d) = &f.default {
                formals.insert(f.name.clone(), d.clone());
            }
        }
        for p in &call.params {
            match &p.value {
                ParamKind::Value(raw) => {
                    formals.insert(p.name.clone(), env.value(raw, call.span)?);
                }
                ParamKind::Queue(_) => {
                    return Err(XspclError::elaborate(
                        format!(
                            "call parameter '{}' may not be a queue (queues are global)",
                            p.name
                        ),
                        call.span,
                    ))
                }
            }
        }
        for f in &callee.formals {
            if !formals.contains_key(&f.name) {
                return Err(XspclError::elaborate(
                    format!("call to '{}' misses parameter '{}'", call.procedure, f.name),
                    call.span,
                ));
            }
        }

        // stream namespace: formal streams bound to caller globals, locals
        // get fresh scoped keys
        let mut streams = HashMap::new();
        for (formal, actual) in &call.binds {
            streams.insert(formal.clone(), env.stream(actual, call.span)?);
        }
        for local in &callee.streams {
            streams.insert(local.clone(), format!("{scope}/{local}"));
        }

        let child = Env {
            formals,
            streams,
            scope,
        };
        let parts = self.body(&callee.body, &child)?;
        Ok(seq_of(parts))
    }

    fn parallel(&mut self, p: &ParallelStmt, env: &Env) -> Result<GraphSpec> {
        let n = match &p.n {
            None => None,
            Some(raw) => {
                let v = env.value(raw, p.span)?;
                let n: usize = v.parse().map_err(|_| {
                    XspclError::elaborate(format!("'n' is not a positive integer: '{v}'"), p.span)
                })?;
                if n == 0 {
                    return Err(XspclError::elaborate("'n' must be at least 1", p.span));
                }
                Some(n)
            }
        };
        let name = format!("{}/{}", env.scope, p.name);
        self.spans.insert(name.clone(), p.span);
        match p.shape {
            Shape::Task => {
                let blocks = p
                    .parblocks
                    .iter()
                    .map(|b| Ok(seq_of(self.body(b, env)?)))
                    .collect::<Result<Vec<_>>>()?;
                Ok(GraphSpec::Task(blocks))
            }
            Shape::Slice => {
                let body = seq_of(self.body(&p.parblocks[0], env)?);
                Ok(GraphSpec::Slice {
                    name,
                    n: n.ok_or_else(|| XspclError::elaborate("slice needs 'n'", p.span))?,
                    body: Box::new(body),
                })
            }
            Shape::CrossDep => {
                let blocks = p
                    .parblocks
                    .iter()
                    .map(|b| Ok(seq_of(self.body(b, env)?)))
                    .collect::<Result<Vec<_>>>()?;
                Ok(GraphSpec::CrossDep {
                    name,
                    n: n.ok_or_else(|| XspclError::elaborate("crossdep needs 'n'", p.span))?,
                    blocks,
                })
            }
        }
    }

    fn manager(&mut self, m: &ManagerStmt, env: &Env) -> Result<GraphSpec> {
        let queue = self.queues.get(&m.queue).ok_or_else(|| {
            XspclError::elaborate(format!("undeclared queue '{}'", m.queue), m.span)
        })?;
        let scoped = format!("{}/{}", env.scope, m.name);
        self.spans.insert(scoped.clone(), m.span);
        let mut spec = ManagerSpec::new(scoped, queue.clone());
        for rule in &m.rules {
            let actions = rule
                .actions
                .iter()
                .map(|a| {
                    Ok(match a {
                        ActionStmt::Enable(o) => EventAction::Enable(o.clone()),
                        ActionStmt::Disable(o) => EventAction::Disable(o.clone()),
                        ActionStmt::Toggle(o) => EventAction::Toggle(o.clone()),
                        ActionStmt::Broadcast(k) => EventAction::Broadcast { key: k.clone() },
                        ActionStmt::Forward(qname) => {
                            let q = self.queues.get(qname).ok_or_else(|| {
                                XspclError::elaborate(
                                    format!("undeclared queue '{qname}'"),
                                    rule.span,
                                )
                            })?;
                            EventAction::Forward(q.clone())
                        }
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            spec = spec.on(rule.event.clone(), actions);
        }
        let body = seq_of(self.body(&m.body, env)?);
        Ok(GraphSpec::managed(spec, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_and_validate;
    use hinch::graph::GraphSpec;

    fn registry() -> ComponentRegistry {
        let mut r = ComponentRegistry::new();
        for class in ["src", "work", "sink"] {
            r.register(class, |_p: &Params| -> Box<dyn Component> {
                Box::new(Noop)
            });
        }
        r
    }

    struct Noop;
    impl Component for Noop {
        fn class(&self) -> &'static str {
            "noop"
        }
        fn run(&mut self, _ctx: &mut RunCtx<'_>) {}
    }

    fn compile(src: &str) -> Result<Elaborated> {
        let doc = parse_and_validate(src)?;
        elaborate(&doc, &registry())
    }

    #[test]
    fn pipeline_elaborates() {
        let e = compile(
            r#"<xspcl><procedure name="main">
                 <stream name="s"/>
                 <body>
                   <component name="a" class="src"><out stream="s"/></component>
                   <component name="b" class="sink"><in stream="s"/></component>
                 </body>
               </procedure></xspcl>"#,
        )
        .unwrap();
        assert_eq!(e.spec.leaf_count(), 2);
        let mut names = Vec::new();
        e.spec.visit_leaves(&mut |c| names.push(c.name.clone()));
        assert_eq!(names, vec!["main/a", "main/b"]);
        let mut streams = Vec::new();
        e.spec
            .visit_leaves(&mut |c| streams.extend(c.outputs.clone()));
        assert_eq!(streams, vec!["main/s"]);
    }

    #[test]
    fn call_expands_with_private_locals() {
        let e = compile(
            r#"<xspcl>
                 <procedure name="main">
                   <stream name="in"/><stream name="out1"/><stream name="out2"/>
                   <body>
                     <component name="g" class="src"><out stream="in"/></component>
                     <call procedure="stage">
                       <bind formal="x" stream="in"/><bind formal="y" stream="out1"/>
                     </call>
                     <call procedure="stage">
                       <bind formal="x" stream="in"/><bind formal="y" stream="out2"/>
                     </call>
                     <component name="k1" class="sink"><in stream="out1"/></component>
                     <component name="k2" class="sink"><in stream="out2"/></component>
                   </body>
                 </procedure>
                 <procedure name="stage">
                   <formalstream name="x"/><formalstream name="y"/>
                   <stream name="tmp"/>
                   <body>
                     <component name="f" class="work"><in stream="x"/><out stream="tmp"/></component>
                     <component name="g" class="work"><in stream="tmp"/><out stream="y"/></component>
                   </body>
                 </procedure>
               </xspcl>"#,
        )
        .unwrap();
        // two expansions of 'stage' → 4 work components with distinct tmp streams
        assert_eq!(e.spec.leaf_count(), 7);
        let mut tmps = std::collections::HashSet::new();
        e.spec.visit_leaves(&mut |c| {
            for s in &c.outputs {
                if s.contains("tmp") {
                    tmps.insert(s.clone());
                }
            }
        });
        assert_eq!(
            tmps.len(),
            2,
            "each call instance has a private tmp: {tmps:?}"
        );
    }

    #[test]
    fn formals_substitute_into_params_and_n() {
        let e = compile(
            r#"<xspcl>
                 <procedure name="main">
                   <stream name="s"/><stream name="o"/>
                   <body>
                     <component name="g" class="src"><out stream="s"/></component>
                     <call procedure="p">
                       <bind formal="x" stream="s"/><bind formal="y" stream="o"/>
                       <param name="n" value="6"/>
                     </call>
                     <component name="k" class="sink"><in stream="o"/></component>
                   </body>
                 </procedure>
                 <procedure name="p">
                   <formal name="n" default="2"/>
                   <formalstream name="x"/><formalstream name="y"/>
                   <body>
                     <parallel shape="slice" n="$n">
                       <parblock>
                         <component name="w" class="work">
                           <in stream="x"/><out stream="y"/>
                           <param name="copies" value="$n"/>
                         </component>
                       </parblock>
                     </parallel>
                   </body>
                 </procedure>
               </xspcl>"#,
        )
        .unwrap();
        fn find_slice(g: &GraphSpec) -> Option<usize> {
            match g {
                GraphSpec::Slice { n, .. } => Some(*n),
                GraphSpec::Seq(cs)
                | GraphSpec::Task(cs)
                | GraphSpec::CrossDep { blocks: cs, .. } => cs.iter().find_map(find_slice),
                GraphSpec::Managed { body, .. } | GraphSpec::Option { body, .. } => {
                    find_slice(body)
                }
                GraphSpec::Leaf(_) => None,
            }
        }
        assert_eq!(find_slice(&e.spec), Some(6));
    }

    #[test]
    fn manager_and_queue_wireup() {
        let e = compile(
            r#"<xspcl>
                 <queue name="mq"/>
                 <procedure name="main">
                   <stream name="s"/>
                   <body>
                     <manager name="m" queue="mq">
                       <on event="flip"><toggle option="extra"/></on>
                       <body>
                         <component name="a" class="src">
                           <out stream="s"/>
                           <param name="events" queue="mq"/>
                         </component>
                         <option name="extra" enabled="false">
                           <component name="x" class="sink"><in stream="s"/></component>
                         </option>
                       </body>
                     </manager>
                   </body>
                 </procedure>
               </xspcl>"#,
        )
        .unwrap();
        assert!(e.queues.contains_key("mq"));
        let GraphSpec::Managed { manager, .. } = &e.spec else {
            panic!("expected managed root")
        };
        assert_eq!(manager.rules.len(), 1);
        assert!(manager.queue.same_queue(&e.queues["mq"]));
    }

    #[test]
    fn unknown_class_is_an_error() {
        let err = compile(
            r#"<xspcl><procedure name="main"><stream name="s"/><body>
                 <component name="a" class="nope"><out stream="s"/></component>
               </body></procedure></xspcl>"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown component class"), "{err}");
    }

    #[test]
    fn stubbed_registry_accepts_any_class() {
        let doc = parse_and_validate(
            r#"<xspcl><procedure name="main"><stream name="s"/><body>
                 <component name="a" class="whatever"><out stream="s"/></component>
                 <component name="b" class="sink"><in stream="s"/></component>
               </body></procedure></xspcl>"#,
        )
        .unwrap();
        let e = elaborate(&doc, &ComponentRegistry::stubbed()).unwrap();
        assert_eq!(e.spec.leaf_count(), 2);
    }

    #[test]
    fn graph_level_errors_surface() {
        // two writers of the same stream → hinch validation error
        let err = compile(
            r#"<xspcl><procedure name="main"><stream name="s"/><body>
                 <parallel shape="task">
                   <parblock><component name="a" class="src"><out stream="s"/></component></parblock>
                   <parblock><component name="b" class="src"><out stream="s"/></component></parblock>
                 </parallel>
                 <component name="k" class="sink"><in stream="s"/></component>
               </body></procedure></xspcl>"#,
        )
        .unwrap_err();
        assert!(matches!(err, XspclError::Graph(_)), "{err}");
    }

    #[test]
    fn typed_values() {
        assert_eq!(typed_value("42"), ParamValue::Int(42));
        assert_eq!(typed_value("-3"), ParamValue::Int(-3));
        assert_eq!(typed_value("2.5"), ParamValue::Float(2.5));
        assert_eq!(typed_value("abc"), ParamValue::Str("abc".into()));
    }
}
