//! Errors for the XSPCL processing pipeline.

use crate::xml::{Span, XmlError};
use std::fmt;

/// Any error from parsing, validating or elaborating an XSPCL document.
#[derive(Debug, Clone, PartialEq)]
pub enum XspclError {
    /// Malformed XML.
    Xml(XmlError),
    /// Structurally invalid XSPCL (wrong tags/attributes).
    Parse { message: String, span: Span },
    /// Semantically invalid XSPCL.
    Semantic { message: String, span: Span },
    /// Elaboration failure (unknown class, unbound formal, ...).
    Elaborate { message: String, span: Span },
    /// The elaborated graph failed the run-time system's structural checks.
    Graph(hinch::HinchError),
}

impl XspclError {
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        XspclError::Parse {
            message: message.into(),
            span,
        }
    }

    pub fn semantic(message: impl Into<String>, span: Span) -> Self {
        XspclError::Semantic {
            message: message.into(),
            span,
        }
    }

    pub fn elaborate(message: impl Into<String>, span: Span) -> Self {
        XspclError::Elaborate {
            message: message.into(),
            span,
        }
    }
}

impl fmt::Display for XspclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XspclError::Xml(e) => write!(f, "{e}"),
            XspclError::Parse { message, span } => {
                write!(f, "XSPCL parse error at {span}: {message}")
            }
            XspclError::Semantic { message, span } => {
                write!(f, "XSPCL semantic error at {span}: {message}")
            }
            XspclError::Elaborate { message, span } => {
                write!(f, "XSPCL elaboration error at {span}: {message}")
            }
            XspclError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for XspclError {}

impl From<XmlError> for XspclError {
    fn from(e: XmlError) -> Self {
        XspclError::Xml(e)
    }
}

impl From<hinch::HinchError> for XspclError {
    fn from(e: hinch::HinchError) -> Self {
        XspclError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span() {
        let e = XspclError::semantic("duplicate procedure 'main'", Span { line: 7, col: 3 });
        assert_eq!(
            e.to_string(),
            "XSPCL semantic error at 7:3: duplicate procedure 'main'"
        );
    }
}
