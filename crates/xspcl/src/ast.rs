//! The XSPCL document model.
//!
//! A document declares event queues and procedures; the procedure named
//! `main` is the application root (§3.2). Statement sequences express
//! sequential composition; `parallel` groups carry one of the three shapes
//! of §3.3; managers and options carry the reconfiguration structure of
//! §3.4.

use crate::xml::Span;

/// A whole XSPCL document.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Declared event queues (application-global).
    pub queues: Vec<QueueDecl>,
    pub procedures: Vec<Procedure>,
}

impl Document {
    pub fn procedure(&self, name: &str) -> Option<&Procedure> {
        self.procedures.iter().find(|p| p.name == name)
    }

    pub fn main(&self) -> Option<&Procedure> {
        self.procedure("main")
    }
}

/// `<queue name="..."/>`
#[derive(Debug, Clone, PartialEq)]
pub struct QueueDecl {
    pub name: String,
    pub span: Span,
}

/// `<procedure name="...">` with formals, local streams and a body.
#[derive(Debug, Clone, PartialEq)]
pub struct Procedure {
    pub name: String,
    /// Value formals, substitutable as `$name` in attribute values.
    pub formals: Vec<Formal>,
    /// Formal streams, bound by `<bind>` at call sites.
    pub formal_streams: Vec<String>,
    /// Streams local to this procedure instance.
    pub streams: Vec<String>,
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// `<formal name="..." default="..."/>`
#[derive(Debug, Clone, PartialEq)]
pub struct Formal {
    pub name: String,
    pub default: Option<String>,
}

/// One statement in a body (sequential composition by position).
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Component(ComponentStmt),
    Call(CallStmt),
    Parallel(ParallelStmt),
    Manager(ManagerStmt),
    Option(OptionStmt),
}

impl Stmt {
    pub fn span(&self) -> Span {
        match self {
            Stmt::Component(s) => s.span,
            Stmt::Call(s) => s.span,
            Stmt::Parallel(s) => s.span,
            Stmt::Manager(s) => s.span,
            Stmt::Option(s) => s.span,
        }
    }
}

/// `<component name="..." class="...">` with ports and parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentStmt {
    pub name: String,
    pub class: String,
    /// `(port, stream)` in port order.
    pub inputs: Vec<(String, String)>,
    pub outputs: Vec<(String, String)>,
    /// `(name, value)`; values may reference formals with `$`.
    /// A parameter may instead name a queue: `<param name=".." queue=".."/>`.
    pub params: Vec<ParamStmt>,
    /// `<reconfig key="..." value="..."/>` requests delivered at creation.
    pub reconfigs: Vec<(String, String)>,
    pub span: Span,
}

/// A component/call parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamStmt {
    pub name: String,
    pub value: ParamKind,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ParamKind {
    /// `value="..."` — typed at elaboration (int / float / string).
    Value(String),
    /// `queue="..."` — resolves to an event-queue handle.
    Queue(String),
}

/// `<call procedure="...">` with stream bindings and actual parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CallStmt {
    pub procedure: String,
    /// `(formal stream, actual stream)`.
    pub binds: Vec<(String, String)>,
    pub params: Vec<ParamStmt>,
    pub span: Span,
}

/// The three shapes of `<parallel>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    Task,
    Slice,
    CrossDep,
}

impl Shape {
    pub fn as_str(&self) -> &'static str {
        match self {
            Shape::Task => "task",
            Shape::Slice => "slice",
            Shape::CrossDep => "crossdep",
        }
    }
}

/// `<parallel shape="..." n="..." name="...">` containing parblocks.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelStmt {
    pub name: String,
    pub shape: Shape,
    /// Replication count for slice/crossdep; may reference a formal.
    pub n: Option<String>,
    pub parblocks: Vec<Vec<Stmt>>,
    pub span: Span,
}

/// `<manager name="..." queue="...">` with rules and a managed body.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagerStmt {
    pub name: String,
    pub queue: String,
    pub rules: Vec<RuleStmt>,
    pub body: Vec<Stmt>,
    pub span: Span,
}

/// `<on event="...">` with actions.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleStmt {
    pub event: String,
    pub actions: Vec<ActionStmt>,
    pub span: Span,
}

/// A manager action.
#[derive(Debug, Clone, PartialEq)]
pub enum ActionStmt {
    Enable(String),
    Disable(String),
    Toggle(String),
    Forward(String),
    Broadcast(String),
}

/// `<option name="..." enabled="...">`.
#[derive(Debug, Clone, PartialEq)]
pub struct OptionStmt {
    pub name: String,
    pub enabled: bool,
    pub body: Vec<Stmt>,
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_lookup() {
        let doc = Document {
            queues: vec![],
            procedures: vec![Procedure {
                name: "main".into(),
                formals: vec![],
                formal_streams: vec![],
                streams: vec![],
                body: vec![],
                span: Span::UNKNOWN,
            }],
        };
        assert!(doc.main().is_some());
        assert!(doc.procedure("other").is_none());
    }

    #[test]
    fn shape_names() {
        assert_eq!(Shape::Task.as_str(), "task");
        assert_eq!(Shape::Slice.as_str(), "slice");
        assert_eq!(Shape::CrossDep.as_str(), "crossdep");
    }
}
