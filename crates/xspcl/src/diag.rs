//! Structured diagnostics with stable codes, spans and suggested fixes.
//!
//! Both the semantic validator ([`crate::validate::check_all`]) and the
//! static analyzer (`crates/analyze`) report through this type, so every
//! front-end — the `xspclc` CLI, CI, the apps' self-checks — sees the
//! same shape: a stable `XA0xx` code, a severity, the source span the
//! problem anchors to, the elaborated node it concerns (when known) and
//! a suggested fix. Rendering is either human-readable text or JSON
//! (hand-rolled: the workspace carries no serialization dependency).

use crate::xml::Span;
use std::fmt;

/// How bad a diagnostic is. Anything at [`Severity::Error`] means the
/// specification will misbehave at run time; [`Severity::Warning`] marks
/// dead or suspicious wiring that still executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: a stable code, severity, message and anchors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`XA001`, `XA090`, ...).
    pub code: &'static str,
    pub severity: Severity,
    pub message: String,
    /// Source position ([`Span::UNKNOWN`] when the construct has no
    /// textual anchor, e.g. a programmatically built graph).
    pub span: Span,
    /// Elaborated node or stream the diagnostic concerns, when known.
    pub node: Option<String>,
    /// A suggested fix, when one is obvious.
    pub fix: Option<String>,
}

impl Diagnostic {
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span: Span::UNKNOWN,
            node: None,
            fix: None,
        }
    }

    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    pub fn with_span(mut self, span: Span) -> Self {
        self.span = span;
        self
    }

    pub fn with_node(mut self, node: impl Into<String>) -> Self {
        self.node = Some(node.into());
        self
    }

    pub fn with_fix(mut self, fix: impl Into<String>) -> Self {
        self.fix = Some(fix.into());
        self
    }

    /// One human-readable line (plus an indented fix line when present).
    pub fn render_human(&self) -> String {
        let mut out = format!("{}[{}]", self.severity, self.code);
        if self.span != Span::UNKNOWN {
            out.push_str(&format!(" at {}", self.span));
        }
        out.push_str(&format!(": {}", self.message));
        if let Some(node) = &self.node {
            out.push_str(&format!(" [{node}]"));
        }
        if let Some(fix) = &self.fix {
            out.push_str(&format!("\n  fix: {fix}"));
        }
        out
    }

    /// One JSON object (no trailing newline).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":{}", json_string(self.code)));
        out.push_str(&format!(
            ",\"severity\":{}",
            json_string(&self.severity.to_string())
        ));
        out.push_str(&format!(",\"message\":{}", json_string(&self.message)));
        out.push_str(&format!(
            ",\"line\":{},\"col\":{}",
            self.span.line, self.span.col
        ));
        match &self.node {
            Some(n) => out.push_str(&format!(",\"node\":{}", json_string(n))),
            None => out.push_str(",\"node\":null"),
        }
        match &self.fix {
            Some(x) => out.push_str(&format!(",\"fix\":{}", json_string(x))),
            None => out.push_str(",\"fix\":null"),
        }
        out.push('}');
        out
    }
}

/// An ordered collection of diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    pub fn extend(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    pub fn first(&self) -> Option<&Diagnostic> {
        self.items.first()
    }

    /// Stable presentation order: by span, then code, then message.
    pub fn sort(&mut self) {
        self.items.sort_by(|a, b| {
            (a.span.line, a.span.col, a.code, &a.message).cmp(&(
                b.span.line,
                b.span.col,
                b.code,
                &b.message,
            ))
        });
    }

    /// Multi-line human-readable rendering with a trailing summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.items {
            out.push_str(&d.render_human());
            out.push('\n');
        }
        let errors = self
            .items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = self.items.len() - errors;
        out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
        out
    }

    /// The full report as one JSON object.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"diagnostics\":[");
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.render_json());
        }
        let errors = self
            .items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        out.push_str(&format!(
            "],\"errors\":{},\"warnings\":{}}}",
            errors,
            self.items.len() - errors
        ));
        out
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl From<Vec<Diagnostic>> for Diagnostics {
    fn from(items: Vec<Diagnostic>) -> Self {
        Diagnostics { items }
    }
}

/// Escape `s` as a JSON string literal (quotes included).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering_includes_code_span_and_fix() {
        let d = Diagnostic::error("XA001", "overlapping write regions")
            .with_span(Span { line: 4, col: 9 })
            .with_node("main/w#0")
            .with_fix("compose nested slice assignments");
        let s = d.render_human();
        assert!(s.contains("error[XA001] at 4:9"), "{s}");
        assert!(s.contains("[main/w#0]"), "{s}");
        assert!(s.contains("fix: compose"), "{s}");
    }

    #[test]
    fn unknown_span_is_omitted_from_human_output() {
        let d = Diagnostic::warning("XA010", "stream never read");
        assert_eq!(d.render_human(), "warning[XA010]: stream never read");
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::error("XA011", "two \"writers\"").with_span(Span { line: 1, col: 2 }));
        ds.push(Diagnostic::warning("XA012", "line\nbreak"));
        let j = ds.render_json();
        assert!(j.contains("\"two \\\"writers\\\"\""), "{j}");
        assert!(j.contains("\"line\\nbreak\""), "{j}");
        assert!(j.ends_with("\"errors\":1,\"warnings\":1}"), "{j}");
        assert!(ds.has_errors());
    }

    #[test]
    fn sort_orders_by_span_then_code() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::error("XA014", "b").with_span(Span { line: 9, col: 1 }));
        ds.push(Diagnostic::error("XA001", "a").with_span(Span { line: 2, col: 5 }));
        ds.sort();
        assert_eq!(ds.first().unwrap().code, "XA001");
    }
}
