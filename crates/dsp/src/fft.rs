//! Iterative radix-2 decimation-in-time FFT.
//!
//! Classic textbook structure: bit-reversal permutation followed by
//! `log₂ N` butterfly stages over precomputed twiddle factors. Enough for
//! a channelizing spectrometer; deliberately straightforward (the
//! simulation charges a documented cycle cost, so host speed is not the
//! point — determinism and correctness are).

use crate::complex::Complex32;

/// A planned FFT of fixed power-of-two size.
pub struct Fft {
    n: usize,
    /// Twiddles `e^{-2πik/N}` for `k < N/2`.
    twiddles: Vec<Complex32>,
    /// Bit-reversal permutation.
    rev: Vec<u32>,
}

impl Fft {
    /// Plan an FFT of size `n` (power of two, ≥ 2).
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "FFT size must be a power of two ≥ 2, got {n}"
        );
        let twiddles = (0..n / 2)
            .map(|k| Complex32::cis(-2.0 * std::f32::consts::PI * k as f32 / n as f32))
            .collect();
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        Self { n, twiddles, rev }
    }

    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward transform.
    pub fn forward(&self, data: &mut [Complex32]) {
        assert_eq!(data.len(), self.n);
        // bit-reversal permutation
        for i in 0..self.n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // butterflies
        let mut len = 2;
        while len <= self.n {
            let half = len / 2;
            let step = self.n / len;
            for start in (0..self.n).step_by(len) {
                for k in 0..half {
                    let w = self.twiddles[k * step];
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len *= 2;
        }
    }

    /// In-place inverse transform (including the 1/N normalization).
    pub fn inverse(&self, data: &mut [Complex32]) {
        for v in data.iter_mut() {
            *v = v.conj();
        }
        self.forward(data);
        let s = 1.0 / self.n as f32;
        for v in data.iter_mut() {
            *v = v.conj().scale(s);
        }
    }

    /// Butterfly count (`N/2 · log₂ N`), the unit of the FFT cost model.
    pub fn butterflies(&self) -> u64 {
        (self.n as u64 / 2) * self.n.trailing_zeros() as u64
    }
}

/// Naive DFT reference (tests only — O(N²)).
pub fn dft_reference(input: &[Complex32]) -> Vec<Complex32> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex32::ZERO;
            for (t, &x) in input.iter().enumerate() {
                let w = Complex32::cis(-2.0 * std::f32::consts::PI * (k * t) as f32 / n as f32);
                acc = acc + x * w;
            }
            acc
        })
        .collect()
}

/// A periodic Hann window of length `n`.
pub fn hann_window(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| 0.5 - 0.5 * (2.0 * std::f32::consts::PI * i as f32 / n as f32).cos())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex32, b: Complex32, eps: f32) -> bool {
        (a.re - b.re).abs() <= eps && (a.im - b.im).abs() <= eps
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 64] {
            let input: Vec<Complex32> = (0..n)
                .map(|i| Complex32::new(((i * 7) % 5) as f32 - 2.0, ((i * 3) % 4) as f32))
                .collect();
            let want = dft_reference(&input);
            let mut got = input.clone();
            Fft::new(n).forward(&mut got);
            for (g, w) in got.iter().zip(want.iter()) {
                assert!(close(*g, *w, 1e-3 * n as f32), "n={n}: {g:?} vs {w:?}");
            }
        }
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let n = 32;
        let mut data = vec![Complex32::ZERO; n];
        data[0] = Complex32::ONE;
        Fft::new(n).forward(&mut data);
        for v in &data {
            assert!(close(*v, Complex32::ONE, 1e-5));
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 128;
        let bin = 5;
        let mut data: Vec<Complex32> = (0..n)
            .map(|t| Complex32::cis(2.0 * std::f32::consts::PI * (bin * t) as f32 / n as f32))
            .collect();
        Fft::new(n).forward(&mut data);
        for (k, v) in data.iter().enumerate() {
            if k == bin {
                assert!((v.norm_sqr().sqrt() - n as f32).abs() < 1e-2);
            } else {
                assert!(v.norm_sqr().sqrt() < 1e-2, "leakage into bin {k}: {v:?}");
            }
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let n = 64;
        let input: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32).sin(), (i as f32 * 0.7).cos()))
            .collect();
        let mut data = input.clone();
        let fft = Fft::new(n);
        fft.forward(&mut data);
        fft.inverse(&mut data);
        for (g, w) in data.iter().zip(input.iter()) {
            assert!(close(*g, *w, 1e-4));
        }
    }

    #[test]
    fn parseval() {
        let n = 64;
        let input: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new(((i % 9) as f32) - 4.0, 0.0))
            .collect();
        let mut freq = input.clone();
        Fft::new(n).forward(&mut freq);
        let e_time: f32 = input.iter().map(|v| v.norm_sqr()).sum();
        let e_freq: f32 = freq.iter().map(|v| v.norm_sqr()).sum::<f32>() / n as f32;
        assert!((e_time - e_freq).abs() / e_time < 1e-4);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Fft::new(12);
    }

    #[test]
    fn butterfly_count() {
        assert_eq!(Fft::new(8).butterflies(), 4 * 3);
        assert_eq!(Fft::new(1024).butterflies(), 512 * 10);
    }

    #[test]
    fn hann_window_properties() {
        let w = hann_window(64);
        assert_eq!(w.len(), 64);
        assert!(w[0].abs() < 1e-6);
        assert!((w[32] - 1.0).abs() < 1e-6);
        // symmetric around the center (periodic Hann: w[i] == w[n-i])
        for i in 1..32 {
            assert!((w[i] - w[64 - i]).abs() < 1e-6);
        }
    }
}
