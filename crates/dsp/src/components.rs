//! Hinch components of a channelizing spectrometer.
//!
//! One iteration of the task graph processes one *block* of antenna data:
//! `B` spectra of `N` samples each. The FFT and power stages are
//! data-parallel over the `B` spectra of the block — the same slice
//! pattern the media apps use over image rows — and an integrator
//! accumulates the mean power spectrum across iterations.

use crate::complex::Complex32;
use crate::fft::{hann_window, Fft};
use crate::signal::AntennaSignal;
use hinch::component::{Component, ReconfigRequest, RunCtx, SliceAssign};
use hinch::sharedbuf::RegionBuf;
use parking_lot::Mutex;
use std::sync::Arc;

/// Cycles to ingest one sample (DMA from the capture buffer).
pub const CYC_SAMPLE_IN: u64 = 1;
/// Cycles per sample for windowing (load, multiply, store).
pub const CYC_WINDOW_PER_SAMPLE: u64 = 2;
/// Cycles per radix-2 butterfly (complex multiply-add pair).
pub const CYC_BUTTERFLY: u64 = 6;
/// Cycles per output bin of power detection (`re²+im²`).
pub const CYC_POWER_PER_BIN: u64 = 3;
/// Cycles per bin of spectrum integration.
pub const CYC_INTEGRATE_PER_BIN: u64 = 2;

/// Accumulated mean power spectrum (shared with the host).
pub type SpectrumAccum = Arc<Mutex<(Vec<f64>, u64)>>;

pub fn spectrum_accum(bins: usize) -> SpectrumAccum {
    Arc::new(Mutex::new((vec![0.0; bins], 0)))
}

/// Emits one block of `B·N` samples per iteration.
pub struct AntennaSource {
    signal: Arc<AntennaSignal>,
}

impl AntennaSource {
    pub fn new(signal: Arc<AntennaSignal>) -> Self {
        Self { signal }
    }
}

impl Component for AntennaSource {
    fn class(&self) -> &'static str {
        "antenna_source"
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>) {
        let b = ctx.iteration() as usize;
        let samples = self.signal.block(b);
        let buf = RegionBuf::from_vec("samples", samples.to_vec());
        ctx.touch(self.signal.read_access(b));
        ctx.touch(buf.access(0..buf.len(), hinch::meter::AccessKind::Write));
        ctx.charge(CYC_SAMPLE_IN * samples.len() as u64);
        ctx.write(0, buf);
    }
}

/// Window + FFT of each spectrum in the block; data-parallel over spectra.
///
/// Input: `RegionBuf<f32>` of `B·N` samples. Output: `RegionBuf<f32>` of
/// `B·N·2` interleaved complex values.
pub struct Channelize {
    fft: Fft,
    window: Vec<f32>,
    assign: SliceAssign,
}

impl Channelize {
    pub fn new(n: usize) -> Self {
        Self {
            fft: Fft::new(n),
            window: hann_window(n),
            assign: SliceAssign::WHOLE,
        }
    }
}

impl Component for Channelize {
    fn class(&self) -> &'static str {
        "channelize"
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>) {
        let input = ctx.read::<RegionBuf<f32>>(0);
        let n = self.fft.len();
        assert_eq!(input.len() % n, 0, "block must hold whole spectra");
        let spectra = input.len() / n;
        let out =
            ctx.write_shared::<RegionBuf<f32>, _>(0, || RegionBuf::new("spectra", spectra * n * 2));
        let range = self.assign.range(spectra);
        if range.is_empty() {
            return;
        }
        let mut work = vec![Complex32::ZERO; n];
        {
            let src = input.lease_read(range.start * n..range.end * n);
            let mut dst = out.lease_write(range.start * n * 2..range.end * n * 2);
            for (si, _) in range.clone().enumerate() {
                for (k, w) in work.iter_mut().enumerate() {
                    *w = Complex32::new(src[si * n + k] * self.window[k], 0.0);
                }
                self.fft.forward(&mut work);
                for (k, v) in work.iter().enumerate() {
                    dst[(si * n + k) * 2] = v.re;
                    dst[(si * n + k) * 2 + 1] = v.im;
                }
            }
        }
        let count = range.len() as u64;
        ctx.touch(input.access(
            range.start * n..range.end * n,
            hinch::meter::AccessKind::Read,
        ));
        ctx.touch(out.access(
            range.start * n * 2..range.end * n * 2,
            hinch::meter::AccessKind::Write,
        ));
        ctx.charge(
            count * (CYC_WINDOW_PER_SAMPLE * n as u64 + CYC_BUTTERFLY * self.fft.butterflies()),
        );
    }
    fn reconfigure(&mut self, req: &ReconfigRequest) {
        if let ReconfigRequest::Slice(a) = req {
            self.assign = *a;
        }
    }
}

/// `|X|²` of the lower half-spectrum; data-parallel over spectra.
///
/// Input: interleaved complex of `B·N·2`. Output: `RegionBuf<f32>` of
/// `B·(N/2)` power values.
pub struct PowerDetect {
    n: usize,
    assign: SliceAssign,
}

impl PowerDetect {
    pub fn new(n: usize) -> Self {
        Self {
            n,
            assign: SliceAssign::WHOLE,
        }
    }
}

impl Component for PowerDetect {
    fn class(&self) -> &'static str {
        "power_detect"
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>) {
        let input = ctx.read::<RegionBuf<f32>>(0);
        let n = self.n;
        let spectra = input.len() / (n * 2);
        let bins = n / 2;
        let out =
            ctx.write_shared::<RegionBuf<f32>, _>(0, || RegionBuf::new("power", spectra * bins));
        let range = self.assign.range(spectra);
        if range.is_empty() {
            return;
        }
        {
            let src = input.lease_read(range.start * n * 2..range.end * n * 2);
            let mut dst = out.lease_write(range.start * bins..range.end * bins);
            for (si, _) in range.clone().enumerate() {
                for k in 0..bins {
                    let re = src[(si * n + k) * 2];
                    let im = src[(si * n + k) * 2 + 1];
                    dst[si * bins + k] = re * re + im * im;
                }
            }
        }
        ctx.touch(input.access(
            range.start * n * 2..range.end * n * 2,
            hinch::meter::AccessKind::Read,
        ));
        ctx.touch(out.access(
            range.start * bins..range.end * bins,
            hinch::meter::AccessKind::Write,
        ));
        ctx.charge(range.len() as u64 * bins as u64 * CYC_POWER_PER_BIN);
    }
    fn reconfigure(&mut self, req: &ReconfigRequest) {
        if let ReconfigRequest::Slice(a) = req {
            self.assign = *a;
        }
    }
}

/// Sums the power blocks of several antennas element-wise (incoherent
/// combination).
pub struct CombinePower;

impl Component for CombinePower {
    fn class(&self) -> &'static str {
        "combine_power"
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>) {
        let first = ctx.read::<RegionBuf<f32>>(0);
        let len = first.len();
        let mut sum = first.snapshot();
        ctx.touch(first.access(0..len, hinch::meter::AccessKind::Read));
        for p in 1..ctx.num_inputs() {
            let other = ctx.read::<RegionBuf<f32>>(p);
            assert_eq!(other.len(), len, "antenna blocks must agree in shape");
            let data = other.lease_read_all();
            for (s, v) in sum.iter_mut().zip(data.iter()) {
                *s += v;
            }
            ctx.touch(other.access(0..len, hinch::meter::AccessKind::Read));
        }
        let out = RegionBuf::from_vec("combined", sum);
        ctx.touch(out.access(0..len, hinch::meter::AccessKind::Write));
        ctx.charge((ctx.num_inputs() as u64) * len as u64 * CYC_INTEGRATE_PER_BIN);
        ctx.write(0, out);
    }
}

/// Integrates the block's spectra into a running mean spectrum.
pub struct SpectrumIntegrator {
    bins: usize,
    accum: SpectrumAccum,
}

impl SpectrumIntegrator {
    pub fn new(bins: usize, accum: SpectrumAccum) -> Self {
        Self { bins, accum }
    }
}

impl Component for SpectrumIntegrator {
    fn class(&self) -> &'static str {
        "spectrum_integrator"
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>) {
        let input = ctx.read::<RegionBuf<f32>>(0);
        let bins = self.bins;
        assert_eq!(input.len() % bins, 0);
        let spectra = input.len() / bins;
        {
            let data = input.lease_read_all();
            let mut acc = self.accum.lock();
            for si in 0..spectra {
                for k in 0..bins {
                    acc.0[k] += data[si * bins + k] as f64;
                }
            }
            acc.1 += spectra as u64;
        }
        ctx.touch(input.access(0..input.len(), hinch::meter::AccessKind::Read));
        ctx.charge((spectra * bins) as u64 * CYC_INTEGRATE_PER_BIN);
    }
}

/// Mean spectrum from an accumulator.
pub fn mean_spectrum(accum: &SpectrumAccum) -> Vec<f64> {
    let acc = accum.lock();
    if acc.1 == 0 {
        return vec![0.0; acc.0.len()];
    }
    acc.0.iter().map(|v| v / acc.1 as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Tone;
    use hinch::meter::NullMeter;
    use hinch::stream::Stream;

    fn run_component(
        comp: &mut dyn Component,
        inputs: &[Arc<Stream>],
        outputs: &[Arc<Stream>],
        iter: u64,
    ) {
        let mut meter = NullMeter;
        let mut ctx = RunCtx::new(iter, inputs, outputs, &mut meter);
        comp.run(&mut ctx);
    }

    #[test]
    fn spectrometer_chain_finds_the_tone() {
        let n = 128;
        let spectra_per_block = 4;
        let bin = 16;
        let signal = Arc::new(AntennaSignal::generate(
            n * spectra_per_block,
            2,
            &[Tone {
                freq: bin as f32 / n as f32,
                amplitude: 2.0,
            }],
            0.05,
            77,
        ));
        let s_in = Stream::new("samples");
        let s_fft = Stream::new("spectra");
        let s_pow = Stream::new("power");
        let accum = spectrum_accum(n / 2);

        for iter in 0..2u64 {
            run_component(
                &mut AntennaSource::new(signal.clone()),
                &[],
                std::slice::from_ref(&s_in),
                iter,
            );
            // sliced channelize: 2 copies
            for i in 0..2 {
                let mut c = Channelize::new(n);
                c.reconfigure(&ReconfigRequest::Slice(SliceAssign { index: i, total: 2 }));
                run_component(
                    &mut c,
                    std::slice::from_ref(&s_in),
                    std::slice::from_ref(&s_fft),
                    iter,
                );
            }
            for i in 0..2 {
                let mut p = PowerDetect::new(n);
                p.reconfigure(&ReconfigRequest::Slice(SliceAssign { index: i, total: 2 }));
                run_component(
                    &mut p,
                    std::slice::from_ref(&s_fft),
                    std::slice::from_ref(&s_pow),
                    iter,
                );
            }
            run_component(
                &mut SpectrumIntegrator::new(n / 2, accum.clone()),
                std::slice::from_ref(&s_pow),
                &[],
                iter,
            );
            s_in.clear(iter);
            s_fft.clear(iter);
            s_pow.clear(iter);
        }

        let mean = mean_spectrum(&accum);
        assert_eq!(mean.len(), n / 2);
        let peak = mean
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, bin, "integrated spectrum must peak at the tone");
        // the peak clearly dominates the median bin
        let mut sorted = mean.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(mean[bin] > 20.0 * sorted[mean.len() / 2]);
    }

    #[test]
    fn combine_power_sums_antennas() {
        let a = Stream::new("a");
        let b = Stream::new("b");
        let out = Stream::new("o");
        a.write(0, Arc::new(RegionBuf::from_vec("a", vec![1.0f32, 2.0])));
        b.write(0, Arc::new(RegionBuf::from_vec("b", vec![10.0f32, 20.0])));
        run_component(&mut CombinePower, &[a, b], std::slice::from_ref(&out), 0);
        let sum = out.read_as::<RegionBuf<f32>>(0);
        assert_eq!(sum.snapshot(), vec![11.0, 22.0]);
    }

    #[test]
    fn integrator_counts_spectra() {
        let accum = spectrum_accum(2);
        let s = Stream::new("p");
        s.write(
            0,
            Arc::new(RegionBuf::from_vec("p", vec![1.0f32, 3.0, 5.0, 7.0])),
        );
        run_component(&mut SpectrumIntegrator::new(2, accum.clone()), &[s], &[], 0);
        // two spectra of two bins
        assert_eq!(mean_spectrum(&accum), vec![3.0, 5.0]);
    }
}
