//! # dsp — streaming signal processing for the HPC direction
//!
//! The paper closes (§6) by arguing that XSPCL extends beyond consumer
//! electronics to High Performance Computing streaming workloads, naming
//! radio astronomy: *"Modern radio telescopes produce huge data streams
//! (>100Gb/s) and require compute power in the order of teraflops."*
//! This crate provides the substrate for that workload, built from
//! scratch like the rest of the repository:
//!
//! * [`complex`] — a minimal `Complex32`;
//! * [`fft`] — an iterative radix-2 decimation-in-time FFT with
//!   precomputed twiddles (tested against a naive DFT and by
//!   round-tripping);
//! * [`signal`] — deterministic synthetic antenna data: tones buried in
//!   seeded noise;
//! * [`components`] — the Hinch components of a channelizing
//!   spectrometer: antenna source → window+FFT (data-parallel over the
//!   batch of spectra) → power detection → spectrum integration — the
//!   classic first stages of a radio-telescope correlator.
//!
//! The `apps::telescope` application assembles these through XSPCL; the
//! `radio_telescope` example runs it end-to-end.

pub mod complex;
pub mod components;
pub mod fft;
pub mod signal;

pub use complex::Complex32;
pub use fft::Fft;
pub use signal::AntennaSignal;
