//! Deterministic synthetic antenna data.
//!
//! A radio-telescope front end digitizes band-limited noise containing a
//! few narrow-band sources (and man-made interference). The generator
//! mixes seeded Gaussian-ish noise with a handful of tones so the
//! spectrometer downstream has real peaks to find — deterministically,
//! like every other input in this repository.

use hinch::meter::{sim_alloc, AccessKind, MemAccess};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A tone injected into the band.
#[derive(Debug, Clone, Copy)]
pub struct Tone {
    /// Frequency as a fraction of the sample rate (0..0.5).
    pub freq: f32,
    pub amplitude: f32,
}

/// A synthetic antenna recording: `blocks` blocks of `block_len` samples.
pub struct AntennaSignal {
    pub block_len: usize,
    samples: Vec<Vec<f32>>,
    sim_base: u64,
}

impl AntennaSignal {
    /// Generate `blocks` blocks of `block_len` samples containing `tones`
    /// over noise of the given amplitude.
    pub fn generate(
        block_len: usize,
        blocks: usize,
        tones: &[Tone],
        noise: f32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t_global = 0usize;
        let samples = (0..blocks)
            .map(|_| {
                (0..block_len)
                    .map(|_| {
                        let t = t_global as f32;
                        t_global += 1;
                        let mut v = 0.0f32;
                        for tone in tones {
                            v +=
                                tone.amplitude * (2.0 * std::f32::consts::PI * tone.freq * t).sin();
                        }
                        // cheap approximate Gaussian: sum of uniforms
                        let n: f32 = (0..4).map(|_| rng.gen_range(-0.5f32..0.5)).sum();
                        v + noise * n
                    })
                    .collect()
            })
            .collect();
        let bytes = (blocks * block_len * 4) as u64;
        Self {
            block_len,
            samples,
            sim_base: sim_alloc(bytes),
        }
    }

    pub fn blocks(&self) -> usize {
        self.samples.len()
    }

    /// Samples of block `b` (wraps around).
    pub fn block(&self, b: usize) -> &[f32] {
        &self.samples[b % self.samples.len()]
    }

    /// The sweep of reading block `b` from the capture buffer.
    pub fn read_access(&self, b: usize) -> MemAccess {
        let b = b % self.samples.len();
        MemAccess {
            base: self.sim_base + (b * self.block_len * 4) as u64,
            len: (self.block_len * 4) as u64,
            kind: AccessKind::Read,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let t = [Tone {
            freq: 0.1,
            amplitude: 1.0,
        }];
        let a = AntennaSignal::generate(256, 3, &t, 0.2, 9);
        let b = AntennaSignal::generate(256, 3, &t, 0.2, 9);
        for i in 0..3 {
            assert_eq!(a.block(i), b.block(i));
        }
    }

    #[test]
    fn blocks_wrap() {
        let s = AntennaSignal::generate(64, 2, &[], 1.0, 3);
        assert_eq!(s.block(0), s.block(2));
    }

    #[test]
    fn tone_dominates_noise_in_its_bin() {
        use crate::complex::Complex32;
        use crate::fft::Fft;
        let n = 256;
        let bin = 32; // freq = 32/256 = 0.125
        let s = AntennaSignal::generate(
            n,
            1,
            &[Tone {
                freq: bin as f32 / n as f32,
                amplitude: 2.0,
            }],
            0.1,
            1,
        );
        let mut data: Vec<Complex32> = s.block(0).iter().map(|&v| Complex32::new(v, 0.0)).collect();
        Fft::new(n).forward(&mut data);
        let power: Vec<f32> = data[..n / 2].iter().map(|v| v.norm_sqr()).collect();
        let peak = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, bin, "the injected tone must be the strongest bin");
    }

    #[test]
    fn phase_continuity_across_blocks() {
        // the generator advances global time, so a tone is phase-coherent
        // from block to block (no spectral splatter at block boundaries)
        let freq = 0.25f32; // period of 4 samples
        let s = AntennaSignal::generate(
            8,
            2,
            &[Tone {
                freq,
                amplitude: 1.0,
            }],
            0.0,
            0,
        );
        // sample 8 (start of block 1) continues the sine from sample 7
        let expected = (2.0 * std::f32::consts::PI * freq * 8.0).sin();
        assert!((s.block(1)[0] - expected).abs() < 1e-5);
    }
}
