//! A minimal single-precision complex number (no external crates).

use std::ops::{Add, Mul, Sub};

/// `re + i·im`, single precision.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex32 {
    pub re: f32,
    pub im: f32,
}

impl Complex32 {
    pub const ZERO: Complex32 = Complex32 { re: 0.0, im: 0.0 };
    pub const ONE: Complex32 = Complex32 { re: 1.0, im: 0.0 };

    pub fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f32) -> Self {
        Self {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    pub fn scale(self, s: f32) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex32 {
    type Output = Complex32;
    fn add(self, o: Complex32) -> Complex32 {
        Complex32 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
}

impl Sub for Complex32 {
    type Output = Complex32;
    fn sub(self, o: Complex32) -> Complex32 {
        Complex32 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
}

impl Mul for Complex32 {
    type Output = Complex32;
    fn mul(self, o: Complex32) -> Complex32 {
        Complex32 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Complex32::new(1.0, 2.0);
        let b = Complex32::new(3.0, -1.0);
        assert_eq!(a + b, Complex32::new(4.0, 1.0));
        assert_eq!(a - b, Complex32::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex32::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex32::new(1.0, -2.0));
        assert_eq!(a.norm_sqr(), 5.0);
    }

    #[test]
    fn cis_is_on_the_unit_circle() {
        for k in 0..8 {
            let c = Complex32::cis(k as f32 * std::f32::consts::FRAC_PI_4);
            assert!((c.norm_sqr() - 1.0).abs() < 1e-6);
        }
        let i = Complex32::cis(std::f32::consts::FRAC_PI_2);
        assert!(i.re.abs() < 1e-6 && (i.im - 1.0).abs() < 1e-6);
    }
}
