//! Golden tests: one bad spec per diagnostic code.
//!
//! Each `tests/fixtures/<name>.xml` is analyzed and its human-readable
//! report compared byte-for-byte against `<name>.golden`. Regenerate the
//! goldens after an intentional output change with
//!
//! ```sh
//! BLESS_FIXTURES=1 cargo test -p analyze --test fixtures
//! ```

use analyze::AnalyzeOptions;
use std::fs;
use std::path::PathBuf;

/// (fixture stem, code that must appear, analyze under legacy slice semantics)
const FIXTURES: &[(&str, &str, bool)] = &[
    ("xa001_nested_slice_overlap", "XA001", true),
    ("xa002_backward_seq_read", "XA002", false),
    ("xa003_task_sibling_race", "XA003", false),
    ("xa010_dead_stream", "XA010", false),
    ("xa011_double_writer", "XA011", false),
    ("xa012_queue_wiring", "XA012", false),
    ("xa013_untargeted_option", "XA013", false),
    ("xa014_writerless_stream", "XA014", false),
    ("xa020_orphaned_reader", "XA020", false),
    ("xa090_semantic_errors", "XA090", false),
    ("xa091_zero_width_slice", "XA091", false),
    ("xa099_duplicate_option", "XA099", false),
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn analyze_fixture(stem: &str, legacy: bool) -> analyze::Diagnostics {
    let source = fs::read_to_string(fixture_dir().join(format!("{stem}.xml")))
        .unwrap_or_else(|e| panic!("{stem}: read fixture: {e}"));
    let opts = AnalyzeOptions {
        legacy_uncomposed_slices: legacy,
    };
    analyze::check_source(&source, &opts).unwrap_or_else(|e| panic!("{stem}: unreadable: {e}"))
}

#[test]
fn every_fixture_matches_its_golden_report() {
    let bless = std::env::var_os("BLESS_FIXTURES").is_some();
    let mut failures = Vec::new();
    for &(stem, code, legacy) in FIXTURES {
        let diags = analyze_fixture(stem, legacy);
        assert!(
            diags.iter().any(|d| d.code == code),
            "{stem}: expected {code}, got:\n{}",
            diags.render_human()
        );
        let got = diags.render_human();
        let golden_path = fixture_dir().join(format!("{stem}.golden"));
        if bless {
            fs::write(&golden_path, &got).unwrap();
            continue;
        }
        let want = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!("{stem}: missing golden ({e}); bless with BLESS_FIXTURES=1")
        });
        if got != want {
            failures.push(format!("{stem}:\n--- golden\n{want}--- got\n{got}"));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn nested_slices_are_clean_under_composed_semantics() {
    // the XA001 fixture only overlaps under the historic uncomposed
    // replication; the shipped (fixed) semantics prove disjointness
    let diags = analyze_fixture("xa001_nested_slice_overlap", false);
    assert!(diags.is_empty(), "{}", diags.render_human());
}

#[test]
fn fixture_diagnostics_carry_spans_and_json() {
    let diags = analyze_fixture("xa002_backward_seq_read", false);
    let d = diags.iter().find(|d| d.code == "XA002").unwrap();
    assert_ne!(d.span, xspcl::xml::Span::UNKNOWN, "cycle has a source span");
    let json = diags.render_json();
    assert!(json.contains("\"code\":\"XA002\""), "{json}");
}
