//! # Static analysis for XSPCL graphs
//!
//! This crate proves properties of an application *before* it runs: that
//! slice copies write disjoint regions of their shared buffers, that no
//! stream is read before scheduling order can have produced it, that
//! wiring is sound (every stream has a writer and a reader, every posted
//! queue a poller), and that no reachable reconfiguration strands a live
//! stream endpoint.
//!
//! Every finding is a [`Diagnostic`] with a stable code:
//!
//! | code  | severity | analysis |
//! |-------|----------|----------|
//! | XA001 | error    | overlapping slice/crossdep write regions ([`overlap`]) |
//! | XA002 | error    | stream-dependency cycle ([`cycle`]) |
//! | XA003 | error    | unordered read of a task sibling's stream ([`cycle`]) |
//! | XA010 | warning  | stream written but never read ([`wiring`]) |
//! | XA011 | error    | multiple simultaneously-live writers ([`wiring`]) |
//! | XA012 | warning  | queue posted-but-unpolled / declared-but-unused ([`wiring`]) |
//! | XA013 | warning  | option no manager rule ever targets ([`wiring`]) |
//! | XA014 | error    | stream read but never written ([`wiring`]) |
//! | XA020 | error    | reconfiguration orphans or races a live stream ([`quiesce`]) |
//! | XA090 | error    | document-level semantic error ([`xspcl::validate::check_all`]) |
//! | XA091 | error    | elaboration failure |
//! | XA099 | error    | residual structural error from the runtime's validator |
//!
//! Entry points: [`check_source`] for XSPCL text (what `xspclc analyze`
//! runs), [`check_app`] for an elaborated application (what the apps
//! crate self-checks), [`check_spec`] for programmatic graphs (no spans).

pub mod cycle;
pub mod model;
pub mod overlap;
pub mod quiesce;
pub mod wiring;

use hinch::error::HinchError;
use hinch::graph::GraphSpec;
use std::collections::HashMap;
use xspcl::xml::Span;
use xspcl::XspclError;

pub use xspcl::{Diagnostic, Diagnostics, Elaborated, Severity};

pub const ELABORATION: &str = "XA091";
pub const RESIDUAL: &str = "XA099";

/// Knobs for the analysis.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// Model the pre-fix replication semantics in which nested slice
    /// assignments were *not* composed across nesting levels (every level
    /// restarted at `index = i, total = n`). Used to demonstrate that the
    /// region-overlap analysis rejects the historic overlapping-lease bug.
    pub legacy_uncomposed_slices: bool,
}

/// Analyze an elaborated application with default options. This is what
/// the apps crate runs over every registered application.
pub fn check_app(e: &Elaborated) -> Diagnostics {
    check_elaborated(e, &AnalyzeOptions::default())
}

/// Analyze an elaborated application.
pub fn check_elaborated(e: &Elaborated, opts: &AnalyzeOptions) -> Diagnostics {
    let declared: Vec<String> = e.queues.keys().cloned().collect();
    analyze_graph(&e.spec, &e.spans, Some(&declared), opts)
}

/// Analyze a programmatically built graph (no source spans, no queue
/// declarations).
pub fn check_spec(spec: &GraphSpec) -> Diagnostics {
    analyze_graph(spec, &HashMap::new(), None, &AnalyzeOptions::default())
}

/// Parse, validate and analyze XSPCL source. Unreadable documents (XML
/// or grammar errors) are `Err`; everything after parsing is reported as
/// diagnostics — semantic errors (XA090) short-circuit elaboration, an
/// elaboration failure becomes XA091, and an elaborated graph gets the
/// full graph analysis.
pub fn check_source(source: &str, opts: &AnalyzeOptions) -> Result<Diagnostics, XspclError> {
    let root = xspcl::xml::parse(source).map_err(XspclError::from)?;
    let doc = xspcl::parse::document(&root)?;
    let mut semantic = xspcl::validate::check_all(&doc);
    if !semantic.is_empty() {
        semantic.sort();
        return Ok(semantic);
    }
    let e = match xspcl::elaborate_unchecked(&doc, &xspcl::ComponentRegistry::stubbed()) {
        Ok(e) => e,
        Err(err) => {
            let mut diags = Diagnostics::new();
            diags.push(Diagnostic::error(ELABORATION, err.to_string()));
            return Ok(diags);
        }
    };
    Ok(check_elaborated(&e, opts))
}

fn analyze_graph(
    spec: &GraphSpec,
    spans: &HashMap<String, Span>,
    declared_queues: Option<&[String]>,
    opts: &AnalyzeOptions,
) -> Diagnostics {
    let model = model::build(spec);
    let mut items: Vec<Diagnostic> = Vec::new();
    items.extend(wiring::check(&model, spans, declared_queues));
    items.extend(cycle::check(&model, spans));
    items.extend(overlap::check(spec, spans, opts));
    items.extend(quiesce::check(&model, spans));
    // residual structural rules the runtime enforces that none of the
    // passes above subsume (empty graphs, zero-width groups, options in
    // slices, unknown/duplicate options)
    match spec.validate() {
        Ok(()) | Err(HinchError::MultipleWriters { .. }) | Err(HinchError::NoWriter { .. }) => {}
        Err(other) => items.push(Diagnostic::error(RESIDUAL, other.to_string())),
    }
    let mut diags = Diagnostics::from(items);
    diags.sort();
    diags
}

#[cfg(test)]
pub mod testutil {
    //! Leaf constructors for analysis tests: the factories build inert
    //! components, since analysis never runs them.

    use hinch::component::{Component, Params, RunCtx};
    use hinch::event::EventQueue;
    use hinch::graph::{factory, ComponentSpec, GraphSpec};

    struct Inert;
    impl Component for Inert {
        fn class(&self) -> &'static str {
            "inert"
        }
        fn run(&mut self, _ctx: &mut RunCtx<'_>) {}
    }

    fn spec(name: &str, inputs: &[&str], outputs: &[&str], params: Params) -> ComponentSpec {
        let mut c = ComponentSpec::new(name, "inert", factory(|_p| Box::new(Inert), Params::new()))
            .with_params(params);
        for i in inputs {
            c = c.input(*i);
        }
        for o in outputs {
            c = c.output(*o);
        }
        c
    }

    pub fn leaf(name: &str, inputs: &[&str], outputs: &[&str]) -> GraphSpec {
        GraphSpec::Leaf(spec(name, inputs, outputs, Params::new()))
    }

    /// A leaf holding a queue handle parameter (it may post events there).
    pub fn leaf_with_queue(
        name: &str,
        inputs: &[&str],
        outputs: &[&str],
        queue: &str,
    ) -> GraphSpec {
        let params = Params::new().set("queue", EventQueue::new(queue));
        GraphSpec::Leaf(spec(name, inputs, outputs, params))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::leaf;

    #[test]
    fn clean_pipeline_has_no_diagnostics() {
        let g = GraphSpec::seq(vec![
            leaf("src", &[], &["a"]),
            GraphSpec::slice("sl", 4, leaf("work", &["a"], &["b"])),
            leaf("snk", &["b"], &[]),
        ]);
        let diags = check_spec(&g);
        assert!(diags.is_empty(), "{}", diags.render_human());
    }

    #[test]
    fn residual_structural_errors_surface_as_xa099() {
        let g = GraphSpec::slice("sl", 0, leaf("x", &[], &["s"]));
        let diags = check_spec(&g);
        assert!(
            diags.iter().any(|d| d.code == RESIDUAL),
            "{}",
            diags.render_human()
        );
    }

    #[test]
    fn check_source_reports_all_semantic_errors() {
        let diags = check_source(
            r#"<xspcl><procedure name="main"><body>
                 <component name="a" class="x"><out stream="ghost"/></component>
                 <option name="o"/>
               </body></procedure></xspcl>"#,
            &AnalyzeOptions::default(),
        )
        .unwrap();
        assert_eq!(diags.len(), 2, "{}", diags.render_human());
        assert!(diags.iter().all(|d| d.code == "XA090"));
    }

    #[test]
    fn check_source_runs_graph_analyses() {
        // reader before writer in a seq body: deadlock cycle
        let diags = check_source(
            r#"<xspcl><procedure name="main">
                 <stream name="s"/><stream name="t"/>
                 <body>
                   <component name="r" class="x"><in stream="s"/><out stream="t"/></component>
                   <component name="w" class="y"><out stream="s"/></component>
                 </body>
               </procedure></xspcl>"#,
            &AnalyzeOptions::default(),
        )
        .unwrap();
        assert!(
            diags.iter().any(|d| d.code == cycle::CYCLE),
            "{}",
            diags.render_human()
        );
        // the dead stream 't' also warns
        assert!(
            diags.iter().any(|d| d.code == wiring::DEAD_STREAM),
            "{}",
            diags.render_human()
        );
        // spans point into the source
        let c = diags.iter().find(|d| d.code == cycle::CYCLE).unwrap();
        assert_ne!(c.span, Span::UNKNOWN);
    }

    #[test]
    fn check_source_rejects_malformed_xml() {
        assert!(check_source("<xspcl", &AnalyzeOptions::default()).is_err());
    }
}
