//! `xspclc` — the XSPCL processing tool.
//!
//! Converts an XSPCL specification into artifacts and reports:
//!
//! ```text
//! xspclc check   app.xml            validate, print a summary
//! xspclc dot     app.xml [out.dot]  elaborated topology as Graphviz DOT
//! xspclc rust    app.xml [out.rs]   Rust glue source (the paper's C glue)
//! xspclc format  app.xml            pretty-print the document
//! xspclc analyze app.xml [--format json|human] [--legacy-slices]
//!                                   static analysis (XA0xx diagnostics)
//! ```
//!
//! `--analyze` is accepted as an alias for the `analyze` command. The
//! analyze mode exits 0 when the specification is clean, 1 when any
//! diagnostic (warning or error) is reported.
//!
//! Component classes are resolved against a stub registry — the tool
//! analyzes structure; linking real factories happens in the application
//! build (see the `apps` crate).

use analyze::AnalyzeOptions;
use std::process::ExitCode;
use xspcl::elaborate::ComponentRegistry;

const USAGE: &str = "usage: xspclc <check|dot|rust|format> <file.xml> [output]\n\
       xspclc analyze <file.xml> [--format json|human] [--legacy-slices]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") | Some("--analyze") => main_analyze(&args[1..]),
        _ => main_convert(&args),
    }
}

fn main_analyze(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut format = "human".to_string();
    let mut opts = AnalyzeOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(f) if f == "json" || f == "human" => format = f.clone(),
                _ => {
                    eprintln!("xspclc: --format takes 'json' or 'human'");
                    return ExitCode::from(2);
                }
            },
            "--legacy-slices" => opts.legacy_uncomposed_slices = true,
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("xspclc: unexpected argument '{other}'\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xspclc: cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    match run_analyze(&source, &format, &opts) {
        Ok((report, clean)) => {
            print!("{report}");
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(message) => {
            eprintln!("xspclc: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Returns the rendered report plus whether the spec was clean.
fn run_analyze(
    source: &str,
    format: &str,
    opts: &AnalyzeOptions,
) -> Result<(String, bool), String> {
    let diags = analyze::check_source(source, opts).map_err(|e| e.to_string())?;
    let clean = diags.is_empty();
    let report = match format {
        "json" => {
            let mut j = diags.render_json();
            j.push('\n');
            j
        }
        _ => {
            if clean {
                "ok: no diagnostics\n".to_string()
            } else {
                diags.render_human()
            }
        }
    };
    Ok((report, clean))
}

fn main_convert(args: &[String]) -> ExitCode {
    let (cmd, path, out_path) = match args {
        [cmd, path] => (cmd.as_str(), path.as_str(), None),
        [cmd, path, out] => (cmd.as_str(), path.as_str(), Some(out.as_str())),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xspclc: cannot read '{path}': {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = run(cmd, &source);
    match result {
        Ok(output) => {
            match out_path {
                Some(out) => {
                    if let Err(e) = std::fs::write(out, output) {
                        eprintln!("xspclc: cannot write '{out}': {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("xspclc: wrote {out}");
                }
                None => print!("{output}"),
            }
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("xspclc: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: &str, source: &str) -> Result<String, String> {
    let doc = xspcl::parse_and_validate(source).map_err(|e| e.to_string())?;
    match cmd {
        "check" => {
            let e =
                xspcl::elaborate(&doc, &ComponentRegistry::stubbed()).map_err(|e| e.to_string())?;
            let mut classes = std::collections::BTreeSet::new();
            e.spec.visit_leaves(&mut |c| {
                classes.insert(c.class.clone());
            });
            Ok(format!(
                "ok: {} procedures, {} queues, {} component instances, {} classes: {}\n",
                doc.procedures.len(),
                e.queues.len(),
                e.spec.leaf_count(),
                classes.len(),
                classes.into_iter().collect::<Vec<_>>().join(", ")
            ))
        }
        "dot" => {
            let e =
                xspcl::elaborate(&doc, &ComponentRegistry::stubbed()).map_err(|e| e.to_string())?;
            Ok(xspcl::codegen::to_dot(&e.spec))
        }
        "rust" => {
            let e =
                xspcl::elaborate(&doc, &ComponentRegistry::stubbed()).map_err(|e| e.to_string())?;
            let queues: Vec<String> = e.queues.keys().cloned().collect();
            Ok(xspcl::codegen::emit_rust(&e.spec, &queues))
        }
        "format" => Ok(xspcl::codegen::to_xml(&doc)),
        other => Err(format!(
            "unknown command '{other}' (check|dot|rust|format|analyze)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::{run, run_analyze};
    use analyze::AnalyzeOptions;

    const SAMPLE: &str = r#"<xspcl>
      <queue name="mq"/>
      <procedure name="main">
        <stream name="s"/>
        <body>
          <manager name="m" queue="mq">
            <on event="t"><toggle option="o"/></on>
            <body>
              <component name="a" class="source"><out port="o" stream="s"/></component>
              <option name="o" enabled="true">
                <component name="b" class="sink"><in port="i" stream="s"/></component>
              </option>
            </body>
          </manager>
        </body>
      </procedure>
    </xspcl>"#;

    #[test]
    fn check_reports_summary() {
        let out = run("check", SAMPLE).unwrap();
        assert!(out.contains("1 procedures"), "{out}");
        assert!(out.contains("1 queues"), "{out}");
        assert!(out.contains("2 component instances"), "{out}");
        assert!(out.contains("sink, source"), "{out}");
    }

    #[test]
    fn dot_emits_graphviz() {
        let out = run("dot", SAMPLE).unwrap();
        assert!(out.starts_with("digraph"));
        assert!(out.contains("main/a"));
    }

    #[test]
    fn rust_emits_glue() {
        let out = run("rust", SAMPLE).unwrap();
        assert!(out.contains("pub fn build"));
        assert!(out.contains("ManagerSpec::new"));
        assert!(out.contains("GraphSpec::option(\"o\", true"));
    }

    #[test]
    fn format_round_trips() {
        let formatted = run("format", SAMPLE).unwrap();
        let again = run("format", &formatted).unwrap();
        assert_eq!(formatted, again, "formatting must be idempotent");
    }

    #[test]
    fn errors_are_reported_with_location() {
        let err = run(
            "check",
            "<xspcl><procedure name=\"main\"><body><widget/></body></procedure></xspcl>",
        )
        .unwrap_err();
        assert!(err.contains("unexpected <widget>"), "{err}");
        let err = run("nope", SAMPLE).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
    }

    #[test]
    fn analyze_reports_clean_sample() {
        let (report, clean) = run_analyze(SAMPLE, "human", &AnalyzeOptions::default()).unwrap();
        assert!(clean, "{report}");
        assert!(report.contains("no diagnostics"), "{report}");
    }

    #[test]
    fn analyze_renders_json_diagnostics() {
        // option 'o' never targeted + stream 's' read by nobody when 'o'
        // is disabled? — here: remove the rule so XA013 fires
        let src = SAMPLE.replace("<on event=\"t\"><toggle option=\"o\"/></on>", "");
        let (report, clean) = run_analyze(&src, "json", &AnalyzeOptions::default()).unwrap();
        assert!(!clean, "{report}");
        assert!(report.contains("\"code\":\"XA013\""), "{report}");
        assert!(report.contains("\"errors\":0"), "{report}");
        assert!(report.trim_end().ends_with('}'), "{report}");
    }
}
