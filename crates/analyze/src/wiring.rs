//! Wiring lints: XA010 (dead stream), XA011 (multiple writers), XA012
//! (queue wiring), XA013 (untargeted option), XA014 (writerless stream).

use crate::model::Model;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use xspcl::xml::Span;
use xspcl::Diagnostic;

pub const DEAD_STREAM: &str = "XA010";
pub const MULTIPLE_WRITERS: &str = "XA011";
pub const QUEUE_WIRING: &str = "XA012";
pub const UNTARGETED_OPTION: &str = "XA013";
pub const NO_WRITER: &str = "XA014";

/// `declared_queues` is the set of queues the XSPCL document declares
/// (`None` for programmatic graphs, which have no declarations to check).
pub fn check(
    model: &Model,
    spans: &HashMap<String, Span>,
    declared_queues: Option<&[String]>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // stream accounting at spec level, mirroring the runtime's writer rule
    let mut writers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut readers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, l) in model.leaves.iter().enumerate() {
        for s in &l.outputs {
            writers.entry(s).or_default().push(i);
        }
        for s in &l.inputs {
            readers.entry(s).or_default().push(i);
        }
    }

    for (stream, ws) in &writers {
        let outside = ws
            .iter()
            .filter(|&&w| model.leaves[w].option_path.is_empty())
            .count();
        if outside > 1 || (outside == 1 && ws.len() > 1) {
            let first = &model.leaves[ws[0]];
            let names: Vec<&str> = ws.iter().map(|&w| model.leaves[w].name.as_str()).collect();
            diags.push(
                with_span(
                    Diagnostic::error(
                        MULTIPLE_WRITERS,
                        format!(
                            "stream '{stream}' has multiple writers that can be live together: {}",
                            names.join(", ")
                        ),
                    ),
                    spans,
                    &first.name,
                )
                .with_node(first.name.clone())
                .with_fix(
                    "give each writer its own stream, or make the writers mutually exclusive \
                     options",
                ),
            );
        }
        if !readers.contains_key(stream) {
            let first = &model.leaves[ws[0]];
            diags.push(
                with_span(
                    Diagnostic::warning(
                        DEAD_STREAM,
                        format!(
                            "stream '{stream}' is written by '{}' but never read",
                            first.name
                        ),
                    ),
                    spans,
                    &first.name,
                )
                .with_node(first.name.clone())
                .with_fix("remove the dead output, or connect a reader"),
            );
        }
    }
    for (stream, rs) in &readers {
        if !writers.contains_key(stream) {
            let first = &model.leaves[rs[0]];
            diags.push(
                with_span(
                    Diagnostic::error(
                        NO_WRITER,
                        format!(
                            "component '{}' reads stream '{stream}' which no component writes",
                            first.name
                        ),
                    ),
                    spans,
                    &first.name,
                )
                .with_node(first.name.clone()),
            );
        }
    }

    // queue wiring: who can post, who polls
    let polled: BTreeSet<&str> = model.managers.iter().map(|m| m.queue.as_str()).collect();
    let mut posters: BTreeMap<&str, &str> = BTreeMap::new(); // queue -> first poster
    for l in &model.leaves {
        for q in &l.queue_params {
            posters.entry(q).or_insert(&l.name);
        }
    }
    for m in &model.managers {
        for r in &m.rules {
            for a in &r.actions {
                if let crate::model::ActionInfo::Forward(q) = a {
                    posters.entry(q).or_insert(&m.name);
                }
            }
        }
    }
    for (queue, poster) in &posters {
        if !polled.contains(queue) {
            diags.push(
                with_span(
                    Diagnostic::warning(
                        QUEUE_WIRING,
                        format!(
                            "events posted to queue '{queue}' (by '{poster}') are never polled \
                             by any manager"
                        ),
                    ),
                    spans,
                    &format!("queue:{queue}"),
                )
                .with_node((*poster).to_string())
                .with_fix("attach a manager to the queue, or drop the handle"),
            );
        }
    }
    if let Some(declared) = declared_queues {
        for queue in declared {
            if !polled.contains(queue.as_str()) && !posters.contains_key(queue.as_str()) {
                diags.push(
                    with_span(
                        Diagnostic::warning(
                            QUEUE_WIRING,
                            format!("queue '{queue}' is declared but never posted to or polled"),
                        ),
                        spans,
                        &format!("queue:{queue}"),
                    )
                    .with_fix("remove the declaration"),
                );
            }
        }
    }

    // options no rule can ever flip
    let targeted: BTreeSet<&str> = model
        .managers
        .iter()
        .flat_map(|m| m.rules.iter())
        .flat_map(|r| r.actions.iter())
        .filter_map(|a| match a {
            crate::model::ActionInfo::Enable(o)
            | crate::model::ActionInfo::Disable(o)
            | crate::model::ActionInfo::Toggle(o) => Some(o.as_str()),
            _ => None,
        })
        .collect();
    for opt in &model.options {
        if !targeted.contains(opt.name.as_str()) {
            let state = if opt.enabled { "enabled" } else { "disabled" };
            diags.push(
                with_span(
                    Diagnostic::warning(
                        UNTARGETED_OPTION,
                        format!(
                            "option '{}' is not targeted by any manager rule; it stays {state} \
                             forever",
                            opt.name
                        ),
                    ),
                    spans,
                    &format!("option:{}", opt.name),
                )
                .with_node(format!("option:{}", opt.name))
                .with_fix("add an enable/disable/toggle rule for it, or inline the subgraph"),
            );
        }
    }

    diags
}

fn with_span(d: Diagnostic, spans: &HashMap<String, Span>, key: &str) -> Diagnostic {
    match spans.get(key) {
        Some(span) => d.with_span(*span),
        None => d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build;
    use crate::testutil::{leaf, leaf_with_queue};
    use hinch::graph::{GraphSpec, ManagerSpec};

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn dead_and_writerless_streams_are_flagged() {
        let g = GraphSpec::seq(vec![
            leaf("a", &[], &["used", "dead"]),
            leaf("b", &["used", "ghost"], &[]),
        ]);
        let diags = check(&build(&g), &HashMap::new(), None);
        assert_eq!(codes(&diags), vec![DEAD_STREAM, NO_WRITER], "{diags:?}");
    }

    #[test]
    fn unconditional_plus_optional_writer_is_flagged() {
        let g = GraphSpec::seq(vec![
            leaf("w1", &[], &["s"]),
            GraphSpec::option("o", false, leaf("w2", &[], &["s"])),
            leaf("snk", &["s"], &[]),
        ]);
        let diags = check(&build(&g), &HashMap::new(), None);
        assert_eq!(codes(&diags), vec![MULTIPLE_WRITERS, UNTARGETED_OPTION]);
    }

    #[test]
    fn exclusive_option_writers_are_fine() {
        let mgr = ManagerSpec::new("m", hinch::event::EventQueue::new("q")).on(
            "flip",
            vec![
                hinch::manager::EventAction::Toggle("a".into()),
                hinch::manager::EventAction::Toggle("b".into()),
            ],
        );
        let g = GraphSpec::managed(
            mgr,
            GraphSpec::seq(vec![
                leaf("src", &[], &["s"]),
                GraphSpec::option("a", true, leaf("work", &["s"], &["out"])),
                GraphSpec::option("b", false, leaf("bypass", &["s"], &["out"])),
                leaf("snk", &["out"], &[]),
            ]),
        );
        let diags = check(&build(&g), &HashMap::new(), Some(&["q".to_string()]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn queue_lints_fire() {
        // 'orphan' is posted to but unpolled; 'unused' is declared only
        let g = GraphSpec::seq(vec![
            leaf_with_queue("inj", &[], &["s"], "orphan"),
            leaf("snk", &["s"], &[]),
        ]);
        let declared = vec!["orphan".to_string(), "unused".to_string()];
        let diags = check(&build(&g), &HashMap::new(), Some(&declared));
        assert_eq!(codes(&diags), vec![QUEUE_WIRING, QUEUE_WIRING], "{diags:?}");
        assert!(
            diags[0].message.contains("never polled"),
            "{}",
            diags[0].message
        );
        assert!(
            diags[1].message.contains("declared but never"),
            "{}",
            diags[1].message
        );
    }
}
