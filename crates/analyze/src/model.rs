//! The analyzer's view of an elaborated graph.
//!
//! [`build`] walks a [`GraphSpec`] once and records, per component leaf,
//! the *branch path* from the root — the (kind, child-index) of every
//! Seq/Task/CrossDep ancestor. Two leaves' scheduling relation
//! ([`relation`]) is decided entirely by the first step where their paths
//! diverge: a `seq` group orders them, a `task` group runs them
//! concurrently, crossdep blocks are pipelined in block order. Managers,
//! options and slice groups never branch, so they contribute no steps
//! (slice copies of the same leaf share its spec-level path; their
//! interaction is the region-overlap analysis' job, not scheduling).

use hinch::component::ParamValue;
use hinch::graph::GraphSpec;
use hinch::manager::EventAction;

/// The branching node kinds that decide scheduling order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    Seq,
    Task,
    CrossDep,
}

/// One branch decision on the way from the root to a leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Step {
    pub kind: StepKind,
    pub index: usize,
}

/// A component leaf with everything the analyses need.
#[derive(Debug, Clone)]
pub struct LeafNode {
    pub name: String,
    pub class: String,
    pub inputs: Vec<String>,
    pub outputs: Vec<String>,
    /// Branch path from the root (see module docs).
    pub path: Vec<Step>,
    /// Names of enclosing options, outermost first.
    pub option_path: Vec<String>,
    /// Names of queues this leaf holds a handle to via its parameters —
    /// the leaf may post events there.
    pub queue_params: Vec<String>,
}

/// An option subgraph.
#[derive(Debug, Clone)]
pub struct OptionInfo {
    pub name: String,
    pub enabled: bool,
}

/// A manager rule action, with queue handles reduced to names.
#[derive(Debug, Clone)]
pub enum ActionInfo {
    Enable(String),
    Disable(String),
    Toggle(String),
    /// Forward the event to the named queue.
    Forward(String),
    Broadcast,
}

#[derive(Debug, Clone)]
pub struct RuleInfo {
    pub event: String,
    pub actions: Vec<ActionInfo>,
}

#[derive(Debug, Clone)]
pub struct ManagerInfo {
    pub name: String,
    /// Name of the queue this manager polls.
    pub queue: String,
    pub rules: Vec<RuleInfo>,
}

/// Everything [`build`] extracts from a spec.
#[derive(Debug, Clone, Default)]
pub struct Model {
    pub leaves: Vec<LeafNode>,
    pub options: Vec<OptionInfo>,
    pub managers: Vec<ManagerInfo>,
}

/// Extract the analyzer model from a graph spec.
pub fn build(spec: &GraphSpec) -> Model {
    let mut model = Model::default();
    walk(spec, &mut Vec::new(), &mut Vec::new(), &mut model);
    model
}

fn walk(spec: &GraphSpec, path: &mut Vec<Step>, options: &mut Vec<String>, model: &mut Model) {
    match spec {
        GraphSpec::Leaf(c) => {
            let mut queue_params = Vec::new();
            for (_, v) in c.params.iter() {
                if let ParamValue::Queue(q) = v {
                    queue_params.push(q.name().to_string());
                }
            }
            model.leaves.push(LeafNode {
                name: c.name.clone(),
                class: c.class.clone(),
                inputs: c.inputs.clone(),
                outputs: c.outputs.clone(),
                path: path.clone(),
                option_path: options.clone(),
                queue_params,
            });
        }
        GraphSpec::Seq(cs) => branch(cs, StepKind::Seq, path, options, model),
        GraphSpec::Task(cs) => branch(cs, StepKind::Task, path, options, model),
        GraphSpec::CrossDep { blocks, .. } => {
            branch(blocks, StepKind::CrossDep, path, options, model)
        }
        GraphSpec::Slice { body, .. } => walk(body, path, options, model),
        GraphSpec::Managed { manager, body } => {
            model.managers.push(ManagerInfo {
                name: manager.name.clone(),
                queue: manager.queue.name().to_string(),
                rules: manager
                    .rules
                    .iter()
                    .map(|r| RuleInfo {
                        event: r.event.clone(),
                        actions: r.actions.iter().map(action_info).collect(),
                    })
                    .collect(),
            });
            walk(body, path, options, model);
        }
        GraphSpec::Option {
            name,
            enabled,
            body,
        } => {
            model.options.push(OptionInfo {
                name: name.clone(),
                enabled: *enabled,
            });
            options.push(name.clone());
            walk(body, path, options, model);
            options.pop();
        }
    }
}

fn action_info(a: &EventAction) -> ActionInfo {
    match a {
        EventAction::Enable(o) => ActionInfo::Enable(o.clone()),
        EventAction::Disable(o) => ActionInfo::Disable(o.clone()),
        EventAction::Toggle(o) => ActionInfo::Toggle(o.clone()),
        EventAction::Forward(q) => ActionInfo::Forward(q.name().to_string()),
        EventAction::Broadcast { .. } => ActionInfo::Broadcast,
    }
}

fn branch(
    children: &[GraphSpec],
    kind: StepKind,
    path: &mut Vec<Step>,
    options: &mut Vec<String>,
    model: &mut Model,
) {
    for (index, child) in children.iter().enumerate() {
        path.push(Step { kind, index });
        walk(child, path, options, model);
        path.pop();
    }
}

/// Scheduling relation between two distinct leaves within one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// `a` completes before `b` starts (seq order or crossdep block order).
    Before,
    /// `b` completes before `a` starts.
    After,
    /// No ordering: the engine may run them in any order or in parallel.
    Concurrent,
}

/// Decide the scheduling relation of two leaves from their branch paths.
pub fn relation(a: &LeafNode, b: &LeafNode) -> Rel {
    for (sa, sb) in a.path.iter().zip(b.path.iter()) {
        if sa.index != sb.index {
            return match sa.kind {
                StepKind::Task => Rel::Concurrent,
                StepKind::Seq | StepKind::CrossDep => {
                    if sa.index < sb.index {
                        Rel::Before
                    } else {
                        Rel::After
                    }
                }
            };
        }
    }
    // distinct leaves always diverge at some branching ancestor; identical
    // prefixes can only happen for a leaf against itself
    Rel::Concurrent
}

/// Whether two leaves can be live at the same time as far as their option
/// nesting tells: true iff one option path is a prefix of the other.
/// Leaves under *sibling* options may be mutually exclusive (the
/// work/bypass idiom), so pairwise checks skip them.
pub fn option_paths_compatible(a: &[String], b: &[String]) -> bool {
    a.iter().zip(b.iter()).all(|(x, y)| x == y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::leaf;

    #[test]
    fn seq_orders_task_does_not() {
        let g = GraphSpec::seq(vec![
            leaf("a", &[], &["s"]),
            GraphSpec::task(vec![leaf("b", &["s"], &["t"]), leaf("c", &["s"], &["u"])]),
            leaf("d", &["t"], &[]),
        ]);
        let m = build(&g);
        let by = |n: &str| m.leaves.iter().find(|l| l.name == n).unwrap();
        assert_eq!(relation(by("a"), by("b")), Rel::Before);
        assert_eq!(relation(by("d"), by("a")), Rel::After);
        assert_eq!(relation(by("b"), by("c")), Rel::Concurrent);
    }

    #[test]
    fn crossdep_blocks_are_ordered() {
        let g = GraphSpec::crossdep(
            "cd",
            2,
            vec![leaf("p", &["in"], &["mid"]), leaf("q", &["mid"], &["out"])],
        );
        let m = build(&g);
        let by = |n: &str| m.leaves.iter().find(|l| l.name == n).unwrap();
        assert_eq!(relation(by("p"), by("q")), Rel::Before);
    }

    #[test]
    fn sibling_options_are_incompatible() {
        assert!(option_paths_compatible(&[], &["a".into()]));
        assert!(option_paths_compatible(
            &["a".into()],
            &["a".into(), "b".into()]
        ));
        assert!(!option_paths_compatible(&["a".into()], &["b".into()]));
    }
}
