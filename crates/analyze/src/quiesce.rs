//! XA020 — quiesce-safety of option swaps.
//!
//! Reconfiguration happens under quiescence, but quiescence only
//! serializes the *swap*; it cannot conjure a writer for a stream whose
//! sole producer was just disabled. This pass explores the reachable
//! option-configuration space (initial configuration, then every manager
//! rule applied transitively through forwards) and reports the first
//! event path leading to a configuration in which some live reader's
//! stream has no live writer — or two that race.

use crate::model::{ActionInfo, Model};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use xspcl::xml::Span;
use xspcl::Diagnostic;

pub const CODE: &str = "XA020";

/// Explored configurations are capped; specs with more reachable states
/// than this are beyond the exhaustive check (none of the paper's apps
/// come close).
const MAX_CONFIGS: usize = 4096;

/// How deep event forwarding is followed.
const MAX_FORWARD_DEPTH: usize = 4;

pub fn check(model: &Model, spans: &HashMap<String, Span>) -> Vec<Diagnostic> {
    if model.options.is_empty() || model.managers.is_empty() {
        return Vec::new();
    }
    // option name -> bit index; duplicate names across managers would make
    // the state space ambiguous, so bail out (the duplicate itself is
    // reported by the runtime's DuplicateOption check when within one
    // manager)
    let mut index: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, o) in model.options.iter().enumerate() {
        if index.insert(&o.name, i).is_some() {
            return Vec::new();
        }
    }

    let initial: Vec<bool> = model.options.iter().map(|o| o.enabled).collect();

    // per-stream writer/reader option paths (as bit-index lists)
    let paths = |opt_path: &[String]| -> Vec<usize> {
        opt_path
            .iter()
            .filter_map(|o| index.get(o.as_str()))
            .copied()
            .collect()
    };
    let mut writers: BTreeMap<&str, Vec<(usize, Vec<usize>)>> = BTreeMap::new();
    let mut readers: BTreeMap<&str, Vec<(usize, Vec<usize>)>> = BTreeMap::new();
    for (i, l) in model.leaves.iter().enumerate() {
        for s in &l.outputs {
            writers
                .entry(s)
                .or_default()
                .push((i, paths(&l.option_path)));
        }
        for s in &l.inputs {
            readers
                .entry(s)
                .or_default()
                .push((i, paths(&l.option_path)));
        }
    }
    let live = |config: &[bool], path: &[usize]| path.iter().all(|&b| config[b]);

    let violations = |config: &[bool]| -> Vec<(String, &'static str, String)> {
        let mut out = Vec::new();
        for (stream, rs) in &readers {
            let Some(ws) = writers.get(stream) else {
                continue; // no writer at all: the wiring lint reports it
            };
            let Some(&(reader, _)) = rs.iter().find(|(_, p)| live(config, p)) else {
                continue; // no live reader, nothing is orphaned
            };
            let live_ws: Vec<&str> = ws
                .iter()
                .filter(|(_, p)| live(config, p))
                .map(|&(w, _)| model.leaves[w].name.as_str())
                .collect();
            if live_ws.is_empty() {
                out.push((
                    stream.to_string(),
                    "orphaned",
                    format!(
                        "stream '{stream}' still has live reader '{}' but no live writer",
                        model.leaves[reader].name
                    ),
                ));
            } else if live_ws.len() > 1 {
                out.push((
                    stream.to_string(),
                    "raced",
                    format!(
                        "stream '{stream}' has {} live writers: {}",
                        live_ws.len(),
                        live_ws.join(", ")
                    ),
                ));
            }
        }
        out
    };

    let mut diags = Vec::new();
    let mut reported: BTreeSet<(String, &'static str)> = BTreeSet::new();
    let mut seen: BTreeSet<Vec<bool>> = BTreeSet::new();
    let mut queue: VecDeque<(Vec<bool>, Vec<String>)> = VecDeque::new();
    queue.push_back((initial, Vec::new()));
    while let Some((config, path)) = queue.pop_front() {
        if !seen.insert(config.clone()) {
            continue;
        }
        for (stream, kind, detail) in violations(&config) {
            if !reported.insert((stream.clone(), kind)) {
                continue;
            }
            let message = if path.is_empty() {
                format!("in the initial configuration, {detail}")
            } else {
                format!("after {}, {detail}", path.join(", then "))
            };
            let span_key = writers
                .get(stream.as_str())
                .and_then(|ws| ws.first())
                .map(|&(w, _)| model.leaves[w].name.clone());
            let mut d = Diagnostic::error(CODE, message).with_node(stream).with_fix(
                "pair the disabling action with enabling a replacement writer in the same rule, \
                 so the swap happens atomically under quiescence",
            );
            if let Some(span) = span_key.and_then(|k| spans.get(&k)) {
                d = d.with_span(*span);
            }
            diags.push(d);
        }
        if seen.len() >= MAX_CONFIGS {
            break;
        }
        for m in &model.managers {
            for r in &m.rules {
                let mut next = config.clone();
                apply(model, m, r, &mut next, &index, MAX_FORWARD_DEPTH);
                if next != config && !seen.contains(&next) {
                    let mut next_path = path.clone();
                    next_path.push(format!("event '{}' at manager '{}'", r.event, m.name));
                    queue.push_back((next, next_path));
                }
            }
        }
    }
    diags
}

fn apply(
    model: &Model,
    manager: &crate::model::ManagerInfo,
    rule: &crate::model::RuleInfo,
    config: &mut [bool],
    index: &BTreeMap<&str, usize>,
    depth: usize,
) {
    let _ = manager;
    for action in &rule.actions {
        match action {
            ActionInfo::Enable(o) => set(config, index, o, true),
            ActionInfo::Disable(o) => set(config, index, o, false),
            ActionInfo::Toggle(o) => {
                if let Some(&b) = index.get(o.as_str()) {
                    config[b] = !config[b];
                }
            }
            ActionInfo::Forward(q) => {
                if depth == 0 {
                    continue;
                }
                // the forwarded event keeps its kind; every manager polling
                // the target queue applies its matching rules
                for m2 in model.managers.iter().filter(|m2| &m2.queue == q) {
                    for r2 in m2.rules.iter().filter(|r2| r2.event == rule.event) {
                        apply(model, m2, r2, config, index, depth - 1);
                    }
                }
            }
            ActionInfo::Broadcast => {}
        }
    }
}

fn set(config: &mut [bool], index: &BTreeMap<&str, usize>, option: &str, value: bool) {
    if let Some(&b) = index.get(option) {
        config[b] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::build;
    use crate::testutil::leaf;
    use hinch::event::EventQueue;
    use hinch::graph::{GraphSpec, ManagerSpec};
    use hinch::manager::EventAction;

    #[test]
    fn disabling_the_sole_writer_is_reported() {
        let mgr = ManagerSpec::new("m", EventQueue::new("q"))
            .on("off", vec![EventAction::Disable("w".into())]);
        let g = GraphSpec::managed(
            mgr,
            GraphSpec::seq(vec![
                GraphSpec::option("w", true, leaf("src", &[], &["s"])),
                leaf("snk", &["s"], &[]),
            ]),
        );
        let diags = check(&build(&g), &HashMap::new());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("event 'off'"),
            "{}",
            diags[0].message
        );
        assert!(
            diags[0].message.contains("no live writer"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn paired_toggles_stay_safe() {
        // the PiP-12 idiom: exactly one of work/bypass is live at all times
        let mgr = ManagerSpec::new("m", EventQueue::new("q")).on(
            "flip",
            vec![
                EventAction::Toggle("work".into()),
                EventAction::Toggle("bypass".into()),
            ],
        );
        let g = GraphSpec::managed(
            mgr,
            GraphSpec::seq(vec![
                leaf("src", &[], &["s"]),
                GraphSpec::option("work", true, leaf("w", &["s"], &["out"])),
                GraphSpec::option("bypass", false, leaf("b", &["s"], &["out"])),
                leaf("snk", &["out"], &[]),
            ]),
        );
        let diags = check(&build(&g), &HashMap::new());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn enabling_a_second_writer_races() {
        let mgr = ManagerSpec::new("m", EventQueue::new("q"))
            .on("on", vec![EventAction::Enable("extra".into())]);
        let g = GraphSpec::managed(
            mgr,
            GraphSpec::seq(vec![
                GraphSpec::option("base", true, leaf("w1", &["in"], &["s"])),
                GraphSpec::option("extra", false, leaf("w2", &["in"], &["s"])),
                leaf("src", &[], &["in"]),
                leaf("snk", &["s"], &[]),
            ]),
        );
        let diags = check(&build(&g), &HashMap::new());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("2 live writers"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn forwarded_events_are_followed() {
        let front = ManagerSpec::new("front", EventQueue::new("q1"))
            .on("off", vec![EventAction::Forward(EventQueue::new("q2"))]);
        let back = ManagerSpec::new("back", EventQueue::new("q2"))
            .on("off", vec![EventAction::Disable("w".into())]);
        let g = GraphSpec::managed(
            front,
            GraphSpec::managed(
                back,
                GraphSpec::seq(vec![
                    GraphSpec::option("w", true, leaf("src", &[], &["s"])),
                    leaf("snk", &["s"], &[]),
                ]),
            ),
        );
        let diags = check(&build(&g), &HashMap::new());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("no live writer"),
            "{}",
            diags[0].message
        );
    }
}
