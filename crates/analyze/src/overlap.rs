//! XA001 — region-overlap analysis for shared boundary streams.
//!
//! Slice and crossdep copies of a component all write the same boundary
//! stream; the runtime hands each copy a composed [`SliceAssign`] whose
//! `range(len)` regions partition the buffer. This pass symbolically
//! expands every replication group (via [`hinch::graph::introspect`]) and
//! proves the write regions pairwise disjoint — or reports the first
//! conflicting pair.
//!
//! Disjointness is decided without knowing the buffer length:
//!
//! * equal totals, distinct indices — disjoint for every length (the
//!   `range` partition is exact);
//! * equal totals, equal index — the same region twice: always a
//!   conflict (this is exactly what uncomposed nested-slice assignments
//!   produce);
//! * differing totals — **not provably disjoint**: for buffer lengths
//!   smaller than the totals' product the uneven remainder distribution
//!   can make rationally-disjoint intervals share elements (e.g. copy
//!   4/8 and copy 2/3 of a 6-element buffer both own element 4), so the
//!   pair is conservatively reported.

use crate::model::option_paths_compatible;
use crate::AnalyzeOptions;
use hinch::component::SliceAssign;
use hinch::graph::introspect::{expand_copies, expand_copies_with, CopyInfo};
use hinch::graph::GraphSpec;
use std::collections::{BTreeMap, HashMap};
use xspcl::xml::Span;
use xspcl::Diagnostic;

pub const CODE: &str = "XA001";

pub fn check(
    spec: &GraphSpec,
    spans: &HashMap<String, Span>,
    opts: &AnalyzeOptions,
) -> Vec<Diagnostic> {
    let copies = if opts.legacy_uncomposed_slices {
        // the pre-fix semantics: every nesting level restarts at (i, n)
        expand_copies_with(spec, &|_, i, n| SliceAssign { index: i, total: n })
    } else {
        expand_copies(spec)
    };

    let mut writers: BTreeMap<&str, Vec<&CopyInfo>> = BTreeMap::new();
    for copy in &copies {
        for out in &copy.outputs {
            writers.entry(out).or_default().push(copy);
        }
    }

    let mut diags = Vec::new();
    for (stream, ws) in &writers {
        if ws.len() < 2 || ws.iter().all(|c| c.assign.is_none()) {
            continue; // single writer, or no replication: XA011's territory
        }
        let mut conflicts: Vec<(&CopyInfo, &CopyInfo, String)> = Vec::new();
        for (i, a) in ws.iter().enumerate() {
            for b in &ws[i + 1..] {
                if !option_paths_compatible(&a.option_path, &b.option_path) {
                    continue; // mutually exclusive options
                }
                if let Some(reason) = conflict(a.assign, b.assign) {
                    conflicts.push((a, b, reason));
                }
            }
        }
        if let Some((a, b, reason)) = conflicts.first() {
            let mut message = format!(
                "writers '{}' and '{}' of stream '{stream}' claim overlapping regions: {reason}",
                a.name, b.name
            );
            if conflicts.len() > 1 {
                message.push_str(&format!(
                    " ({} more conflicting pair(s) on this stream)",
                    conflicts.len() - 1
                ));
            }
            let mut d = Diagnostic::error(CODE, message).with_node(a.name.clone()).with_fix(
                "compose nested slice assignments (index = outer*n + inner, total = outer_total*n) \
                 so the copies partition the buffer",
            );
            if let Some(span) = spans.get(&a.spec_name) {
                d = d.with_span(*span);
            }
            diags.push(d);
        }
    }
    diags
}

/// `Some(reason)` when the two write regions cannot be proven disjoint.
fn conflict(a: Option<SliceAssign>, b: Option<SliceAssign>) -> Option<String> {
    match (a, b) {
        (Some(x), Some(y)) if x.total == y.total => (x.index == y.index).then(|| {
            format!(
                "both claim region {}/{} — their assignments were not composed across nesting levels",
                x.index, x.total
            )
        }),
        (Some(x), Some(y)) => Some(format!(
            "incommensurate partitions {}/{} vs {}/{} cannot be proven disjoint for every buffer length",
            x.index, x.total, y.index, y.total
        )),
        (Some(x), None) | (None, Some(x)) => Some(format!(
            "a whole-buffer write overlaps the {}/{} region",
            x.index, x.total
        )),
        // two unreplicated writers: the multiple-writers lint reports it
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::leaf;

    fn nested(outer: usize, inner: usize) -> GraphSpec {
        GraphSpec::seq(vec![
            leaf("src", &[], &["x"]),
            GraphSpec::slice(
                "outer",
                outer,
                GraphSpec::slice("inner", inner, leaf("w", &["x"], &["y"])),
            ),
            leaf("snk", &["y"], &[]),
        ])
    }

    #[test]
    fn composed_nested_slices_are_clean() {
        let diags = check(&nested(2, 2), &HashMap::new(), &AnalyzeOptions::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn legacy_uncomposed_nested_slices_overlap() {
        let opts = AnalyzeOptions {
            legacy_uncomposed_slices: true,
        };
        let diags = check(&nested(2, 2), &HashMap::new(), &opts);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("overlapping regions"),
            "{}",
            diags[0].message
        );
        assert!(
            diags[0].message.contains("not composed"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn differing_totals_are_conservatively_flagged() {
        // two separate slice groups of different widths writing one stream
        let g = GraphSpec::seq(vec![
            leaf("src", &[], &["x"]),
            GraphSpec::task(vec![
                GraphSpec::slice("a", 2, leaf("w1", &["x"], &["y"])),
                GraphSpec::slice("b", 3, leaf("w2", &["x"], &["y"])),
            ]),
            leaf("snk", &["y"], &[]),
        ]);
        let diags = check(&g, &HashMap::new(), &AnalyzeOptions::default());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("incommensurate"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn sibling_option_writers_are_not_compared() {
        let g = GraphSpec::seq(vec![
            leaf("src", &[], &["x"]),
            GraphSpec::option(
                "a",
                true,
                GraphSpec::slice("sa", 2, leaf("w1", &["x"], &["y"])),
            ),
            GraphSpec::option(
                "b",
                false,
                GraphSpec::slice("sb", 3, leaf("w2", &["x"], &["y"])),
            ),
            leaf("snk", &["y"], &[]),
        ]);
        let diags = check(&g, &HashMap::new(), &AnalyzeOptions::default());
        assert!(diags.is_empty(), "{diags:?}");
    }
}
