//! XA002 — stream-dependency cycles, XA003 — unordered concurrent reads.
//!
//! The engines schedule an iteration from structural order alone (seq
//! chains, crossdep block order); streams carry data but impose no
//! ordering of their own. Two hazards follow:
//!
//! * a stream read by a component scheduled *before* (or in a cycle
//!   with) its writer can never be satisfied — no FIFO capacity helps,
//!   the iteration deadlocks or panics on read-before-write (XA002);
//! * a stream read by a *task sibling* of its writer races: the group
//!   provides no ordering, so the read may execute first (XA003).

use crate::model::{relation, Model, Rel};
use std::collections::{BTreeMap, HashMap, VecDeque};
use xspcl::xml::Span;
use xspcl::Diagnostic;

pub const CYCLE: &str = "XA002";
pub const CONCURRENT_READ: &str = "XA003";

pub fn check(model: &Model, spans: &HashMap<String, Span>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let n = model.leaves.len();

    // stream edges writer -> reader (skipping mutually exclusive options)
    let mut writers: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, l) in model.leaves.iter().enumerate() {
        for s in &l.outputs {
            writers.entry(s).or_default().push(i);
        }
    }
    // ordered edges feed the cycle search; concurrent stream edges are the
    // race lint (a cycle through them would be a misdiagnosis: no ordering
    // exists to contradict)
    let mut edges: Vec<(usize, usize, String)> = Vec::new();
    for (r, reader) in model.leaves.iter().enumerate() {
        for s in &reader.inputs {
            for &w in writers.get(s.as_str()).map_or(&[][..], |v| v) {
                if w == r {
                    diags.push(
                        with_span(
                            Diagnostic::error(
                                CYCLE,
                                format!(
                                    "component '{}' reads its own output stream '{s}' — the value \
                                     can never be produced",
                                    reader.name
                                ),
                            ),
                            spans,
                            &reader.name,
                        )
                        .with_node(reader.name.clone()),
                    );
                    continue;
                }
                let writer = &model.leaves[w];
                if !crate::model::option_paths_compatible(&writer.option_path, &reader.option_path)
                {
                    continue;
                }
                match relation(writer, reader) {
                    Rel::Concurrent => diags.push(
                        with_span(
                            Diagnostic::error(
                                CONCURRENT_READ,
                                format!(
                                    "component '{}' reads stream '{s}' concurrently with its \
                                     writer '{}' — the task group imposes no ordering, so the \
                                     read may precede the write",
                                    reader.name, writer.name
                                ),
                            ),
                            spans,
                            &reader.name,
                        )
                        .with_node(reader.name.clone())
                        .with_fix("order the writer before the reader with a seq group"),
                    ),
                    Rel::Before | Rel::After => edges.push((w, r, s.clone())),
                }
            }
        }
    }

    // structural order edges between every Before pair
    let mut adj: Vec<Vec<(usize, Option<&str>)>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    for (w, r, s) in &edges {
        adj[*w].push((*r, Some(s.as_str())));
        indegree[*r] += 1;
    }
    for a in 0..n {
        for b in (a + 1)..n {
            let (f, t) = match relation(&model.leaves[a], &model.leaves[b]) {
                Rel::Before => (a, b),
                Rel::After => (b, a),
                Rel::Concurrent => continue,
            };
            adj[f].push((t, None));
            indegree[t] += 1;
        }
    }

    // Kahn elimination: whatever survives sits on a cycle
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut alive = vec![true; n];
    let mut remaining = n;
    while let Some(i) = queue.pop_front() {
        alive[i] = false;
        remaining -= 1;
        for &(t, _) in &adj[i] {
            indegree[t] -= 1;
            if indegree[t] == 0 {
                queue.push_back(t);
            }
        }
    }
    if remaining > 0 {
        // order alone is acyclic, so some stream edge closes the loop;
        // report the minimal cycle through the first surviving one
        if let Some((w, r, s)) = edges.iter().find(|(w, r, _)| alive[*w] && alive[*r]) {
            let names = shortest_path(&adj, &alive, *r, *w)
                .map(|path| {
                    path.iter()
                        .map(|&i| model.leaves[i].name.as_str())
                        .collect::<Vec<_>>()
                        .join(" -> ")
                })
                .unwrap_or_else(|| model.leaves[*r].name.clone());
            let writer = &model.leaves[*w];
            diags.push(
                with_span(
                    Diagnostic::error(
                        CYCLE,
                        format!(
                            "stream-dependency cycle no FIFO capacity can satisfy: '{}' writes \
                             stream '{s}' consumed by '{}', but scheduling order runs {names}",
                            writer.name, model.leaves[*r].name
                        ),
                    ),
                    spans,
                    &writer.name,
                )
                .with_node(writer.name.clone())
                .with_fix("break the cycle: move the reader after the writer, or split the stream"),
            );
        }
    }
    diags
}

/// BFS over surviving nodes from `from` to `to`; returns the node path.
fn shortest_path(
    adj: &[Vec<(usize, Option<&str>)>],
    alive: &[bool],
    from: usize,
    to: usize,
) -> Option<Vec<usize>> {
    let mut prev: Vec<Option<usize>> = vec![None; adj.len()];
    let mut queue = VecDeque::from([from]);
    let mut seen = vec![false; adj.len()];
    seen[from] = true;
    while let Some(i) = queue.pop_front() {
        if i == to {
            let mut path = vec![to];
            let mut cur = to;
            while let Some(p) = prev[cur] {
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for &(t, _) in &adj[i] {
            if alive[t] && !seen[t] {
                seen[t] = true;
                prev[t] = Some(i);
                queue.push_back(t);
            }
        }
    }
    None
}

fn with_span(d: Diagnostic, spans: &HashMap<String, Span>, key: &str) -> Diagnostic {
    match spans.get(key) {
        Some(span) => d.with_span(*span),
        None => d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::leaf;
    use hinch::graph::GraphSpec;

    #[test]
    fn backward_seq_data_edge_is_a_cycle() {
        // reader scheduled before its writer: guaranteed deadlock
        let g = GraphSpec::seq(vec![leaf("r", &["s"], &["t"]), leaf("w", &[], &["s"])]);
        let diags = check(&crate::model::build(&g), &HashMap::new());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, CYCLE);
        assert!(diags[0].message.contains("cycle"), "{}", diags[0].message);
    }

    #[test]
    fn task_sibling_read_is_a_race() {
        let g = GraphSpec::task(vec![leaf("w", &[], &["s"]), leaf("r", &["s"], &[])]);
        let diags = check(&crate::model::build(&g), &HashMap::new());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, CONCURRENT_READ);
    }

    #[test]
    fn forward_pipeline_is_clean() {
        let g = GraphSpec::seq(vec![
            leaf("a", &[], &["s"]),
            GraphSpec::task(vec![leaf("b", &["s"], &["t"]), leaf("c", &["s"], &["u"])]),
            leaf("d", &["t", "u"], &[]),
        ]);
        let diags = check(&crate::model::build(&g), &HashMap::new());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn self_read_is_reported() {
        let g = GraphSpec::seq(vec![leaf("x", &["s"], &["s"])]);
        let diags = check(&crate::model::build(&g), &HashMap::new());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("own output"),
            "{}",
            diags[0].message
        );
    }
}
