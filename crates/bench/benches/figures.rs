//! Criterion benches regenerating the paper's figures at reduced scale.
//!
//! One bench group per figure of the evaluation section. These measure the
//! *host* time of running each experiment; the experiment itself reports
//! simulated cycles (printed once per bench so `cargo bench` output doubles
//! as a small-scale figure regeneration). Use the `paper-figures` binary
//! for the full-scale numbers.

use apps::experiment::{run_sim, sequential_cycles, App, AppConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const FRAMES: u64 = 8;

/// Figure 8: one-core XSPCL vs sequential, per app.
fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_sequential_overhead");
    group.sample_size(10);
    for app in App::STATIC {
        let cfg = AppConfig::small(app).frames(FRAMES);
        // print the small-scale figure row once
        let seq = sequential_cycles(cfg);
        let xspcl = run_sim(cfg, 1).cycles;
        eprintln!(
            "fig8[{}]: seq={} xspcl={} overhead={:.1}%",
            app.label(),
            seq,
            xspcl,
            (xspcl as f64 / seq as f64 - 1.0) * 100.0
        );
        group.bench_function(BenchmarkId::new("xspcl_1core", app.label()), |b| {
            b.iter(|| run_sim(cfg, 1).cycles)
        });
        group.bench_function(BenchmarkId::new("sequential", app.label()), |b| {
            b.iter(|| sequential_cycles(cfg))
        });
    }
    group.finish();
}

/// Figure 9: node sweep, per app (host time of the simulated runs).
fn fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_speedup");
    group.sample_size(10);
    for app in [App::Pip1, App::Jpip1, App::Blur5] {
        let cfg = AppConfig::small(app).frames(FRAMES);
        let reference = sequential_cycles(cfg);
        for cores in [1usize, 4, 9] {
            let cycles = run_sim(cfg, cores).cycles;
            eprintln!(
                "fig9[{} n={}]: cycles={} speedup={:.2}",
                app.label(),
                cores,
                cycles,
                reference as f64 / cycles as f64
            );
            group.bench_function(BenchmarkId::new(app.label().to_string(), cores), |b| {
                b.iter(|| run_sim(cfg, cores).cycles)
            });
        }
    }
    group.finish();
}

/// Figure 10: reconfigurable vs static average (host time).
fn fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_reconfiguration");
    group.sample_size(10);
    for app in App::RECONFIG {
        let cfg = AppConfig::small(app).frames(24);
        let reconfig = run_sim(cfg, 4);
        let static_avg: u64 = app
            .static_counterparts()
            .iter()
            .map(|&a| run_sim(AppConfig::small(a).frames(24), 4).cycles)
            .sum::<u64>()
            / app.static_counterparts().len() as u64;
        eprintln!(
            "fig10[{} n=4]: reconfig={} static_avg={} overhead={:.1}% ({} reconfigs)",
            app.label(),
            reconfig.cycles,
            static_avg,
            (reconfig.cycles as f64 / static_avg as f64 - 1.0) * 100.0,
            reconfig.reconfigs,
        );
        group.bench_function(app.label(), |b| b.iter(|| run_sim(cfg, 4).cycles));
    }
    group.finish();
}

criterion_group!(figures, fig8, fig9, fig10);
criterion_main!(figures);
