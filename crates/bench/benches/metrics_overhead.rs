//! Cost of the always-on metrics registry ([`trace::metrics`]).
//!
//! The engines update an optional [`EngineMetrics`] registry with one
//! relaxed atomic per event. Two claims are measured:
//!
//! 1. the disabled path (registry absent) is a single `Option` branch —
//!    a few ns at most, cheap enough to leave compiled in everywhere;
//! 2. the enabled path is one relaxed `fetch_add` per counter and a
//!    leading-zeros bucket index plus a `fetch_add` per histogram
//!    sample — tens of ns at worst, no locks, no allocation.
//!
//! ```sh
//! cargo bench --bench metrics_overhead
//! ```

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hinch::trace::metrics::EngineMetrics;
use std::sync::Arc;
use trace::StallCause;

/// Per-event costs of the disabled and enabled registry paths.
fn per_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_per_event");
    group.bench_function("disabled_branch", |b| {
        let metrics: Option<Arc<EngineMetrics>> = None;
        let mut i = 0u64;
        b.iter(|| {
            // What every engine site pays when no registry is attached:
            // one branch, nothing constructed.
            if let Some(m) = black_box(&metrics) {
                m.on_job(i);
            }
            i += 1;
        })
    });
    group.bench_function("counter_inc", |b| {
        let metrics = Arc::new(EngineMetrics::default());
        b.iter(|| black_box(&metrics).jobs.inc())
    });
    group.bench_function("on_job", |b| {
        let metrics: Option<Arc<EngineMetrics>> = Some(Arc::new(EngineMetrics::default()));
        let mut i = 0u64;
        b.iter(|| {
            if let Some(m) = black_box(&metrics) {
                m.on_job(i % 10_000);
            }
            i += 1;
        })
    });
    group.bench_function("on_stall", |b| {
        let metrics: Option<Arc<EngineMetrics>> = Some(Arc::new(EngineMetrics::default()));
        let mut i = 0u64;
        b.iter(|| {
            if let Some(m) = black_box(&metrics) {
                m.on_stall(StallCause::ALL[(i % 4) as usize], i % 10_000);
            }
            i += 1;
        })
    });
    group.finish();
}

/// Sanity bound on the disabled path: time a long run of the branch and
/// assert the per-event cost stays in single-digit nanoseconds (with a
/// generous margin for noisy machines). Catches regressions that turn
/// the `Option` check into something that allocates or locks.
fn disabled_bound(_c: &mut Criterion) {
    const EVENTS: u64 = 50_000_000;
    let metrics: Option<Arc<EngineMetrics>> = None;
    let start = std::time::Instant::now();
    for i in 0..EVENTS {
        if let Some(m) = black_box(&metrics) {
            m.on_job(i);
        }
    }
    let per_event = start.elapsed().as_secs_f64() * 1e9 / EVENTS as f64;
    println!("metrics_disabled_bound/branch                          {per_event:>10.2} ns/event");
    assert!(
        per_event <= 25.0,
        "disabled metrics path costs {per_event:.1} ns/event — expected a few ns \
         (one Option branch); did it grow an allocation or a lock?"
    );
}

criterion_group!(metrics_overhead, per_event, disabled_bound);
criterion_main!(metrics_overhead);
