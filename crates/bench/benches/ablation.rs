//! Ablations of the design choices called out in `DESIGN.md`.
//!
//! Each ablation disables or sweeps one mechanism and reports the effect
//! on the simulated PiP-1 run, so the contribution of every modelling
//! decision is measurable:
//!
//! * pipeline depth (the paper's 5 concurrent iterations),
//! * dispatch / job-base overhead (the RTS cost model),
//! * L2 capacity (the locality effect behind the JPiP overhead).

use apps::experiment::{build, App, AppConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hinch::engine::{run_sim, RunConfig};
use spacecake::{CacheConfig, Machine, TileConfig};

const FRAMES: u64 = 8;

fn pipeline_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pipeline_depth");
    group.sample_size(10);
    let cfg = AppConfig::small(App::Pip1).frames(FRAMES);
    for depth in [1usize, 2, 5, 8] {
        let built = build(cfg);
        let mut m = Machine::with_cores(4);
        let cycles = run_sim(
            &built.spec,
            &RunConfig::new(FRAMES).pipeline_depth(depth),
            &mut m,
        )
        .unwrap()
        .cycles;
        eprintln!("depth={depth}: {cycles} cycles @4 cores");
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let built = build(cfg);
                let mut m = Machine::with_cores(4);
                run_sim(
                    &built.spec,
                    &RunConfig::new(FRAMES).pipeline_depth(depth),
                    &mut m,
                )
                .unwrap()
                .cycles
            })
        });
    }
    group.finish();
}

fn dispatch_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dispatch_cost");
    group.sample_size(10);
    let cfg = AppConfig::small(App::Pip1).frames(FRAMES);
    for dispatch in [0u64, 600, 6000] {
        let built = build(cfg);
        let mut m = Machine::with_cores(4);
        let mut rc = RunConfig::new(FRAMES).pipeline_depth(5);
        rc.overhead.dispatch = dispatch;
        let cycles = run_sim(&built.spec, &rc, &mut m).unwrap().cycles;
        eprintln!("dispatch={dispatch}: {cycles} cycles @4 cores");
        group.bench_with_input(
            BenchmarkId::from_parameter(dispatch),
            &dispatch,
            |b, &dispatch| {
                b.iter(|| {
                    let built = build(cfg);
                    let mut m = Machine::with_cores(4);
                    let mut rc = RunConfig::new(FRAMES).pipeline_depth(5);
                    rc.overhead.dispatch = dispatch;
                    run_sim(&built.spec, &rc, &mut m).unwrap().cycles
                })
            },
        );
    }
    group.finish();
}

/// Build a mid-size JPiP whose coefficient planes (≈ 0.4 MiB per field,
/// 2.4 MiB per frame across both streams) straddle the swept L2 sizes —
/// the small test config fits *any* cache and would show nothing.
fn midsize_jpip() -> apps::jpip::JpipApp {
    use apps::jpip::{build as build_jpip, JpipConfig};
    let cfg = JpipConfig {
        width: 640,
        height: 320,
        factor: 8,
        slices: 8,
        distinct_frames: 2,
        ..JpipConfig::small(1)
    };
    build_jpip(&cfg).expect("jpip compiles")
}

fn l2_capacity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_l2_size");
    group.sample_size(10);
    // JPiP is the cache-sensitive app (coefficient planes between decode
    // and IDCT) — shrink/grow the L2 and watch the memory stalls move.
    let app = midsize_jpip();
    for l2_kib in [256usize, 2048, 8192] {
        let tile = TileConfig {
            l2: CacheConfig {
                size: l2_kib * 1024,
                line: 128,
                assoc: 8,
            },
            ..TileConfig::with_cores(1)
        };
        app.assets.clear_captures();
        let mut m = Machine::new(tile.clone());
        let r = run_sim(
            &app.elaborated.spec,
            &RunConfig::new(FRAMES).pipeline_depth(5),
            &mut m,
        )
        .unwrap();
        eprintln!(
            "L2={l2_kib}KiB: {} cycles, {} mem cycles, {} L2 misses",
            r.cycles, r.stats.mem_cycles, r.stats.l2_misses
        );
        group.bench_with_input(BenchmarkId::from_parameter(l2_kib), &l2_kib, |b, _| {
            b.iter(|| {
                app.assets.clear_captures();
                let mut m = Machine::new(tile.clone());
                run_sim(
                    &app.elaborated.spec,
                    &RunConfig::new(FRAMES).pipeline_depth(5),
                    &mut m,
                )
                .unwrap()
                .cycles
            })
        });
    }
    group.finish();
}

criterion_group!(ablation, pipeline_depth, dispatch_overhead, l2_capacity);
criterion_main!(ablation);
