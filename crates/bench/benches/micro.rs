//! Microbenchmarks of the run-time-system primitives (wall clock).
//!
//! These measure the *native* cost of Hinch's building blocks — streams,
//! event queues, shared-buffer leases, job dispatch — backing the claim
//! that the coordination layer is cheap next to the component work.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hinch::component::{Component, Params, RunCtx};
use hinch::engine::{run_native, RunConfig};
use hinch::event::{Event, EventQueue};
use hinch::graph::{factory, ComponentSpec, GraphSpec};
use hinch::packet::pack;
use hinch::sharedbuf::RegionBuf;
use hinch::stream::Stream;

fn stream_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream");
    group.throughput(Throughput::Elements(1));
    group.bench_function("write_read_clear", |b| {
        let s = Stream::new("bench");
        let mut iter = 0u64;
        b.iter(|| {
            s.write(iter, pack(iter));
            let v = s.read_as::<u64>(iter);
            s.clear(iter);
            iter += 1;
            *v
        })
    });
    group.bench_function("write_shared_8_copies", |b| {
        let s = Stream::new("bench");
        let mut iter = 0u64;
        b.iter(|| {
            for _ in 0..8 {
                let _ = s.write_shared(iter, || 42u64);
            }
            s.clear(iter);
            iter += 1;
        })
    });
    group.finish();
}

fn event_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("events");
    group.throughput(Throughput::Elements(1));
    group.bench_function("send_poll", |b| {
        let q = EventQueue::new("bench");
        b.iter(|| {
            q.send(Event::with_payload("e", 1));
            q.poll()
        })
    });
    group.finish();
}

fn sharedbuf_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("region_buf");
    let buf = RegionBuf::<u8>::new("bench", 720 * 576);
    group.bench_function("lease_write_band", |b| {
        b.iter(|| {
            let mut w = buf.lease_write(0..720 * 72);
            w[0] = w[0].wrapping_add(1);
        })
    });
    group.bench_function("lease_read_all", |b| {
        b.iter(|| {
            let r = buf.lease_read_all();
            r[1]
        })
    });
    group.finish();
}

struct Spin(u64);
impl Component for Spin {
    fn class(&self) -> &'static str {
        "spin"
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>) {
        // tiny busy-work so dispatch overhead dominates the measurement
        let mut x = self.0;
        for _ in 0..64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        self.0 = x;
        ctx.charge(64);
    }
}

/// Cost of scheduling jobs through the native engine (per-job dispatch).
fn engine_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_engine");
    group.sample_size(20);
    for workers in [1usize, 4] {
        group.bench_function(format!("chain10_x100_iters_w{workers}"), |b| {
            // 10 components in sequence, 100 iterations
            let spec = GraphSpec::seq(
                (0..10)
                    .map(|i| {
                        GraphSpec::Leaf(ComponentSpec::new(
                            format!("n{i}"),
                            "spin",
                            factory(
                                |_p: &Params| -> Box<dyn Component> { Box::new(Spin(7)) },
                                Params::new(),
                            ),
                        ))
                    })
                    .collect(),
            );
            b.iter(|| {
                run_native(&spec, &RunConfig::new(100).workers(workers))
                    .unwrap()
                    .jobs_executed
            })
        });
    }
    group.finish();
}

criterion_group!(micro, stream_ops, event_ops, sharedbuf_ops, engine_dispatch);
criterion_main!(micro);
