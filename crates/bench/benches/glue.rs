//! The paper's low-overhead claim: XSPCL glue runs at initialization only.
//!
//! Measures the complete XSPCL processing pipeline (XML parse → validate →
//! elaborate) for the real application documents and compares it against
//! one steady-state iteration of the same application — showing the glue
//! is a one-time cost amortized over the whole run.

use apps::experiment::{run_sim, App, AppConfig};
use apps::pip::{pip_xml, PipConfig};
use apps::registry::{registry, AppAssets};
use criterion::{criterion_group, criterion_main, Criterion};
use media::video::{RawVideo, VideoSpec};
use std::sync::Arc;

fn glue_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("glue_overhead");

    // the full PiP-2 document (the largest static app spec)
    let cfg = PipConfig::paper(2);
    let xml = pip_xml(&cfg);
    eprintln!("glue: PiP-2 XSPCL document is {} bytes", xml.len());

    group.bench_function("parse_only", |b| {
        b.iter(|| xspcl::xml::parse(&xml).unwrap().children.len())
    });

    group.bench_function("parse_validate", |b| {
        b.iter(|| xspcl::parse_and_validate(&xml).unwrap().procedures.len())
    });

    // elaboration against a live registry (videos pre-generated once)
    let assets = AppAssets::new();
    let spec = VideoSpec::new(cfg.width, cfg.height, 2, cfg.seed);
    assets.add_raw("bg", Arc::new(RawVideo::generate(spec)));
    assets.add_raw(
        "pip1",
        Arc::new(RawVideo::generate(VideoSpec { seed: 1, ..spec })),
    );
    assets.add_raw(
        "pip2",
        Arc::new(RawVideo::generate(VideoSpec { seed: 2, ..spec })),
    );
    let reg = registry(&assets);
    group.bench_function("parse_validate_elaborate", |b| {
        b.iter(|| xspcl::compile(&xml, &reg).unwrap().spec.leaf_count())
    });

    group.finish();

    // context: simulated cycles of ONE steady-state iteration, so the
    // reader can relate glue time to frame time
    let cfg8 = AppConfig::small(App::Pip2).frames(8);
    let r = run_sim(cfg8, 1);
    eprintln!(
        "context: small PiP-2 costs ~{} simulated cycles/frame at steady state",
        r.cycles / r.iterations.max(1)
    );
}

criterion_group!(glue, glue_pipeline);
criterion_main!(glue);
