//! Cost of the flight recorder, and of *not* using it.
//!
//! Two measurements back the "near-zero when disabled" claim:
//!
//! 1. per-event micro-costs: the disabled path (an `Option` check), a
//!    [`NullSink`] (event construction, then discard) and the real
//!    [`Recorder`] (construction + shard push);
//! 2. end-to-end: native PiP-1 with tracing disabled, with a `NullSink`
//!    and with a `Recorder`, interleaved to cancel machine drift. The run
//!    with tracing disabled must not be measurably slower than the
//!    `NullSink` run (it does strictly less work), which bounds the
//!    disabled-path overhead — one branch per would-be event — well below
//!    1% of the run. The bench asserts the medians agree within 2%
//!    (margin for scheduler noise).
//!
//! ```sh
//! cargo bench --bench trace_overhead
//! ```

use apps::experiment::{build, App, AppConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hinch::engine::{run_native, RunConfig};
use hinch::trace::{Clock, NullSink, Recorder, SpanKind, TraceEvent, TraceSink};
use std::sync::Arc;
use std::time::Duration;

fn sample_span(i: u64) -> TraceEvent {
    TraceEvent::JobSpan {
        label: "main/blend#0".into(),
        kind: SpanKind::Component,
        iter: i,
        core: (i % 4) as u32,
        start: i * 100,
        end: i * 100 + 80,
        cycles: 80,
        cache: None,
    }
}

/// Per-event costs of each sink variant.
fn per_event(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_per_event");
    group.bench_function("disabled_branch", |b| {
        let sink: Option<Arc<dyn TraceSink>> = None;
        let mut i = 0u64;
        b.iter(|| {
            // What every instrumentation site pays when tracing is off:
            // one branch, no event constructed.
            if let Some(sink) = black_box(&sink) {
                sink.record(sample_span(i));
            }
            i += 1;
        })
    });
    group.bench_function("null_sink", |b| {
        let sink: Option<Arc<dyn TraceSink>> = Some(Arc::new(NullSink));
        let mut i = 0u64;
        b.iter(|| {
            if let Some(sink) = black_box(&sink) {
                sink.record(sample_span(i));
            }
            i += 1;
        })
    });
    group.bench_function("recorder", |b| {
        let recorder = Recorder::new(Clock::WallNanos);
        let sink: Option<Arc<dyn TraceSink>> = Some(recorder.sink());
        let mut i = 0u64;
        b.iter(|| {
            if let Some(sink) = black_box(&sink) {
                sink.record(sample_span(i));
            }
            i += 1;
        })
    });
    group.finish();
}

fn native_pip(sink: Option<Arc<dyn TraceSink>>) -> Duration {
    let cfg = AppConfig::small(App::Pip1).frames(24);
    let built = build(cfg);
    let mut rc = RunConfig::new(cfg.frames).pipeline_depth(5).workers(4);
    if let Some(sink) = sink {
        rc = rc.trace(sink);
    }
    run_native(&built.spec, &rc).expect("native run").elapsed
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

/// End-to-end overhead on native PiP-1 and the disabled-sink assertion.
fn end_to_end(_c: &mut Criterion) {
    const TRIALS: usize = 15;
    native_pip(None); // warm the asset cache and the allocator
    let mut disabled = Vec::with_capacity(TRIALS);
    let mut null = Vec::with_capacity(TRIALS);
    let mut recorded = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        disabled.push(native_pip(None));
        null.push(native_pip(Some(Arc::new(NullSink))));
        recorded.push(native_pip(Some(Recorder::new(Clock::WallNanos).sink())));
    }
    let d = median(&mut disabled);
    let n = median(&mut null);
    let r = median(&mut recorded);
    let pct = |x: Duration| (x.as_secs_f64() / d.as_secs_f64() - 1.0) * 100.0;
    println!("trace_end_to_end/pip_native_disabled                   {d:>12.2?}/run");
    println!(
        "trace_end_to_end/pip_native_null_sink                  {n:>12.2?}/run  ({:+.2}%)",
        pct(n)
    );
    println!(
        "trace_end_to_end/pip_native_recorder                   {r:>12.2?}/run  ({:+.2}%)",
        pct(r)
    );
    // Coarse backstop only: the precise branch-vs-virtual-call cost is
    // asserted per event in `per_event`; sub-millisecond wall-clock
    // medians on a loaded machine still jitter a few percent.
    assert!(
        d.as_secs_f64() <= n.as_secs_f64() * 1.05,
        "disabled tracing ({d:?}) should not be slower than a NullSink run ({n:?}): \
         the disabled path must not cost more than the no-op sink"
    );
}

criterion_group!(trace_overhead, per_event, end_to_end);
criterion_main!(trace_overhead);
