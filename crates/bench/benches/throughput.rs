//! Scheduler throughput: the work-stealing runtime vs the centralized
//! ready queue, on the native engine.
//!
//! [`SchedPolicy::Default`] dispatches to the work-stealing path
//! (per-worker deques + event-count parking); [`SchedPolicy::Fifo`]
//! replays the pre-work-stealing engine exactly (one mutex-protected
//! queue, `pop_front`, condvar broadcast on every completion). Running
//! both in the same binary gives an apples-to-apples before/after
//! comparison without checking out old code.
//!
//! Two workloads:
//!
//! * **glue micro-benchmark** — a `Task` of 16 tiny spin components, so
//!   per-job scheduling overhead dominates. Reported as jobs/sec.
//! * **end-to-end apps** — PiP-1, Blur-3×3 and JPiP-1 (unfused and
//!   tile-fused) at small scale, reported as frames/sec.
//!
//! Harness-free (`harness = false`, own `main`): emits one JSON document
//! to `$THROUGHPUT_OUT` (or stdout) for `scripts/bench.sh` to fold into
//! `BENCH_native.json`. `$THROUGHPUT_QUICK=1` shrinks the run for CI
//! smoke testing. Human-readable progress goes to stderr.

use apps::experiment::{build, build_fused, App, AppConfig};
use hinch::component::{Component, Params, RunCtx};
use hinch::engine::{run_native, RunConfig};
use hinch::graph::factory;
use hinch::{ComponentSpec, GraphSpec, RunReport, SchedPolicy};
use std::fmt::Write as _;

const WORKERS: [usize; 4] = [1, 2, 4, 8];
const MICRO_WIDTH: usize = 16;

struct Spin(u64);
impl Component for Spin {
    fn class(&self) -> &'static str {
        "spin"
    }
    fn run(&mut self, ctx: &mut RunCtx<'_>) {
        // tiny busy-work so dispatch overhead dominates the measurement
        let mut x = self.0;
        for _ in 0..16 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        self.0 = x;
        ctx.charge(16);
    }
}

/// `MICRO_WIDTH` independent spin components per iteration: maximum
/// scheduler pressure, minimum component work.
fn micro_spec() -> GraphSpec {
    GraphSpec::task(
        (0..MICRO_WIDTH)
            .map(|i| {
                GraphSpec::Leaf(ComponentSpec::new(
                    format!("spin{i}"),
                    "spin",
                    factory(
                        |_p: &Params| -> Box<dyn Component> { Box::new(Spin(7)) },
                        Params::new(),
                    ),
                ))
            })
            .collect(),
    )
}

/// Best-of-`repeats` run; returns the report with the shortest elapsed
/// time (least scheduler noise).
fn run_best(
    spec: &GraphSpec,
    iters: u64,
    workers: usize,
    policy: SchedPolicy,
    repeats: usize,
) -> RunReport {
    let mut best: Option<RunReport> = None;
    for _ in 0..repeats {
        let cfg = RunConfig::new(iters).workers(workers).sched(policy);
        let r = run_native(spec, &cfg).expect("bench run");
        assert_eq!(r.iterations, iters, "bench run retired too few iterations");
        if best.as_ref().is_none_or(|b| r.elapsed < b.elapsed) {
            best = Some(r);
        }
    }
    best.unwrap()
}

fn jobs_per_sec(r: &RunReport) -> f64 {
    r.jobs_executed as f64 / r.elapsed.as_secs_f64().max(1e-9)
}

fn frames_per_sec(r: &RunReport) -> f64 {
    r.iterations as f64 / r.elapsed.as_secs_f64().max(1e-9)
}

fn main() {
    let quick = std::env::var("THROUGHPUT_QUICK").is_ok();
    let (micro_iters, frames, repeats) = if quick { (200, 4, 1) } else { (2_000, 32, 5) };

    let mut json = String::from("{\n");
    json.push_str("    \"generated_by\": \"cargo bench -p bench --bench throughput\",\n");
    json.push_str("    \"note\": \"work_stealing = SchedPolicy::Default (per-worker deques); centralized = SchedPolicy::Fifo (the pre-work-stealing single-lock engine, byte-identical schedule semantics)\",\n");
    let _ = writeln!(json, "    \"quick\": {quick},");

    // ---- glue micro-benchmark -------------------------------------------
    eprintln!(
        "throughput: glue micro ({MICRO_WIDTH}-wide task, {micro_iters} iterations, best of {repeats})"
    );
    let spec = micro_spec();
    json.push_str("    \"micro_jobs_per_sec\": {\n");
    let _ = writeln!(json, "        \"width\": {MICRO_WIDTH},");
    let _ = writeln!(json, "        \"iterations\": {micro_iters},");
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    for (wi, &workers) in WORKERS.iter().enumerate() {
        let fifo = run_best(&spec, micro_iters, workers, SchedPolicy::Fifo, repeats);
        let ws = run_best(&spec, micro_iters, workers, SchedPolicy::Default, repeats);
        let (jf, jw) = (jobs_per_sec(&fifo), jobs_per_sec(&ws));
        let speedup = jw / jf;
        speedups.push((workers, speedup));
        eprintln!(
            "  workers={workers}: centralized {jf:>12.0} jobs/s | work-stealing {jw:>12.0} jobs/s | {speedup:.2}x"
        );
        let _ = writeln!(
            json,
            "        \"workers_{workers}\": {{ \"centralized\": {jf:.0}, \"work_stealing\": {jw:.0}, \"speedup\": {speedup:.3} }}{}",
            if wi + 1 < WORKERS.len() { "," } else { "" }
        );
    }
    json.push_str("    },\n");

    // ---- end-to-end apps ------------------------------------------------
    json.push_str("    \"apps_frames_per_sec\": {\n");
    // `jpip1_fused` is the tile-granular decode+IDCT fusion of the same
    // graph — the configuration the BENCH_native.json jpip fps floor in
    // scripts/bench.sh is gated on.
    let apps: [(App, &str, bool); 4] = [
        (App::Pip1, "pip1", false),
        (App::Blur3, "blur3", false),
        (App::Jpip1, "jpip1", false),
        (App::Jpip1, "jpip1_fused", true),
    ];
    for (ai, &(app, name, fused)) in apps.iter().enumerate() {
        eprintln!("throughput: {name} (small, {frames} frames, best of {repeats})");
        let cfg = AppConfig::small(app).frames(frames);
        let built = if fused { build_fused(cfg) } else { build(cfg) };
        let _ = writeln!(json, "        \"{name}\": {{");
        for (wi, &workers) in WORKERS.iter().enumerate() {
            let fifo = run_best(&built.spec, frames, workers, SchedPolicy::Fifo, repeats);
            let ws = run_best(&built.spec, frames, workers, SchedPolicy::Default, repeats);
            let (ff, fw) = (frames_per_sec(&fifo), frames_per_sec(&ws));
            eprintln!(
                "  workers={workers}: centralized {ff:>8.1} fps | work-stealing {fw:>8.1} fps"
            );
            let _ = writeln!(
                json,
                "            \"workers_{workers}\": {{ \"centralized\": {ff:.1}, \"work_stealing\": {fw:.1} }}{}",
                if wi + 1 < WORKERS.len() { "," } else { "" }
            );
        }
        let _ = writeln!(
            json,
            "        }}{}",
            if ai + 1 < apps.len() { "," } else { "" }
        );
    }
    json.push_str("    }\n}\n");

    match std::env::var("THROUGHPUT_OUT") {
        Ok(path) => {
            std::fs::write(&path, &json).expect("write THROUGHPUT_OUT");
            eprintln!("throughput: wrote {path}");
        }
        Err(_) => print!("{json}"),
    }

    // The acceptance bar lives in scripts/bench.sh; echo the headline here
    // so an interactive `cargo bench` run shows it too.
    for (workers, speedup) in speedups {
        eprintln!("throughput: micro speedup at {workers} worker(s): {speedup:.2}x");
    }
}
