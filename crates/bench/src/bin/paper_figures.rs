//! `paper-figures` — regenerate the paper's evaluation figures.
//!
//! ```text
//! paper-figures --fig 8            Figure 8 (sequential overhead)
//! paper-figures --fig 9            Figure 9 (speedup on 1..=9 nodes)
//! paper-figures --fig 10           Figure 10 (reconfiguration overhead)
//! paper-figures --fig 7            Figure 7 (JPiP task graph, DOT)
//! paper-figures --cache-stats      §4.1 cache-miss comparison
//! paper-figures --predict          SPC prediction vs simulation (Fig. 1)
//! paper-figures --trace <app>      record a flight-recorder trace of one
//!                                  simulated run (pip, pip2, pip12, jpip,
//!                                  jpip2, jpip12, blur, blur5, blur35);
//!                                  writes <app>-trace.json (Chrome/Perfetto)
//!                                  and prints the per-core utilization
//!                                  summary
//! paper-figures --insight <app>    trace one simulated run and print the
//!                                  full insight report: critical path,
//!                                  stall attribution and the bottleneck
//!                                  table (same app names as --trace)
//! paper-figures --fig all          everything
//!
//! options:
//!   --scale small|paper   (default: paper)
//!   --frames N            override the per-app frame count
//!   --nodes a,b,c         node sweep (default: 1..=9)
//!   --cores N             simulated cores for --trace (default: 4)
//! ```
//!
//! Absolute cycle counts come from this repository's SpaceCAKE tile model;
//! compare *shapes* against the paper (see `EXPERIMENTS.md`).

use apps::experiment::{run_sim_traced, App, AppConfig, Scale};
use bench::{cache_comparison, figure10, figure7_dot, figure8, figure9, prediction_validation};
use hinch::trace::export::{chrome_trace_json, utilization_summary};
use std::process::ExitCode;

struct Options {
    fig: String,
    scale: Scale,
    frames: Option<u64>,
    nodes: Vec<usize>,
    cache_stats: bool,
    predict: bool,
    trace: Option<String>,
    insight: Option<String>,
    cores: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        fig: String::new(),
        scale: Scale::Paper,
        frames: None,
        nodes: (1..=9).collect(),
        cache_stats: false,
        predict: false,
        trace: None,
        insight: None,
        cores: 4,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fig" => opts.fig = args.next().ok_or("--fig needs a value")?,
            "--scale" => {
                opts.scale = match args.next().as_deref() {
                    Some("small") => Scale::Small,
                    Some("paper") => Scale::Paper,
                    other => return Err(format!("bad --scale {other:?}")),
                }
            }
            "--frames" => {
                opts.frames = Some(
                    args.next()
                        .ok_or("--frames needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --frames: {e}"))?,
                )
            }
            "--nodes" => {
                opts.nodes = args
                    .next()
                    .ok_or("--nodes needs a value")?
                    .split(',')
                    .map(|n| {
                        n.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("bad node: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--cache-stats" => opts.cache_stats = true,
            "--predict" => opts.predict = true,
            "--trace" => opts.trace = Some(args.next().ok_or("--trace needs an app name")?),
            "--insight" => opts.insight = Some(args.next().ok_or("--insight needs an app name")?),
            "--cores" => {
                opts.cores = args
                    .next()
                    .ok_or("--cores needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --cores: {e}"))?;
                if opts.cores == 0 {
                    return Err("--cores must be at least 1".into());
                }
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if opts.fig.is_empty()
        && !opts.cache_stats
        && !opts.predict
        && opts.trace.is_none()
        && opts.insight.is_none()
    {
        return Err("nothing to do: pass --fig 7|8|9|10|all, --trace <app>, \
                    --insight <app>, --cache-stats and/or --predict"
            .into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("paper-figures: {e}");
            return ExitCode::from(2);
        }
    };
    let all = opts.fig == "all";
    if all || opts.fig == "7" {
        print_fig7(&opts);
    }
    if all || opts.fig == "8" {
        print_fig8(&opts);
    }
    if all || opts.fig == "9" {
        print_fig9(&opts);
    }
    if all || opts.fig == "10" {
        print_fig10(&opts);
    }
    if opts.cache_stats || all {
        print_cache_stats(&opts);
    }
    if opts.predict || all {
        print_prediction(&opts);
    }
    if let Some(name) = &opts.trace {
        if let Err(e) = run_trace(&opts, name) {
            eprintln!("paper-figures: {e}");
            return ExitCode::from(2);
        }
    }
    if let Some(name) = &opts.insight {
        if let Err(e) = run_insight(&opts, name) {
            eprintln!("paper-figures: {e}");
            return ExitCode::from(2);
        }
    }
    ExitCode::SUCCESS
}

/// Map a command-line app name (case/punctuation-insensitive) to an [`App`].
fn parse_app(name: &str) -> Option<App> {
    let key: String = name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_lowercase();
    Some(match key.as_str() {
        "pip" | "pip1" => App::Pip1,
        "pip2" => App::Pip2,
        "pip12" => App::Pip12,
        "jpip" | "jpip1" => App::Jpip1,
        "jpip2" => App::Jpip2,
        "jpip12" => App::Jpip12,
        "blur" | "blur3" | "blur3x3" => App::Blur3,
        "blur5" | "blur5x5" => App::Blur5,
        "blur35" => App::Blur35,
        _ => return None,
    })
}

/// `--trace <app>`: run one app on the simulator with the flight recorder
/// attached, write the Chrome-trace JSON next to the working directory and
/// print the per-core utilization summary.
fn run_trace(opts: &Options, name: &str) -> Result<(), String> {
    let app = parse_app(name).ok_or_else(|| {
        format!(
            "unknown app '{name}' (try pip, pip2, pip12, jpip, jpip2, jpip12, blur, blur5, blur35)"
        )
    })?;
    let mut cfg = match opts.scale {
        Scale::Paper => AppConfig::paper(app),
        Scale::Small => AppConfig::small(app),
    };
    if let Some(frames) = opts.frames {
        cfg = cfg.frames(frames);
    }
    println!(
        "== trace: {} — {} frames on {} simulated cores ==",
        app.label(),
        cfg.frames,
        opts.cores
    );
    let (report, recorder) = run_sim_traced(cfg, opts.cores);
    let events = recorder.events();
    let path = format!("{}-trace.json", name.to_lowercase());
    std::fs::write(&path, chrome_trace_json(&events, recorder.clock()))
        .map_err(|e| format!("writing {path}: {e}"))?;
    println!(
        "{} events over {} cycles ({} iterations, {} reconfigurations)",
        events.len(),
        report.cycles,
        report.iterations,
        report.reconfigs
    );
    println!("wrote {path} — open with Perfetto (ui.perfetto.dev) or chrome://tracing");
    println!();
    println!("{}", utilization_summary(&events, recorder.clock()));
    Ok(())
}

/// `--insight <app>`: trace one simulated run and print the full insight
/// report (critical path, stall attribution, bottleneck table).
fn run_insight(opts: &Options, name: &str) -> Result<(), String> {
    let app = parse_app(name).ok_or_else(|| {
        format!(
            "unknown app '{name}' (try pip, pip2, pip12, jpip, jpip2, jpip12, blur, blur5, blur35)"
        )
    })?;
    let mut cfg = match opts.scale {
        Scale::Paper => AppConfig::paper(app),
        Scale::Small => AppConfig::small(app),
    };
    if let Some(frames) = opts.frames {
        cfg = cfg.frames(frames);
    }
    println!(
        "== insight: {} — {} frames on {} simulated cores ==",
        app.label(),
        cfg.frames,
        opts.cores
    );
    let (_, recorder) = run_sim_traced(cfg, opts.cores);
    let report = insight::analyze(&recorder.events(), recorder.clock());
    print!("{}", insight::render_human(&report));
    Ok(())
}

fn print_prediction(opts: &Options) {
    println!("== SPC performance prediction vs simulation ==");
    println!("(calibrated from the 1-core profile; Fig. 1's estimation tool)");
    print!("{:<10}", "app");
    for n in &opts.nodes {
        print!(" {:>8}", format!("n={n}"));
    }
    println!();
    let rows = prediction_validation(opts.scale, &opts.nodes, opts.frames);
    for app in App::STATIC {
        print!("{:<10}", app.label());
        for row in rows.iter().filter(|r| r.app == app) {
            print!(" {:>+7.1}%", row.error_pct());
        }
        println!();
    }
    println!("(prediction error; + = predicted slower than simulated)");
    println!();
}

fn print_fig7(opts: &Options) {
    println!("== Figure 7: JPiP task graph (Graphviz DOT) ==");
    println!("{}", figure7_dot(opts.scale));
}

fn print_fig8(opts: &Options) {
    println!("== Figure 8: sequential overhead (cycles x 1,000,000) ==");
    println!(
        "{:<10} {:>8} {:>16} {:>16} {:>10}   paper",
        "app", "frames", "sequential", "XSPCL", "overhead"
    );
    let paper = ["~5%", "~5%", "~18%", "~18%", "<1.1%", "<1.1%"];
    for (row, paper_val) in figure8(opts.scale, opts.frames).iter().zip(paper) {
        println!(
            "{:<10} {:>8} {:>16.1} {:>16.1} {:>9.1}%   {}",
            row.app.label(),
            row.frames,
            row.sequential_cycles as f64 / 1e6,
            row.xspcl_cycles as f64 / 1e6,
            row.overhead_pct(),
            paper_val,
        );
    }
    println!();
}

fn print_fig9(opts: &Options) {
    println!("== Figure 9: speedup vs fastest sequential version ==");
    print!("{:<10}", "app");
    for n in &opts.nodes {
        print!(" {:>6}", format!("n={n}"));
    }
    println!();
    for series in figure9(opts.scale, &opts.nodes, opts.frames) {
        print!("{:<10}", series.app.label());
        for (_, _, speedup) in &series.points {
            print!(" {speedup:>6.2}");
        }
        println!();
    }
    println!("(paper: all scale well; Blur best, JPiP worst)");
    println!();
}

fn print_fig10(opts: &Options) {
    println!("== Figure 10: reconfiguration overhead (%) ==");
    print!("{:<10}", "app");
    for n in &opts.nodes {
        print!(" {:>7}", format!("n={n}"));
    }
    println!();
    for series in figure10(opts.scale, &opts.nodes, opts.frames) {
        print!("{:<10}", series.app.label());
        for (_, _, _, overhead) in &series.points {
            print!(" {overhead:>6.1}%");
        }
        println!();
    }
    println!("(paper: below 15%, increasing with the number of nodes)");
    println!();
}

fn print_cache_stats(opts: &Options) {
    println!("== §4.1 profiling: cache misses, XSPCL vs sequential ==");
    println!(
        "{:<10} {:>14} {:>14} {:>9}  {:>14} {:>14}",
        "app", "xspcl L1 miss", "seq L1 miss", "ratio", "xspcl memcyc", "seq memcyc"
    );
    let frames = opts.frames.unwrap_or(8);
    let mut gates = Vec::new();
    for app in [App::Jpip1, App::Pip1, App::Blur3] {
        let c = cache_comparison(app, opts.scale, frames);
        println!(
            "{:<10} {:>14} {:>14} {:>8.2}x {:>14} {:>14}",
            c.app.label(),
            c.xspcl.l1_misses,
            c.sequential.l1_misses,
            c.l1_ratio(),
            c.xspcl.mem_cycles,
            c.sequential.mem_cycles,
        );
        if let (Some(fused), Some(ratio)) = (&c.fused, c.fused_l1_ratio()) {
            println!(
                "{:<10} {:>14} {:>14} {:>8.2}x {:>14} {:>14}",
                format!("{} fused", c.app.label()),
                fused.l1_misses,
                c.sequential.l1_misses,
                ratio,
                fused.mem_cycles,
                c.sequential.mem_cycles,
            );
            gates.push((c.app, c.l1_ratio(), ratio));
        }
    }
    println!("(paper: JPiP XSPCL has significantly more misses; Blur identical)");
    // One line per fused app in `key=value` form so scripts/bench.sh can
    // gate the post-fusion ratio without re-deriving it from the table.
    for (app, unfused, fused) in gates {
        println!(
            "cache-gate: app={} unfused_l1_ratio={unfused:.3} fused_l1_ratio={fused:.3}",
            app.label()
        );
    }
    println!();
}
