//! Figure and table regeneration for the paper's evaluation (§4).
//!
//! Every function here reproduces one figure of the paper on the
//! simulated SpaceCAKE tile:
//!
//! * [`figure8`] — sequential overhead: XSPCL application vs hand-written
//!   sequential version on one core (paper: PiP ≈ +5 %, JPiP ≈ +18 %,
//!   Blur ≈ ±1 %);
//! * [`figure9`] — speedup on 1..=9 cores relative to the fastest
//!   sequential version (paper: good efficiency everywhere; Blur best,
//!   JPiP worst);
//! * [`figure10`] — reconfiguration overhead: run time of PiP-12 /
//!   JPiP-12 / Blur-35 divided by the average of their static
//!   counterparts, minus one (paper: below 15 %, growing with the node
//!   count);
//! * [`figure7_dot`] — the JPiP task graph as Graphviz DOT;
//! * [`cache_comparison`] — the §4.1 profiling claim: the XSPCL JPiP has a
//!   markedly higher cache-miss count than its fused sequential baseline.
//!
//! The absolute cycle numbers belong to *our* tile model, not the authors'
//! proprietary simulator — the reproduction targets the qualitative
//! shapes. `EXPERIMENTS.md` records paper-vs-measured values.

use apps::experiment::{run_sim, sequential_cycles, App, AppConfig, Scale};
use hinch::meter::PlatformStats;

/// One row of the Figure 8 comparison.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    pub app: App,
    pub frames: u64,
    pub sequential_cycles: u64,
    pub xspcl_cycles: u64,
}

impl Fig8Row {
    /// XSPCL overhead relative to the sequential version, in percent.
    pub fn overhead_pct(&self) -> f64 {
        (self.xspcl_cycles as f64 / self.sequential_cycles as f64 - 1.0) * 100.0
    }
}

/// Figure 8: sequential overhead of the six static applications.
pub fn figure8(scale: Scale, frames_override: Option<u64>) -> Vec<Fig8Row> {
    App::STATIC
        .iter()
        .map(|&app| {
            let mut cfg = match scale {
                Scale::Paper => AppConfig::paper(app),
                Scale::Small => AppConfig::small(app),
            };
            if let Some(f) = frames_override {
                cfg = cfg.frames(f);
            }
            let sequential = sequential_cycles(cfg);
            let xspcl = run_sim(cfg, 1).cycles;
            Fig8Row {
                app,
                frames: cfg.frames,
                sequential_cycles: sequential,
                xspcl_cycles: xspcl,
            }
        })
        .collect()
}

/// One speedup series of Figure 9.
#[derive(Debug, Clone)]
pub struct Fig9Series {
    pub app: App,
    /// Cycles of the fastest sequential version (the baseline of the
    /// speedup; for Blur this is the parallel version at one node, as in
    /// the paper).
    pub reference_cycles: u64,
    /// `(nodes, cycles, speedup)` per sweep point.
    pub points: Vec<(usize, u64, f64)>,
}

/// Figure 9: speedup of the six static applications on `nodes` cores.
pub fn figure9(scale: Scale, nodes: &[usize], frames_override: Option<u64>) -> Vec<Fig9Series> {
    App::STATIC
        .iter()
        .map(|&app| {
            let mut cfg = match scale {
                Scale::Paper => AppConfig::paper(app),
                Scale::Small => AppConfig::small(app),
            };
            if let Some(f) = frames_override {
                cfg = cfg.frames(f);
            }
            let sequential = sequential_cycles(cfg);
            let one_node = run_sim(cfg, 1).cycles;
            // "All speedup measurements are relative to the fastest
            // sequential version of the application."
            let reference_cycles = sequential.min(one_node);
            let points = nodes
                .iter()
                .map(|&n| {
                    let cycles = if n == 1 {
                        one_node
                    } else {
                        run_sim(cfg, n).cycles
                    };
                    (n, cycles, reference_cycles as f64 / cycles as f64)
                })
                .collect();
            Fig9Series {
                app,
                reference_cycles,
                points,
            }
        })
        .collect()
}

/// One overhead series of Figure 10.
#[derive(Debug, Clone)]
pub struct Fig10Series {
    pub app: App,
    /// `(nodes, reconfig_cycles, static_avg_cycles, overhead_pct)`.
    pub points: Vec<(usize, u64, u64, f64)>,
}

/// Figure 10: reconfiguration overhead of the three reconfigurable
/// applications, per node count.
pub fn figure10(scale: Scale, nodes: &[usize], frames_override: Option<u64>) -> Vec<Fig10Series> {
    App::RECONFIG
        .iter()
        .map(|&app| {
            let mk = |a: App| {
                let mut cfg = match scale {
                    Scale::Paper => AppConfig::paper(a),
                    Scale::Small => AppConfig::small(a),
                };
                // the reconfigurable app and its counterparts must process
                // the same frame count
                cfg = cfg.frames(frames_override.unwrap_or(app.paper_frames()));
                cfg
            };
            let points = nodes
                .iter()
                .map(|&n| {
                    let reconfig = run_sim(mk(app), n).cycles;
                    let counterparts = app.static_counterparts();
                    let static_avg = counterparts
                        .iter()
                        .map(|&c| run_sim(mk(c), n).cycles)
                        .sum::<u64>()
                        / counterparts.len() as u64;
                    let overhead = (reconfig as f64 / static_avg as f64 - 1.0) * 100.0;
                    (n, reconfig, static_avg, overhead)
                })
                .collect();
            Fig10Series { app, points }
        })
        .collect()
}

/// The JPiP task graph (the paper's Fig. 7) as Graphviz DOT.
pub fn figure7_dot(scale: Scale) -> String {
    let cfg = match scale {
        Scale::Paper => AppConfig::paper(App::Jpip1),
        Scale::Small => AppConfig::small(App::Jpip1),
    };
    let built = apps::experiment::build(cfg);
    xspcl::codegen::to_dot(&built.spec)
}

/// One row of the prediction-vs-simulation validation (the Fig. 1
/// performance-estimation tool, validated against the simulator).
#[derive(Debug, Clone)]
pub struct PredictRow {
    pub app: App,
    pub cores: usize,
    pub predicted: f64,
    pub simulated: u64,
}

impl PredictRow {
    /// Relative prediction error (positive = prediction too high).
    pub fn error_pct(&self) -> f64 {
        (self.predicted / self.simulated as f64 - 1.0) * 100.0
    }
}

/// Calibrate the SPC predictor from a one-core profile of each static
/// application, then predict the node sweep and compare with simulation.
pub fn prediction_validation(
    scale: Scale,
    nodes: &[usize],
    frames_override: Option<u64>,
) -> Vec<PredictRow> {
    let mut rows = Vec::new();
    for &app in &App::STATIC {
        let mut cfg = match scale {
            Scale::Paper => AppConfig::paper(app),
            Scale::Small => AppConfig::small(app),
        };
        if let Some(f) = frames_override {
            cfg = cfg.frames(f);
        }
        // calibrate from one core
        let profile_run = run_sim(cfg, 1);
        let mut db = predict::CostDb::new();
        db.absorb_profile(&profile_run.per_node);
        // NOTE: the profile's mean cycles include the job_base overhead;
        // predict with zero extra RTS base cost to avoid double counting,
        // but keep the dispatch term for multi-core predictions.
        let built = apps::experiment::build(cfg);
        for &cores in nodes {
            let mut pcfg = predict::PredictConfig::new(cores, cfg.frames);
            pcfg.overhead.job_base = 0;
            let prediction = predict::predict(&built.spec, &db, &pcfg);
            let simulated = if cores == 1 {
                profile_run.cycles
            } else {
                run_sim(cfg, cores).cycles
            };
            rows.push(PredictRow {
                app,
                cores,
                predicted: prediction.makespan,
                simulated,
            });
        }
    }
    rows
}

/// Cache statistics of the XSPCL run vs the fused sequential baseline
/// (§4.1's profiling observation).
pub struct CacheComparison {
    pub app: App,
    pub xspcl: PlatformStats,
    pub sequential: PlatformStats,
    /// Same XSPCL graph with tile-granular decode+IDCT fusion — the
    /// post-fusion side of the Fig. 8 gate. `None` for apps the fusion
    /// transform does not apply to (everything but JPiP).
    pub fused: Option<PlatformStats>,
}

impl CacheComparison {
    /// XSPCL L1-miss count over the sequential baseline's (§4.1's 3.19×).
    pub fn l1_ratio(&self) -> f64 {
        self.xspcl.l1_misses as f64 / self.sequential.l1_misses.max(1) as f64
    }

    /// Fused-XSPCL L1-miss count over the sequential baseline's — the
    /// number the `scripts/bench.sh` gate holds at ≤ 2.0 for JPiP-1.
    pub fn fused_l1_ratio(&self) -> Option<f64> {
        self.fused
            .as_ref()
            .map(|f| f.l1_misses as f64 / self.sequential.l1_misses.max(1) as f64)
    }
}

/// Compare cache behaviour of the XSPCL app and its baseline on one core.
pub fn cache_comparison(app: App, scale: Scale, frames: u64) -> CacheComparison {
    let cfg = match scale {
        Scale::Paper => AppConfig::paper(app).frames(frames),
        Scale::Small => AppConfig::small(app).frames(frames),
    };
    let xspcl = run_sim(cfg, 1).stats;
    let fused = match app {
        App::Jpip1 | App::Jpip2 => Some(apps::experiment::run_sim_fused(cfg, 1).stats),
        _ => None,
    };
    // rerun the baseline on a fresh solo machine to get its stats
    let built = apps::experiment::build(cfg);
    let mut solo = spacecake::Solo::new();
    let assets = built.assets.clone();
    solo.run(|meter| {
        apps::experiment::run_baseline(cfg, &assets, meter);
    });
    CacheComparison {
        app,
        xspcl,
        sequential: solo.stats(),
        fused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure8_small_has_six_rows() {
        let rows = figure8(Scale::Small, Some(4));
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.sequential_cycles > 0);
            assert!(row.xspcl_cycles > 0);
            assert!(
                row.overhead_pct() > -30.0 && row.overhead_pct() < 150.0,
                "{}: overhead {:.1}% out of plausible range",
                row.app.label(),
                row.overhead_pct()
            );
        }
    }

    #[test]
    fn figure9_small_speedup_grows() {
        let series = figure9(Scale::Small, &[1, 2, 4], Some(6));
        for s in &series {
            let s1 = s.points[0].2;
            let s4 = s.points[2].2;
            assert!(
                s4 > s1,
                "{}: speedup should grow with cores ({s1:.2} → {s4:.2})",
                s.app.label()
            );
        }
    }

    #[test]
    fn figure10_small_overhead_positive() {
        let series = figure10(Scale::Small, &[2], Some(24));
        assert_eq!(series.len(), 3);
        for s in &series {
            let (_, reconfig, static_avg, overhead) = s.points[0];
            assert!(reconfig > 0 && static_avg > 0);
            assert!(
                overhead > -10.0 && overhead < 100.0,
                "{}: overhead {overhead:.1}% implausible",
                s.app.label()
            );
        }
    }

    #[test]
    fn fused_jpip_cache_ratio_meets_fig8_gate() {
        // The Fig. 8 acceptance claim, pinned deterministically on the
        // simulator's tile model at the experiment's own configuration
        // (paper scale, 8 frames — the setup that measured §4.1's
        // 3.19×): tile-granular decode+IDCT fusion cuts JPiP-1's
        // XSPCL/sequential L1-miss ratio to ≤ 2.0×. `scripts/bench.sh`
        // re-checks the same bound on the committed figure run; this
        // test keeps it from regressing in plain `cargo test`.
        let c = cache_comparison(App::Jpip1, Scale::Paper, 8);
        let unfused = c.l1_ratio();
        let fused = c.fused_l1_ratio().expect("JPiP-1 has a fused variant");
        assert!(
            fused < unfused,
            "fusion did not reduce the L1-miss ratio: {fused:.2}x !< {unfused:.2}x"
        );
        assert!(
            fused <= 2.0,
            "fused JPiP-1 L1-miss ratio {fused:.2}x above the 2.0x gate"
        );
        // Blur has no fused variant — the Option stays honest.
        assert!(cache_comparison(App::Blur3, Scale::Small, 4)
            .fused
            .is_none());
    }

    #[test]
    fn figure7_dot_shows_jpip_boxes() {
        let dot = figure7_dot(Scale::Small);
        for class in ["mjpeg_source", "jpeg_decode", "idct", "downscale", "blend"] {
            assert!(dot.contains(class), "missing {class} in DOT");
        }
    }
}
