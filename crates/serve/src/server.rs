//! The serving front-end: TCP frame-protocol ingress over a shared
//! [`Runtime`], plus a minimal HTTP/1.1 gateway (see [`crate::http`]).
//!
//! One handler thread per TCP connection; requests on a connection are
//! processed in order. All connections share the one runtime, so graphs
//! spawned over one connection can be fed or drained over another (ids
//! are global).
//!
//! Graph specs come from the paper's application corpus
//! ([`apps::experiment::App`]): a `Spawn` request names an app id
//! (`pip1`, `jpip2`, `blur35`, …) and the server builds an *isolated*
//! instance — inputs shared refcount-only with the process-wide cache,
//! captures private — so any number of instances of the same app serve
//! concurrently (see [`apps::experiment::build_isolated`]).

use crate::json::{array, JsonObject};
use crate::protocol::{
    write_frame, Request, Response, WireDiagnostic, ALL_GRAPHS, MAX_FRAME, SEVERITY_ERROR,
    SEVERITY_WARNING,
};
use crate::telemetry::{self, AdaptStatus, Telemetry};
use adapt::{
    Action, CandidateConfig, Controller, Decision, Lattice, Planner, Quality, SloPolicy, WindowObs,
};
use analyze::{AnalyzeOptions, Diagnostics, Severity};
use apps::experiment::{
    build_isolated, default_slices, reconfig_handle, App, AppConfig, ReconfigHandle, Scale,
};
use apps::registry::{registry, AppAssets};
use hinch::{Event, GraphId, GraphStats, Runtime, RuntimeConfig, ServeError, SpawnOpts};
use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Read-timeout granularity on accepted frame-protocol streams: how
/// often a handler blocked waiting for the next request re-checks the
/// stop flag, so [`Server::run`]'s join cannot hang on an idle-but-
/// connected client after a shutdown request.
const READ_POLL: Duration = Duration::from_millis(250);

/// Cadence of the background telemetry collector: each wakeup drains the
/// flight recorder (wait-free for the workers) and closes one rolling-
/// window interval. Also bounds shutdown latency of the collector
/// thread, so it doubles as its stop-poll granularity.
const COLLECT_INTERVAL: Duration = Duration::from_millis(250);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads of the shared runtime.
    pub workers: usize,
    /// Scale the apps are built at.
    pub scale: Scale,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            scale: Scale::Small,
        }
    }
}

/// Render one [`GraphStats`] as a JSON object, via the crate's single
/// JSON writer ([`crate::json`] — the workspace is dependency-free by
/// design, so JSON is hand-rolled, but only once).
pub fn stats_json(s: &GraphStats) -> String {
    JsonObject::new()
        .num("id", s.id.0)
        .str("label", &s.label)
        .num("submitted", s.submitted)
        .num("completed", s.completed)
        .num("inflight", s.inflight)
        .num("reconfigs", s.reconfigs)
        .num("jobs_executed", s.jobs_executed)
        .f1("latency_mean_ns", s.latency_mean_ns)
        .num("latency_p50_ns", s.latency_p50_ns)
        .num("latency_p99_ns", s.latency_p99_ns)
        .num("shed", s.shed)
        .opt_str("failure", s.failure.as_deref())
        .build()
}

fn stats_array_json(all: &[GraphStats]) -> String {
    array(all.iter().map(stats_json))
}

/// Why a request was not served: an operational error (unknown graph,
/// backpressure, bad input) or a spawn *rejected* by the static analyzer
/// with its structured diagnostics.
pub(crate) enum Refusal {
    Error(String),
    Rejected(Vec<WireDiagnostic>),
}

impl From<String> for Refusal {
    fn from(msg: String) -> Self {
        Refusal::Error(msg)
    }
}

/// Flatten analyzer diagnostics for the wire (spans and fix-its stay
/// server-side; the stable code + severity + message travel).
pub(crate) fn wire_diagnostics(diags: &Diagnostics) -> Vec<WireDiagnostic> {
    diags
        .iter()
        .map(|d| WireDiagnostic {
            severity: match d.severity {
                Severity::Error => SEVERITY_ERROR,
                Severity::Warning => SEVERITY_WARNING,
            },
            code: d.code.to_string(),
            message: d.message.clone(),
        })
        .collect()
}

/// Gate a spawn on the analyzer's verdict: any `Severity::Error` finding
/// rejects the graph before it reaches the runtime. Warnings pass (the
/// client can still see them in the server log someday; they don't make
/// the graph unsound).
fn admit(diags: &Diagnostics) -> Result<(), Refusal> {
    if diags.has_errors() {
        Err(Refusal::Rejected(wire_diagnostics(diags)))
    } else {
        Ok(())
    }
}

/// One graph's closed-loop SLO governor: the `crates/adapt` controller
/// plus the app's external-reconfiguration handle and the last decision,
/// for telemetry exposition.
///
/// The live controller holds *quality-only* authority: its candidate
/// lattice is pinned to the graph's spawned slice count and depth, so
/// every relief/recovery move is a quality toggle — actuated as a
/// manager-queue event via [`Runtime::inject`], which the graph applies
/// at its next quiescent point. Slice / depth moves need a drain +
/// respawn (a new graph id) and live in the scenario harness
/// (`adapt::scenario`, `serve::load::run_burst_replay`) instead.
struct SloGov {
    app: App,
    controller: Controller,
    handle: ReconfigHandle,
    last: Option<Decision>,
}

/// The shared server state handler threads operate on.
pub(crate) struct Inner {
    pub(crate) runtime: Runtime,
    pub(crate) scale: Scale,
    workers: usize,
    pub(crate) stop: AtomicBool,
    /// Live-telemetry state: flight-recorder cursors + windowed analyzer.
    pub(crate) telemetry: Telemetry,
    /// Attached SLO governors, keyed by graph id. Ticked by the
    /// collector thread after each telemetry sample.
    adapt: Mutex<HashMap<u32, SloGov>>,
}

impl Inner {
    /// Execute one request against the runtime. Used by both the TCP and
    /// the HTTP front-end — the protocols differ, the semantics don't.
    pub(crate) fn handle(&self, req: Request) -> Response {
        match self.apply(req) {
            Ok(payload) => Response::Ok(payload),
            Err(Refusal::Error(e)) => Response::Err(e),
            Err(Refusal::Rejected(diags)) => Response::Rejected(diags),
        }
    }

    fn apply(&self, req: Request) -> Result<Vec<u8>, Refusal> {
        let serve = |r: Result<Vec<u8>, ServeError>| r.map_err(|e| Refusal::Error(e.to_string()));
        match req {
            Request::Spawn {
                app,
                pipeline_depth,
                max_backlog,
            } => {
                let app = App::parse(&app).ok_or(format!(
                    "unknown app '{app}' (expected one of pip1..blur35)"
                ))?;
                let built = build_isolated(AppConfig {
                    app,
                    scale: self.scale,
                    frames: 0, // frames are streamed in via Submit
                });
                // Static gate: the corpus self-checks clean, but specs
                // still pass through the analyzer so a corrupted build
                // (or a future app regression) is rejected with XA
                // diagnostics instead of admitted and left to misbehave.
                admit(&analyze::check_spec(&built.spec))?;
                self.spawn_spec(&built.spec, app.id(), pipeline_depth, max_backlog)
            }
            Request::SpawnXspcl {
                source,
                pipeline_depth,
                max_backlog,
            } => {
                // Full static analysis first (stubbed registry — no
                // component instantiation), so unsound documents are
                // rejected with their XA diagnostics before any real
                // elaboration work happens.
                let diags = analyze::check_source(&source, &AnalyzeOptions::default())
                    .map_err(|e| format!("unreadable XSPCL document: {e}"))?;
                admit(&diags)?;
                let assets = AppAssets::new();
                let elaborated =
                    xspcl::compile(&source, &registry(&assets)).map_err(|e| e.to_string())?;
                let label = format!("xspcl:{:.32}", doc_name(&source));
                self.spawn_spec(&elaborated.spec, &label, pipeline_depth, max_backlog)
            }
            Request::Submit { graph, frames } => serve(
                self.runtime
                    .submit(GraphId(graph), frames)
                    .map(|accepted| accepted.to_be_bytes().to_vec()),
            ),
            Request::Inject {
                graph,
                queue,
                kind,
                payload,
            } => serve(
                self.runtime
                    .inject(GraphId(graph), &queue, Event::with_payload(kind, payload))
                    .map(|()| Vec::new()),
            ),
            Request::Stats { graph } => {
                let json = if graph == ALL_GRAPHS {
                    stats_array_json(&self.runtime.all_stats())
                } else {
                    stats_json(
                        &self
                            .runtime
                            .stats(GraphId(graph))
                            .map_err(|e| e.to_string())?,
                    )
                };
                Ok(json.into_bytes())
            }
            Request::Drain { graph } => serve(
                self.runtime
                    .drain(GraphId(graph))
                    .map(|stats| stats_json(&stats).into_bytes()),
            ),
            Request::Telemetry { format } => Ok(self.telemetry_payload(format)?.into_bytes()),
            Request::AttachSlo {
                graph,
                target_p99_ns,
                low_watermark_bits,
                cooldown_ticks,
                min_samples,
                max_backlog,
            } => self.attach_slo(
                graph,
                SloPolicy {
                    target_p99_ns,
                    low_watermark: f64::from_bits(low_watermark_bits),
                    cooldown_ticks,
                    min_samples,
                    max_backlog,
                },
            ),
            Request::DetachSlo { graph } => self.detach_slo(graph),
            Request::Ping => Ok(Vec::new()),
            Request::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                Ok(Vec::new())
            }
        }
    }

    /// Sample the flight recorder and render one consistent telemetry
    /// snapshot in the requested format. Shared by the wire `Telemetry`
    /// opcode and the HTTP `GET /metrics` route.
    pub(crate) fn telemetry_payload(&self, format: u8) -> Result<String, Refusal> {
        self.telemetry.sample(&self.runtime);
        let live = self.telemetry.summary();
        let pool = self.runtime.telemetry();
        let stats = self.runtime.all_stats();
        let adapt = self.adapt_status();
        match format {
            telemetry::FORMAT_JSON => Ok(telemetry::telemetry_json(&pool, &stats, &live, &adapt)),
            telemetry::FORMAT_PROMETHEUS => {
                Ok(telemetry::prometheus_text(&pool, &stats, &live, &adapt))
            }
            telemetry::FORMAT_TABLE => Ok(telemetry::render_top(&pool, &live)),
            other => Err(Refusal::Error(format!(
                "unknown telemetry format {other} (0 json, 1 prometheus, 2 table)"
            ))),
        }
    }

    /// Attach (or replace) an SLO governor on a live graph. The graph
    /// must run one of the corpus's *reconfigurable* apps — only they
    /// carry a quality option the controller can actuate without a
    /// drain. The candidate lattice is pinned to the app's default slice
    /// count at depth 1 with an unbounded frame budget: the planner
    /// still orders the quality modes by predicted period (that ordering
    /// is what relief moves need), while absolute cycle budgets belong
    /// to the virtual scenario harness where deadline and period share
    /// units.
    fn attach_slo(&self, graph: u32, policy: SloPolicy) -> Result<Vec<u8>, Refusal> {
        let stats = self
            .runtime
            .stats(GraphId(graph))
            .map_err(|e| Refusal::Error(e.to_string()))?;
        let app = App::parse(&stats.label).ok_or_else(|| {
            Refusal::Error(format!(
                "graph {graph} runs '{}', which is not a corpus app",
                stats.label
            ))
        })?;
        let handle = reconfig_handle(app).ok_or_else(|| {
            Refusal::Error(format!(
                "app '{}' has no quality option to govern (reconfigurable: pip12, jpip12, blur35)",
                app.id()
            ))
        })?;
        policy.validate().map_err(Refusal::Error)?;
        let target_p99_ns = policy.target_p99_ns;
        let slices = default_slices(app, self.scale);
        let lattice = Lattice {
            slices: vec![slices],
            depths: vec![1],
        };
        let rated = adapt::plan::rate_app(app, self.scale, &lattice, self.workers);
        let candidates = rated.len();
        let planner = Planner::new(rated, f64::MAX);
        let initial = CandidateConfig {
            quality: Quality::Full,
            slices,
            pipeline_depth: 1,
        };
        // Set-style handles are idempotent: sync the graph to the
        // controller's optimistic initial quality so belief and graph
        // state agree from the first tick. Toggle-style handles have no
        // idempotent sync; the controller steers relatively.
        if !handle.toggles {
            let _ = self.runtime.inject(
                GraphId(graph),
                handle.queue,
                Event::with_payload(handle.event, handle.full_payload),
            );
        }
        let json = JsonObject::new()
            .num("graph", graph)
            .str("app", app.id())
            .str("config", &initial.label())
            .num("target_p99_ns", target_p99_ns)
            .num("candidates", candidates as u64)
            .build();
        self.adapt.lock().unwrap().insert(
            graph,
            SloGov {
                app,
                controller: Controller::new(policy, planner, initial),
                handle,
                last: None,
            },
        );
        Ok(json.into_bytes())
    }

    /// Detach a graph's SLO governor; reports its final counters.
    fn detach_slo(&self, graph: u32) -> Result<Vec<u8>, Refusal> {
        let gov =
            self.adapt.lock().unwrap().remove(&graph).ok_or_else(|| {
                Refusal::Error(format!("no SLO policy attached to graph {graph}"))
            })?;
        let c = gov.controller.counters();
        Ok(JsonObject::new()
            .num("graph", graph)
            .str("app", gov.app.id())
            .num("ticks", gov.controller.ticks())
            .num("hold", c.hold)
            .num("toggle", c.toggle)
            .num("resize", c.resize)
            .num("step_depth", c.step_depth)
            .build()
            .into_bytes())
    }

    /// One controller tick for every attached governor, fed from the
    /// rolling telemetry window closed by the latest sample. Quality
    /// toggles are actuated as manager-queue events ([`Runtime::inject`]
    /// applies them at the graph's next quiescent point); governors
    /// whose graph has been drained are reaped.
    pub(crate) fn adapt_tick(&self) {
        let mut govs = self.adapt.lock().unwrap();
        if govs.is_empty() {
            return;
        }
        govs.retain(|gid, _| self.runtime.stats(GraphId(*gid)).is_ok());
        let live = self.telemetry.summary();
        for (gid, gov) in govs.iter_mut() {
            let Some(w) = live.graphs.iter().find(|g| g.graph == *gid) else {
                continue; // no window yet (graph younger than a tick)
            };
            let d = gov.controller.observe(&WindowObs::from_window(w));
            if let Action::Toggle { to } = d.action {
                let payload = match to {
                    Quality::Degraded => gov.handle.degraded_payload,
                    Quality::Full => gov.handle.full_payload,
                };
                // A failed inject means the graph raced a drain; the
                // governor is reaped on the next tick.
                let _ = self.runtime.inject(
                    GraphId(*gid),
                    gov.handle.queue,
                    Event::with_payload(gov.handle.event, payload),
                );
            }
            gov.last = Some(d);
        }
    }

    /// Snapshot every governor for the telemetry exporters, in graph-id
    /// order (deterministic output for a fixed state).
    fn adapt_status(&self) -> Vec<AdaptStatus> {
        let govs = self.adapt.lock().unwrap();
        let mut out: Vec<AdaptStatus> = govs
            .iter()
            .map(|(gid, gov)| {
                let c = gov.controller.counters();
                let cur = gov.controller.current();
                AdaptStatus {
                    graph: *gid,
                    app: gov.app.id().to_string(),
                    config: cur.label(),
                    quality_full: cur.quality == Quality::Full,
                    target_p99_ns: gov.controller.policy().target_p99_ns,
                    ticks: gov.controller.ticks(),
                    hold: c.hold,
                    toggle: c.toggle,
                    resize: c.resize,
                    step_depth: c.step_depth,
                    last_action: gov
                        .last
                        .as_ref()
                        .map(|d| d.action.label().to_string())
                        .unwrap_or_default(),
                    last_reason: gov
                        .last
                        .as_ref()
                        .map(|d| d.reason.to_string())
                        .unwrap_or_default(),
                }
            })
            .collect();
        out.sort_by_key(|a| a.graph);
        out
    }

    /// Instantiate and admit an analyzer-approved spec. Component
    /// factories can still panic (e.g. an XSPCL document naming an
    /// unregistered video asset — a resource question the static
    /// analyzer cannot settle); instantiation runs before the runtime
    /// mutates any shared state, so the panic is caught here and
    /// surfaced as a structured error instead of killing the connection
    /// handler.
    fn spawn_spec(
        &self,
        spec: &hinch::GraphSpec,
        label: &str,
        pipeline_depth: u32,
        max_backlog: u64,
    ) -> Result<Vec<u8>, Refusal> {
        let opts = SpawnOpts::new(label)
            .pipeline_depth(pipeline_depth.max(1) as usize)
            .max_backlog(max_backlog.max(1));
        let spawned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.runtime.spawn(spec, opts)
        }))
        .map_err(|payload| {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("component factory panicked");
            Refusal::Error(format!("spawn failed: {msg}"))
        })?;
        let id = spawned.map_err(|e| Refusal::Error(e.to_string()))?;
        Ok(id.0.to_be_bytes().to_vec())
    }
}

/// Best-effort application name out of an XSPCL document, for the graph
/// label (the document has already parsed by the time this runs — this
/// is cosmetic, not parsing).
fn doc_name(source: &str) -> &str {
    source
        .split_once("name=\"")
        .and_then(|(_, rest)| rest.split_once('"'))
        .map(|(name, _)| name)
        .unwrap_or("anonymous")
}

/// A bound, not-yet-running server. [`Server::run`] blocks until a
/// `Shutdown` request arrives (over TCP or HTTP).
pub struct Server {
    inner: Arc<Inner>,
    tcp: TcpListener,
    http: Option<TcpListener>,
}

impl Server {
    /// Bind the frame-protocol listener on `addr` and optionally the
    /// HTTP gateway on `http_addr`. Use port 0 for an ephemeral port and
    /// read it back via [`Server::tcp_addr`] / [`Server::http_addr`].
    pub fn bind(
        cfg: ServerConfig,
        addr: impl ToSocketAddrs,
        http_addr: Option<&str>,
    ) -> io::Result<Server> {
        let tcp = TcpListener::bind(addr)?;
        let http = match http_addr {
            Some(a) => Some(TcpListener::bind(a)?),
            None => None,
        };
        Ok(Server {
            inner: Arc::new(Inner {
                runtime: Runtime::new(RuntimeConfig::new(cfg.workers)),
                scale: cfg.scale,
                workers: cfg.workers,
                stop: AtomicBool::new(false),
                telemetry: Telemetry::new(),
                adapt: Mutex::new(HashMap::new()),
            }),
            tcp,
            http,
        })
    }

    pub fn tcp_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.tcp.local_addr()
    }

    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.http.as_ref().and_then(|l| l.local_addr().ok())
    }

    /// Accept and serve connections until shutdown. Handler threads for
    /// open connections exit when their peer disconnects or the next
    /// request completes after shutdown.
    pub fn run(self) -> io::Result<()> {
        let Server { inner, tcp, http } = self;
        let tcp_addr = tcp.local_addr()?;
        let mut joins = Vec::new();
        let http_addr = http.as_ref().and_then(|l| l.local_addr().ok());
        if let Some(http) = http {
            let inner = Arc::clone(&inner);
            joins.push(
                std::thread::Builder::new()
                    .name("serve-http".into())
                    .spawn(move || crate::http::accept_loop(http, inner, tcp_addr))?,
            );
        }
        // Collector: drains the flight recorder and closes one analyzer
        // interval at a fixed cadence, so the rolling window advances
        // even when nobody is scraping; each closed interval then feeds
        // one observation window to every attached SLO governor
        // (`adapt_tick`). Checks the stop flag every sleep slice, so
        // shutdown joins promptly.
        {
            let inner = Arc::clone(&inner);
            joins.push(
                std::thread::Builder::new()
                    .name("serve-telemetry".into())
                    .spawn(move || {
                        while !inner.stop.load(Ordering::SeqCst) {
                            std::thread::sleep(COLLECT_INTERVAL);
                            inner.telemetry.sample(&inner.runtime);
                            inner.adapt_tick();
                        }
                    })?,
            );
        }
        for conn in tcp.incoming() {
            if inner.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let inner = Arc::clone(&inner);
            joins.push(
                std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(stream, &inner);
                        // The connection that carried Shutdown unblocks
                        // the accept loop by poking it.
                        if inner.stop.load(Ordering::SeqCst) {
                            let _ = TcpStream::connect(tcp_addr);
                        }
                    })?,
            );
        }
        // Unblock the HTTP accept loop (shutdown may have arrived over
        // the frame protocol).
        if let Some(addr) = http_addr {
            let _ = TcpStream::connect(addr);
        }
        for j in joins {
            let _ = j.join();
        }
        inner.runtime.shutdown();
        Ok(())
    }
}

fn serve_connection(mut stream: TcpStream, inner: &Inner) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    while let Some(body) = read_frame_interruptible(&mut stream, &inner.stop)? {
        let resp = match Request::decode(&body) {
            Ok(req) => inner.handle(req),
            Err(e) => Response::Err(format!("bad request: {e}")),
        };
        let frame = resp.encode().unwrap_or_else(|e| {
            // `Response::Err` encoding is infallible (status byte + raw
            // UTF-8), so a failed payload still yields a clean frame.
            let mut b = format!("response encoding failed: {e}").into_bytes();
            b.insert(0, 1);
            b
        });
        write_frame(&mut stream, &frame)?;
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
    }
    Ok(())
}

/// [`crate::protocol::read_frame`] over a stream with a read timeout:
/// timeout wakeups re-check `stop` instead of tearing the connection
/// down, so an idle client keeps its connection across quiet periods yet
/// cannot block [`Server::run`]'s handler joins after shutdown. Partial
/// reads are buffered across wakeups — a slow client mid-frame never
/// desyncs the stream.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    if !read_full(stream, &mut len_buf, stop)? {
        return Ok(None); // clean EOF or shutdown at a frame boundary
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME}"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    if !read_full(stream, &mut body, stop)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "truncated frame",
        ));
    }
    Ok(Some(body))
}

/// Fill `buf`, tolerating read-timeout wakeups. Returns `Ok(false)`
/// when the peer closed or `stop` was raised before the first byte of
/// `buf` arrived; EOF or shutdown mid-buffer is an error.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(false)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    ))
                }
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return if filled == 0 {
                        Ok(false)
                    } else {
                        Err(io::Error::new(io::ErrorKind::TimedOut, "shutting down"))
                    };
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}
