//! `hinch-serve` — the serving runtime CLI.
//!
//! ```text
//! hinch-serve serve  [--addr 127.0.0.1:7070] [--http 127.0.0.1:7071]
//!                    [--workers N] [--scale small|paper]
//! hinch-serve load   [--graphs N] [--workers N] [--rate FPS]
//!                    [--duration-ms MS] [--seed S] [--mix pip1,blur3,...]
//!                    [--depth D] [--backlog B] [--no-burst] [--json PATH]
//! hinch-serve bench  [--json BENCH_serve.json] [--graphs N] [--duration-ms MS]
//! hinch-serve top    [--addr 127.0.0.1:7070] [--once] [--interval-ms MS] [--count N]
//! hinch-serve smoke  [--frames N]
//! hinch-serve scenario [--app pip12] [--seed S] [--stepped] [--execute] [--max-frames N]
//! ```
//!
//! * `serve` — run the front-end until a `Shutdown` request arrives;
//! * `load` — in-process open-loop load run, report as JSON;
//! * `bench` — the `BENCH_serve.json` producer: open-loop fleet run, the
//!   saturated multi-vs-solo throughput probe, the flight-recorder
//!   overhead A/B, and the closed-loop SLO scenario sweep (all gated in
//!   `scripts/bench.sh`);
//! * `scenario` — the seeded bursty-replay scenario (`crates/adapt`):
//!   prints the deterministic replay log (decision schedule, static
//!   sweep, adaptive-vs-best-static verdict); `--execute` additionally
//!   re-executes the decision schedule on the real runtime and prints
//!   the output digest. Byte-identical across runs of the same seed —
//!   `scripts/ci.sh` diffs two runs;
//! * `top` — live rolling-window view of a running server (throughput,
//!   p50/p99, backlog, dominant stall per graph), rendered server-side
//!   from the flight recorder; `--once` prints one snapshot and exits
//!   (deterministic for a fixed runtime state);
//! * `smoke` — end-to-end self-test over real sockets (used by
//!   `scripts/ci.sh`): start a server, push frames over TCP, inject a
//!   reconfiguration event, scrape and validate `GET /metrics`, render
//!   `top --once`, verify responses and clean shutdown.

use apps::experiment::{App, Scale};
use serve::load::{
    run_burst_replay, run_open_loop, run_saturated, run_telemetry_probe, LoadConfig, LoadReport,
    ReplayConfig, SaturatedReport, TelemetryProbe,
};
use serve::{Client, Server, ServerConfig, FORMAT_JSON, FORMAT_PROMETHEUS, FORMAT_TABLE};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: hinch-serve serve [--addr A] [--http A] [--workers N] [--scale small|paper]\n\
         \x20      hinch-serve load  [--graphs N] [--workers N] [--rate FPS] [--duration-ms MS]\n\
         \x20                        [--seed S] [--mix a,b,..] [--depth D] [--backlog B]\n\
         \x20                        [--no-burst] [--json PATH]\n\
         \x20      hinch-serve bench [--json PATH] [--graphs N] [--duration-ms MS]\n\
         \x20      hinch-serve top   [--addr A] [--once] [--interval-ms MS] [--count N]\n\
         \x20      hinch-serve smoke [--frames N]\n\
         \x20      hinch-serve scenario [--app pip12] [--seed S] [--stepped] [--execute]\n\
         \x20                        [--max-frames N]"
    );
    ExitCode::from(2)
}

/// `--key value` pairs after the subcommand.
struct Args(Vec<String>);

impl Args {
    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn flag(&self, key: &str) -> bool {
        self.0.iter().any(|a| a == key)
    }

    fn parse<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            Some(v) => v.parse().map_err(|_| format!("bad value for {key}: {v}")),
            None => Ok(default),
        }
    }
}

fn parse_scale(s: &str) -> Result<Scale, String> {
    match s {
        "small" => Ok(Scale::Small),
        "paper" => Ok(Scale::Paper),
        _ => Err(format!("bad scale '{s}' (small|paper)")),
    }
}

fn parse_mix(s: &str) -> Result<Vec<App>, String> {
    s.split(',')
        .map(|id| App::parse(id).ok_or(format!("unknown app '{id}' in --mix")))
        .collect()
}

fn load_json(r: &LoadReport, cfg: &LoadConfig) -> String {
    let mut j = String::from("{\n");
    let _ = writeln!(j, "        \"graphs\": {},", r.graphs);
    let _ = writeln!(j, "        \"workers\": {},", r.workers);
    let _ = writeln!(
        j,
        "        \"mix\": [{}],",
        cfg.mix
            .iter()
            .map(|a| format!("\"{}\"", a.id()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(j, "        \"seed\": {},", cfg.seed);
    let _ = writeln!(j, "        \"rate_fps\": {:.1},", cfg.rate_fps);
    let _ = writeln!(
        j,
        "        \"burst\": {},",
        match cfg.burst {
            Some(b) => format!(
                "{{\"period_ms\": {}, \"len_ms\": {}, \"factor\": {:.1}}}",
                b.period.as_millis(),
                b.len.as_millis(),
                b.factor
            ),
            None => "null".to_string(),
        }
    );
    let _ = writeln!(j, "        \"duration_ms\": {},", cfg.duration.as_millis());
    let _ = writeln!(j, "        \"offered\": {},", r.offered);
    let _ = writeln!(j, "        \"accepted\": {},", r.accepted);
    let _ = writeln!(j, "        \"shed\": {},", r.shed);
    let _ = writeln!(j, "        \"completed\": {},", r.completed);
    let _ = writeln!(j, "        \"reconfigs\": {},", r.reconfigs);
    let _ = writeln!(j, "        \"elapsed_ms\": {},", r.elapsed.as_millis());
    let _ = writeln!(j, "        \"agg_fps\": {:.1},", r.agg_fps);
    let _ = writeln!(j, "        \"latency_mean_ns\": {:.1},", r.latency_mean_ns);
    let _ = writeln!(j, "        \"latency_p50_ns\": {},", r.latency_p50_ns);
    let _ = writeln!(j, "        \"latency_p99_ns\": {}", r.latency_p99_ns);
    j.push_str("    }");
    j
}

fn saturated_json(r: &SaturatedReport, app: App) -> String {
    let mut j = String::from("{\n");
    let _ = writeln!(j, "        \"app\": \"{}\",", app.id());
    let _ = writeln!(j, "        \"graphs\": {},", r.graphs);
    let _ = writeln!(j, "        \"workers\": {},", r.workers);
    let _ = writeln!(j, "        \"frames_per_graph\": {},", r.frames_per_graph);
    let _ = writeln!(
        j,
        "        \"multi_elapsed_ms\": {},",
        r.multi_elapsed.as_millis()
    );
    let _ = writeln!(
        j,
        "        \"solo_elapsed_ms\": {},",
        r.solo_elapsed.as_millis()
    );
    let _ = writeln!(j, "        \"multi_fps\": {:.1},", r.multi_fps);
    let _ = writeln!(j, "        \"solo_fps\": {:.1},", r.solo_fps);
    let _ = writeln!(j, "        \"ratio\": {:.3}", r.ratio);
    j.push_str("    }");
    j
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    let addr = args.get("--addr").unwrap_or("127.0.0.1:7070");
    let http = args.get("--http");
    let cfg = ServerConfig {
        workers: args.parse("--workers", 4usize)?,
        scale: parse_scale(args.get("--scale").unwrap_or("small"))?,
    };
    let server = Server::bind(cfg, addr, http).map_err(|e| format!("bind {addr}: {e}"))?;
    eprintln!(
        "hinch-serve: frame protocol on {}{}",
        server.tcp_addr().map_err(|e| e.to_string())?,
        match server.http_addr() {
            Some(a) => format!(", http on {a}"),
            None => String::new(),
        }
    );
    server.run().map_err(|e| format!("serve: {e}"))
}

fn build_load_config(args: &Args) -> Result<LoadConfig, String> {
    let defaults = LoadConfig::default();
    let mut cfg = LoadConfig {
        graphs: args.parse("--graphs", defaults.graphs)?,
        workers: args.parse("--workers", defaults.workers)?,
        rate_fps: args.parse("--rate", defaults.rate_fps)?,
        duration: Duration::from_millis(
            args.parse("--duration-ms", defaults.duration.as_millis() as u64)?,
        ),
        seed: args.parse("--seed", defaults.seed)?,
        pipeline_depth: args.parse("--depth", defaults.pipeline_depth)?,
        max_backlog: args.parse("--backlog", defaults.max_backlog)?,
        ..defaults
    };
    if let Some(mix) = args.get("--mix") {
        cfg.mix = parse_mix(mix)?;
    }
    if args.flag("--no-burst") {
        cfg.burst = None;
    }
    Ok(cfg)
}

fn cmd_load(args: &Args) -> Result<(), String> {
    let cfg = build_load_config(args)?;
    eprintln!(
        "hinch-serve load: {} graphs / {} workers, {:.0} fps offered for {} ms",
        cfg.graphs,
        cfg.workers,
        cfg.rate_fps,
        cfg.duration.as_millis()
    );
    let report = run_open_loop(&cfg);
    let json = format!("{{\n    \"open_loop\": {}\n}}\n", load_json(&report, &cfg));
    match args.get("--json") {
        Some(path) => std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?,
        None => print!("{json}"),
    }
    eprintln!(
        "hinch-serve load: {} offered, {} accepted ({} shed), {:.0} frames/s, p99 {} ns",
        report.offered, report.accepted, report.shed, report.agg_fps, report.latency_p99_ns
    );
    Ok(())
}

fn cmd_bench(args: &Args) -> Result<(), String> {
    let out = args.get("--json").unwrap_or("BENCH_serve.json");
    let mut cfg = build_load_config(args)?;
    cfg.graphs = cfg.graphs.max(64); // the acceptance floor
    eprintln!(
        "bench serve: open loop — {} graphs / {} workers, {:.0} fps offered for {} ms",
        cfg.graphs,
        cfg.workers,
        cfg.rate_fps,
        cfg.duration.as_millis()
    );
    let open = run_open_loop(&cfg);
    eprintln!(
        "bench serve: open loop — {} accepted ({} shed), {:.0} frames/s, p99 {} ns",
        open.accepted, open.shed, open.agg_fps, open.latency_p99_ns
    );

    let app = App::Pip1;
    let (graphs, frames, workers, depth) = (8, 64, 8, 3);
    eprintln!(
        "bench serve: saturated — {graphs} x {} @ {frames} frames, {workers} workers, multi vs solo",
        app.id()
    );
    let sat = run_saturated(app, Scale::Small, graphs, frames, workers, depth);
    eprintln!(
        "bench serve: saturated — multi {:.0} fps vs solo {:.0} fps (ratio {:.3})",
        sat.multi_fps, sat.solo_fps, sat.ratio
    );

    // Flight-recorder overhead A/B at the acceptance fleet size: same
    // saturated workload, rings at default capacity vs disabled.
    let (tel_graphs, tel_frames, tel_trials) = (cfg.graphs, 32, 3);
    eprintln!(
        "bench serve: telemetry — {tel_graphs} x {} @ {tel_frames} frames, recorder on vs off, best of {tel_trials}",
        app.id()
    );
    let tel = run_telemetry_probe(
        app,
        Scale::Small,
        tel_graphs,
        tel_frames,
        workers,
        depth,
        tel_trials,
    );
    eprintln!(
        "bench serve: telemetry — on {:.0} fps vs off {:.0} fps (ratio {:.3})",
        tel.on_fps, tel.off_fps, tel.ratio
    );

    // Closed-loop SLO controller vs the best static configuration: the
    // seeded bursty-replay scenario, one per reconfigurable app. Fully
    // deterministic (virtual time); gated adaptive <= best-static in
    // scripts/bench.sh.
    let mut adapt_rows = Vec::new();
    for app in App::RECONFIG {
        let r = adapt::run_scenario(&adapt::ScenarioSpec::small(app, 42));
        let best = r.best_static();
        eprintln!(
            "bench serve: adapt — {} adaptive miss rate {:.4} vs best static {} {:.4}",
            app.id(),
            r.adaptive.miss_rate,
            best.config.label(),
            best.miss_rate
        );
        adapt_rows.push(adapt_scenario_json(&r));
    }

    let mut json = String::from("{\n");
    json.push_str("    \"generated_by\": \"hinch-serve bench\",\n");
    json.push_str(
        "    \"note\": \"absolute numbers are machine-dependent; compare ratios and bounds. \
         open_loop = seeded Poisson arrivals over a mixed-app fleet with per-tenant admission \
         control; saturated = N instances on one shared pool vs the same N as dedicated \
         back-to-back single-graph runs; telemetry = the same saturated workload with the \
         flight recorder on vs off (ratio >= 0.97 means always-on telemetry costs <= 3%); \
         adapt = the deterministic seeded bursty-replay scenario per reconfigurable app \
         (deadline-miss rate, closed-loop controller vs the best static configuration)\",\n",
    );
    let _ = writeln!(json, "    \"open_loop\": {},", load_json(&open, &cfg));
    let _ = writeln!(json, "    \"saturated\": {},", saturated_json(&sat, app));
    let _ = writeln!(json, "    \"telemetry\": {},", telemetry_probe_json(&tel));
    let _ = writeln!(json, "    \"adapt\": [{}]", adapt_rows.join(", "));
    json.push_str("}\n");
    std::fs::write(out, &json).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("bench serve: wrote {out}");
    Ok(())
}

fn adapt_scenario_json(r: &adapt::ScenarioReport) -> String {
    let best = r.best_static();
    let mut j = String::from("{\n");
    let _ = writeln!(j, "        \"app\": \"{}\",", r.spec.app.id());
    let _ = writeln!(j, "        \"seed\": {},", r.spec.seed);
    let _ = writeln!(j, "        \"frames\": {},", r.spec.frames);
    let _ = writeln!(j, "        \"deadline_cycles\": {:.1},", r.deadline);
    let _ = writeln!(j, "        \"initial\": \"{}\",", r.initial.label());
    let _ = writeln!(j, "        \"adaptive_misses\": {},", r.adaptive.misses);
    let _ = writeln!(
        j,
        "        \"adaptive_miss_rate\": {:.4},",
        r.adaptive.miss_rate
    );
    let _ = writeln!(
        j,
        "        \"degraded_frames\": {},",
        r.adaptive.degraded_frames
    );
    let _ = writeln!(j, "        \"toggles\": {},", r.adaptive.counters.toggle);
    let _ = writeln!(j, "        \"resizes\": {},", r.adaptive.counters.resize);
    let _ = writeln!(
        j,
        "        \"depth_steps\": {},",
        r.adaptive.counters.step_depth
    );
    let _ = writeln!(j, "        \"best_static\": \"{}\",", best.config.label());
    let _ = writeln!(j, "        \"best_static_misses\": {},", best.misses);
    let _ = writeln!(
        j,
        "        \"best_static_miss_rate\": {:.4}",
        best.miss_rate
    );
    j.push_str("    }");
    j
}

/// The seeded bursty-replay scenario: print the deterministic replay
/// log; with `--execute`, re-run the decision schedule on the real
/// runtime and print the (deterministic) execution summary. ci.sh diffs
/// two runs of this command byte-for-byte.
fn cmd_scenario(args: &Args) -> Result<(), String> {
    let app_id = args.get("--app").unwrap_or("pip12");
    let app = App::parse(app_id).ok_or(format!("unknown app '{app_id}'"))?;
    if !App::RECONFIG.contains(&app) {
        return Err(format!("app '{app_id}' has no quality option to adapt"));
    }
    let seed: u64 = args.parse("--seed", 42u64)?;
    let spec = if args.flag("--stepped") {
        adapt::ScenarioSpec::stepped(app, seed)
    } else {
        adapt::ScenarioSpec::small(app, seed)
    };
    let report = adapt::run_scenario(&spec);
    print!("{}", report.render_replay());
    if args.flag("--execute") {
        let mut cfg = ReplayConfig::small(app, seed);
        cfg.scenario = spec;
        cfg.max_frames = args.parse("--max-frames", cfg.max_frames)?;
        let r = run_burst_replay(&cfg);
        // Wall-clock latency is machine-dependent; print only the
        // deterministic fields so the two-run diff stays meaningful.
        println!(
            "execute frames={} toggles={} rebuilds={} reconfigs={} completed={} digest={}",
            r.frames, r.toggles, r.rebuilds, r.reconfigs, r.completed, r.output_digest
        );
    }
    Ok(())
}

fn telemetry_probe_json(t: &TelemetryProbe) -> String {
    let mut j = String::from("{\n");
    let _ = writeln!(j, "        \"graphs\": {},", t.graphs);
    let _ = writeln!(j, "        \"workers\": {},", t.workers);
    let _ = writeln!(j, "        \"frames_per_graph\": {},", t.frames_per_graph);
    let _ = writeln!(j, "        \"trials\": {},", t.trials);
    let _ = writeln!(j, "        \"on_fps\": {:.1},", t.on_fps);
    let _ = writeln!(j, "        \"off_fps\": {:.1},", t.off_fps);
    let _ = writeln!(j, "        \"ratio\": {:.3}", t.ratio);
    j.push_str("    }");
    j
}

fn cmd_top(args: &Args) -> Result<(), String> {
    let addr = args.get("--addr").unwrap_or("127.0.0.1:7070");
    let once = args.flag("--once");
    let interval = Duration::from_millis(args.parse("--interval-ms", 1000u64)?);
    let count: u64 = args.parse("--count", 0u64)?; // 0 = until interrupted
    let mut c = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut shown = 0u64;
    loop {
        let table = c
            .telemetry(FORMAT_TABLE)
            .map_err(|e| format!("telemetry: {e}"))?;
        print!("{table}");
        shown += 1;
        if once || (count > 0 && shown >= count) {
            return Ok(());
        }
        println!();
        std::thread::sleep(interval);
    }
}

fn cmd_smoke(args: &Args) -> Result<(), String> {
    let frames: u64 = args.parse("--frames", 6u64)?;
    let server = Server::bind(
        ServerConfig {
            workers: 2,
            scale: Scale::Small,
        },
        "127.0.0.1:0",
        Some("127.0.0.1:0"),
    )
    .map_err(|e| format!("bind: {e}"))?;
    let addr = server.tcp_addr().map_err(|e| e.to_string())?;
    let http = server.http_addr().ok_or("no http addr")?;
    let handle = std::thread::spawn(move || server.run());

    let step = |r: Result<(), String>| r;
    let mut c = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    step(c.ping().map_err(|e| format!("ping: {e}")))?;

    // A reconfigurable app: manager "m" on queue "mq", flip rule.
    let g = c
        .spawn("pip12", 3, frames * 2)
        .map_err(|e| format!("spawn: {e}"))?;
    let first = c.submit(g, frames).map_err(|e| format!("submit: {e}"))?;
    if first != frames {
        return Err(format!("submit accepted {first}/{frames}"));
    }
    c.inject(g, "mq", "flip", 0)
        .map_err(|e| format!("inject: {e}"))?;
    let second = c.submit(g, frames).map_err(|e| format!("submit2: {e}"))?;
    if second != frames {
        return Err(format!("second submit accepted {second}/{frames}"));
    }
    let drained = c.drain(g).map_err(|e| format!("drain: {e}"))?;
    let want = format!("\"completed\":{}", frames * 2);
    if !drained.contains(&want) {
        return Err(format!("drain stats missing {want}: {drained}"));
    }
    if drained.contains("\"reconfigs\":0,") {
        return Err(format!("injected flip was not applied: {drained}"));
    }

    // HTTP path: health + spawn/submit/drain a second tenant.
    use std::io::{Read, Write as _};
    let http_req = |req: String| -> Result<String, String> {
        let mut s = std::net::TcpStream::connect(http).map_err(|e| format!("http: {e}"))?;
        write!(s, "{req}").map_err(|e| format!("http write: {e}"))?;
        let mut out = String::new();
        s.read_to_string(&mut out)
            .map_err(|e| format!("http read: {e}"))?;
        Ok(out)
    };
    let health = http_req("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".into())?;
    if !health.contains("{\"ok\":true}") {
        return Err(format!("healthz: {health}"));
    }
    let spawned =
        http_req("POST /spawn?app=blur3&depth=2&backlog=8 HTTP/1.1\r\nHost: x\r\n\r\n".into())?;
    let gid: u32 = spawned
        .rsplit_once("\"graph\":")
        .and_then(|(_, tail)| tail.trim_end_matches(['}', '\r', '\n']).parse().ok())
        .ok_or(format!("spawn over http: {spawned}"))?;
    let submitted = http_req(format!(
        "POST /submit?graph={gid}&frames=2 HTTP/1.1\r\nHost: x\r\n\r\n"
    ))?;
    if !submitted.contains("\"accepted\":2") {
        return Err(format!("submit over http: {submitted}"));
    }

    // Telemetry plane. Wait for the tenant's frames to retire so the
    // /metrics body carries a populated latency histogram, then scrape
    // and validate the exposition with the in-repo parser — the same
    // check a real scraper would fail on.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let stats = c.stats(gid).map_err(|e| format!("stats: {e}"))?;
        if stats.contains("\"completed\":2") {
            break;
        }
        if std::time::Instant::now() > deadline {
            return Err(format!("frames did not retire in time: {stats}"));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let metrics = http_req("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n".into())?;
    if !metrics.contains("Content-Type: text/plain") {
        return Err(format!("/metrics content type: {metrics}"));
    }
    let body = metrics
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .ok_or("no /metrics body")?;
    let samples =
        serve::validate_prometheus(body).map_err(|e| format!("/metrics invalid: {e}\n{body}"))?;
    for want in [
        "hinch_graph_completed_total",
        "hinch_graph_frame_latency_ns_bucket",
        "hinch_worker_busy_seconds_total",
        "hinch_live_stall_seconds",
    ] {
        if !body.contains(want) {
            return Err(format!("/metrics missing {want}:\n{body}"));
        }
    }
    // The wire Telemetry opcode (JSON) and the `top` table path.
    let tj = c
        .telemetry(FORMAT_JSON)
        .map_err(|e| format!("telemetry json: {e}"))?;
    if !tj.contains("\"uptime_ns\":") || !tj.contains("\"workers\":[{") {
        return Err(format!("telemetry json malformed: {tj}"));
    }
    let prom_wire = c
        .telemetry(FORMAT_PROMETHEUS)
        .map_err(|e| format!("telemetry prometheus: {e}"))?;
    serve::validate_prometheus(&prom_wire).map_err(|e| format!("wire prometheus invalid: {e}"))?;
    cmd_top(&Args(vec![
        "--addr".into(),
        addr.to_string(),
        "--once".into(),
    ]))
    .map_err(|e| format!("top --once: {e}"))?;

    let drained = http_req(format!(
        "POST /drain?graph={gid} HTTP/1.1\r\nHost: x\r\n\r\n"
    ))?;
    if !drained.contains("\"completed\":2") {
        return Err(format!("drain over http: {drained}"));
    }

    c.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    drop(c);
    match handle.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(format!("server exit: {e}")),
        Err(_) => return Err("server thread panicked".into()),
    }
    println!(
        "serve smoke: OK ({} frames over TCP + 1 wire reconfig + http tenant + {} validated metrics samples, clean shutdown)",
        frames * 2,
        samples
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return usage();
    };
    let args = Args(argv[1..].to_vec());
    let result = match cmd.as_str() {
        "serve" => cmd_serve(&args),
        "load" => cmd_load(&args),
        "bench" => cmd_bench(&args),
        "top" => cmd_top(&args),
        "smoke" => cmd_smoke(&args),
        "scenario" => cmd_scenario(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hinch-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
