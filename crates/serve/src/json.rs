//! The one JSON writer of the serving front-end.
//!
//! The workspace is dependency-free by design, so JSON is hand-rolled —
//! but hand-rolled *once*: graph stats, telemetry exports, HTTP error
//! bodies and analyzer-rejection diagnostics all render through
//! [`JsonObject`] and share a single [`escape`] implementation. A second
//! escaping routine is where injection bugs breed.

/// Escape a string for embedding inside a JSON string literal
/// (backslash, quote, and control characters — panic messages carry
/// newlines, labels are arbitrary caller input via `Runtime::spawn`).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an array from pre-rendered JSON values.
pub(crate) fn array(items: impl IntoIterator<Item = String>) -> String {
    let items: Vec<String> = items.into_iter().collect();
    format!("[{}]", items.join(","))
}

/// Incremental `{...}` builder. Field order is insertion order; values
/// go through exactly one escaping path ([`escape`]) for strings, or in
/// raw for pre-rendered sub-documents.
pub(crate) struct JsonObject {
    buf: String,
}

impl JsonObject {
    pub(crate) fn new() -> Self {
        Self {
            buf: String::from("{"),
        }
    }

    fn key(&mut self, key: &str) -> &mut String {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(key); // keys are compile-time identifiers
        self.buf.push_str("\":");
        &mut self.buf
    }

    /// A string field, escaped.
    pub(crate) fn str(mut self, key: &str, value: &str) -> Self {
        let buf = self.key(key);
        buf.push('"');
        buf.push_str(&escape(value));
        buf.push('"');
        self
    }

    /// An optional string field: `null` when absent.
    pub(crate) fn opt_str(self, key: &str, value: Option<&str>) -> Self {
        match value {
            Some(v) => self.str(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// An integer field.
    pub(crate) fn num(mut self, key: &str, value: impl Into<u64>) -> Self {
        let v = value.into();
        let buf = self.key(key);
        buf.push_str(&v.to_string());
        self
    }

    /// A float field rendered with one decimal (the workspace's report
    /// convention).
    pub(crate) fn f1(mut self, key: &str, value: f64) -> Self {
        let buf = self.key(key);
        buf.push_str(&format!("{value:.1}"));
        self
    }

    /// A pre-rendered JSON value (array, object, `null`, bool) verbatim.
    pub(crate) fn raw(mut self, key: &str, value: &str) -> Self {
        let buf = self.key(key);
        buf.push_str(value);
        self
    }

    pub(crate) fn build(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The single escaping test of the crate: every writer call site
    /// funnels through [`escape`], so this covers the stats renderer,
    /// the telemetry export, and the HTTP error/rejection bodies alike.
    #[test]
    fn escape_neutralizes_quotes_controls_and_backslashes() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("line\nbreak\r\ttab"), "line\\nbreak\\r\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
        // Non-ASCII passes through (JSON is UTF-8).
        assert_eq!(escape("żółć"), "żółć");
    }

    #[test]
    fn object_builder_renders_each_field_kind() {
        let json = JsonObject::new()
            .num("id", 3u32)
            .str("label", "a\"b")
            .f1("mean", 1.25)
            .opt_str("failure", None)
            .raw("items", &array(["1".to_string(), "2".to_string()]))
            .build();
        assert_eq!(
            json,
            "{\"id\":3,\"label\":\"a\\\"b\",\"mean\":1.2,\"failure\":null,\"items\":[1,2]}"
        );
        assert_eq!(JsonObject::new().build(), "{}");
        assert_eq!(array(std::iter::empty()), "[]");
    }
}
