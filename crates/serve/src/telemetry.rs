//! The serving runtime's live telemetry plane.
//!
//! Three consumers, one data path:
//!
//! * the **flight recorder** (`trace::ring`) is always on in the shared
//!   pool — each worker records job spans, park-time stall intervals and
//!   frame retirements into its own bounded ring;
//! * a [`Telemetry`] instance owns the ring cursors and an
//!   [`insight::LiveAnalyzer`]: [`Telemetry::sample`] drains the rings
//!   (wait-free for the workers) and closes one analyzer interval
//!   against the runtime's cumulative per-graph counters. The server
//!   runs a collector thread doing this at a fixed cadence, and every
//!   on-demand export samples once more so it never serves stale data;
//! * the renderers: [`prometheus_text`] (the HTTP `GET /metrics` body),
//!   [`telemetry_json`] (the wire `Telemetry` opcode payload) and
//!   [`render_top`] (the `hinch-serve top` table) are pure functions of
//!   one `(PoolTelemetry, Vec<GraphStats>, LiveSummary, [AdaptStatus])`
//!   snapshot, so the views can never disagree about what the pool is
//!   doing. [`AdaptStatus`] carries the closed-loop SLO controllers'
//!   state (`crates/adapt`, attached per graph over the wire), exported
//!   as the `hinch_adapt_*` series.
//!
//! [`validate_prometheus`] is a small exposition-format checker (TYPE
//! lines, sample syntax, cumulative histogram invariants) used by the
//! smoke gate and this module's tests — the /metrics body is validated
//! in CI by the same code a scraper would trip over.

use crate::json::{array, JsonObject};
use hinch::{GraphStats, PoolTelemetry, Runtime};
use insight::live::{counts_from_nonzero, GraphSample, LiveAnalyzer, LiveSummary};
use std::fmt::Write as _;
use std::sync::Mutex;
use trace::metrics::LogHistogram;
use trace::ring::Cursor;
use trace::StallCause;

/// `Telemetry` request payload formats (the wire carries the selector so
/// the server renders — the client stays parser-free).
pub const FORMAT_JSON: u8 = 0;
pub const FORMAT_PROMETHEUS: u8 = 1;
pub const FORMAT_TABLE: u8 = 2;

/// How many closed intervals the rolling window spans.
const WINDOW_TICKS: usize = 8;

/// One attached SLO controller's state, snapshotted for the exporters:
/// the policy target, the configuration the controller believes is in
/// force, its decision counters and the last decision taken. Produced by
/// the server from its `crates/adapt` governors; rendered as the
/// `hinch_adapt_*` Prometheus families and the `"adapt"` JSON array.
#[derive(Debug, Clone)]
pub struct AdaptStatus {
    pub graph: u32,
    pub app: String,
    /// `CandidateConfig::label()` of the config in force.
    pub config: String,
    /// `true` when the controller holds the app at full quality.
    pub quality_full: bool,
    pub target_p99_ns: u64,
    /// Observation windows consumed.
    pub ticks: u64,
    pub hold: u64,
    pub toggle: u64,
    pub resize: u64,
    pub step_depth: u64,
    /// Action label of the most recent decision (`"hold"`, `"toggle"`,
    /// ...), empty before the first tick.
    pub last_action: String,
    /// Reason of the most recent decision, empty before the first tick.
    pub last_reason: String,
}

struct State {
    analyzer: LiveAnalyzer,
    cursors: Vec<Cursor>,
}

/// Shared live-telemetry state: ring cursors plus the windowed analyzer.
/// One per server; cheap to sample (a wait-free ring drain and a fold).
pub struct Telemetry {
    state: Mutex<State>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new()
    }
}

impl Telemetry {
    pub fn new() -> Self {
        Self {
            state: Mutex::new(State {
                analyzer: LiveAnalyzer::new(WINDOW_TICKS),
                cursors: Vec::new(),
            }),
        }
    }

    /// Drain the flight recorder and close one analyzer interval against
    /// the runtime's current cumulative counters. Wait-free for the
    /// workers; serialized across samplers by the state lock.
    pub fn sample(&self, runtime: &Runtime) {
        let mut st = self.state.lock().unwrap();
        if let Some(rings) = runtime.rings() {
            let snap = rings.snapshot(&mut st.cursors);
            st.analyzer.fold(&snap.events, snap.dropped);
        }
        let samples: Vec<GraphSample> = runtime
            .all_stats()
            .iter()
            .map(|s| GraphSample {
                graph: s.id.0,
                app: s.label.clone(),
                completed: s.completed,
                shed: s.shed,
                inflight: s.inflight,
                latency_counts: counts_from_nonzero(&s.latency_buckets),
            })
            .collect();
        st.analyzer.tick(runtime.telemetry().uptime_ns, &samples);
    }

    /// The rolling-window view as of the last [`Telemetry::sample`].
    pub fn summary(&self) -> LiveSummary {
        self.state.lock().unwrap().analyzer.summary()
    }
}

// ---- Prometheus text exposition -----------------------------------------

/// Escape a Prometheus label value (`\`, `"`, newline).
fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn prom_type(out: &mut String, name: &str, kind: &str) {
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Render one consistent snapshot as Prometheus text exposition: pool
/// gauges, per-worker counters, per-graph counters and cumulative
/// latency-bucket histograms, plus the rolling stall attribution from
/// the flight recorder. Validated by [`validate_prometheus`] in tests
/// and the smoke gate.
pub fn prometheus_text(
    pool: &PoolTelemetry,
    stats: &[GraphStats],
    live: &LiveSummary,
    adapt: &[AdaptStatus],
) -> String {
    let mut o = String::new();

    prom_type(&mut o, "hinch_uptime_seconds", "gauge");
    let _ = writeln!(o, "hinch_uptime_seconds {}", pool.uptime_ns as f64 / 1e9);
    prom_type(&mut o, "hinch_pool_queued_jobs", "gauge");
    let _ = writeln!(o, "hinch_pool_queued_jobs {}", pool.queued_jobs);
    prom_type(&mut o, "hinch_pool_idle_workers", "gauge");
    let _ = writeln!(o, "hinch_pool_idle_workers {}", pool.idle_workers);

    for (name, get) in [
        (
            "hinch_worker_busy_seconds_total",
            &(|w: &hinch::WorkerTelemetry| w.busy_ns as f64 / 1e9)
                as &dyn Fn(&hinch::WorkerTelemetry) -> f64,
        ),
        ("hinch_worker_idle_seconds_total", &|w| {
            w.idle_ns as f64 / 1e9
        }),
        ("hinch_worker_jobs_total", &|w| w.jobs as f64),
        ("hinch_worker_parks_total", &|w| w.parks as f64),
        ("hinch_worker_steals_total", &|w| w.steals as f64),
    ] {
        prom_type(&mut o, name, "counter");
        for (i, w) in pool.workers.iter().enumerate() {
            let _ = writeln!(o, "{name}{{worker=\"{i}\"}} {}", get(w));
        }
    }

    for (name, get) in [
        (
            "hinch_graph_submitted_total",
            &(|s: &GraphStats| s.submitted) as &dyn Fn(&GraphStats) -> u64,
        ),
        ("hinch_graph_completed_total", &|s| s.completed),
        ("hinch_graph_shed_total", &|s| s.shed),
        ("hinch_graph_reconfigs_total", &|s| s.reconfigs),
        ("hinch_graph_jobs_executed_total", &|s| s.jobs_executed),
    ] {
        prom_type(&mut o, name, "counter");
        for s in stats {
            let _ = writeln!(
                o,
                "{name}{{graph=\"{}\",app=\"{}\"}} {}",
                s.id.0,
                prom_escape(&s.label),
                get(s)
            );
        }
    }
    prom_type(&mut o, "hinch_graph_backlog", "gauge");
    for s in stats {
        let _ = writeln!(
            o,
            "hinch_graph_backlog{{graph=\"{}\",app=\"{}\"}} {}",
            s.id.0,
            prom_escape(&s.label),
            s.inflight
        );
    }

    // Per-graph frame-latency histograms: power-of-two buckets rendered
    // cumulative, Prometheus-style. The exact sum is not tracked by the
    // histogram, so `_sum` is mean x count (same information the stats
    // JSON reports).
    prom_type(&mut o, "hinch_graph_frame_latency_ns", "histogram");
    for s in stats {
        let labels = format!("graph=\"{}\",app=\"{}\"", s.id.0, prom_escape(&s.label));
        let counts = counts_from_nonzero(&s.latency_buckets);
        let total: u64 = counts.iter().sum();
        for (le, cum) in LogHistogram::cumulative_from_counts(&counts) {
            let _ = writeln!(
                o,
                "hinch_graph_frame_latency_ns_bucket{{{labels},le=\"{le}\"}} {cum}"
            );
        }
        let _ = writeln!(
            o,
            "hinch_graph_frame_latency_ns_bucket{{{labels},le=\"+Inf\"}} {total}"
        );
        let _ = writeln!(
            o,
            "hinch_graph_frame_latency_ns_sum{{{labels}}} {}",
            s.latency_mean_ns * total as f64
        );
        let _ = writeln!(o, "hinch_graph_frame_latency_ns_count{{{labels}}} {total}");
    }

    // Rolling-window attribution from the flight recorder.
    prom_type(&mut o, "hinch_live_window_seconds", "gauge");
    let _ = writeln!(
        o,
        "hinch_live_window_seconds {}",
        live.window_ns as f64 / 1e9
    );
    prom_type(&mut o, "hinch_live_stall_seconds", "gauge");
    for cause in StallCause::ALL {
        let _ = writeln!(
            o,
            "hinch_live_stall_seconds{{cause=\"{}\"}} {}",
            cause.as_str(),
            live.stall_ns[cause.index()] as f64 / 1e9
        );
    }
    prom_type(&mut o, "hinch_live_ring_events", "gauge");
    let _ = writeln!(o, "hinch_live_ring_events {}", live.events);
    prom_type(&mut o, "hinch_live_ring_dropped", "gauge");
    let _ = writeln!(o, "hinch_live_ring_dropped {}", live.dropped);
    prom_type(&mut o, "hinch_live_graph_fps", "gauge");
    for g in &live.graphs {
        let _ = writeln!(
            o,
            "hinch_live_graph_fps{{graph=\"{}\",app=\"{}\"}} {}",
            g.graph,
            prom_escape(&g.app),
            g.throughput_fps
        );
    }

    // Closed-loop SLO controllers (crates/adapt), one set of series per
    // attached graph.
    if !adapt.is_empty() {
        prom_type(&mut o, "hinch_adapt_target_p99_ns", "gauge");
        for a in adapt {
            let _ = writeln!(
                o,
                "hinch_adapt_target_p99_ns{{graph=\"{}\",app=\"{}\"}} {}",
                a.graph,
                prom_escape(&a.app),
                a.target_p99_ns
            );
        }
        prom_type(&mut o, "hinch_adapt_full_quality", "gauge");
        for a in adapt {
            let _ = writeln!(
                o,
                "hinch_adapt_full_quality{{graph=\"{}\",app=\"{}\",config=\"{}\"}} {}",
                a.graph,
                prom_escape(&a.app),
                prom_escape(&a.config),
                u8::from(a.quality_full)
            );
        }
        prom_type(&mut o, "hinch_adapt_decisions_total", "counter");
        for a in adapt {
            for (action, count) in [
                ("hold", a.hold),
                ("toggle", a.toggle),
                ("resize", a.resize),
                ("step_depth", a.step_depth),
            ] {
                let _ = writeln!(
                    o,
                    "hinch_adapt_decisions_total{{graph=\"{}\",app=\"{}\",action=\"{action}\"}} {count}",
                    a.graph,
                    prom_escape(&a.app),
                );
            }
        }
    }
    o
}

// ---- JSON export (the wire `Telemetry` opcode) --------------------------

fn worker_json(i: usize, w: &hinch::WorkerTelemetry) -> String {
    JsonObject::new()
        .num("worker", i as u64)
        .num("busy_ns", w.busy_ns)
        .num("idle_ns", w.idle_ns)
        .num("jobs", w.jobs)
        .num("parks", w.parks)
        .num("steals", w.steals)
        .build()
}

fn live_graph_json(g: &insight::live::GraphWindow) -> String {
    JsonObject::new()
        .num("graph", g.graph)
        .str("app", &g.app)
        .num("completed", g.completed)
        .num("shed", g.shed)
        .f1("throughput_fps", g.throughput_fps)
        .num("p50_ns", g.p50_ns)
        .num("p99_ns", g.p99_ns)
        .num("backlog", g.backlog)
        .str("dominant", &g.dominant.render())
        .build()
}

fn adapt_json(a: &AdaptStatus) -> String {
    JsonObject::new()
        .num("graph", a.graph)
        .str("app", &a.app)
        .str("config", &a.config)
        .raw(
            "full_quality",
            if a.quality_full { "true" } else { "false" },
        )
        .num("target_p99_ns", a.target_p99_ns)
        .num("ticks", a.ticks)
        .num("hold", a.hold)
        .num("toggle", a.toggle)
        .num("resize", a.resize)
        .num("step_depth", a.step_depth)
        .str("last_action", &a.last_action)
        .str("last_reason", &a.last_reason)
        .build()
}

/// The wire `Telemetry` payload: pool, per-worker, rolling-window and
/// SLO-controller state as one JSON document (all through the crate's
/// single writer).
pub fn telemetry_json(
    pool: &PoolTelemetry,
    stats: &[GraphStats],
    live: &LiveSummary,
    adapt: &[AdaptStatus],
) -> String {
    let stalls = StallCause::ALL
        .into_iter()
        .map(|c| {
            JsonObject::new()
                .str("cause", c.as_str())
                .num("stall_ns", live.stall_ns[c.index()])
                .build()
        })
        .collect::<Vec<_>>();
    JsonObject::new()
        .num("uptime_ns", pool.uptime_ns)
        .num("queued_jobs", pool.queued_jobs as u64)
        .num("idle_workers", pool.idle_workers as u64)
        .raw(
            "workers",
            &array(
                pool.workers
                    .iter()
                    .enumerate()
                    .map(|(i, w)| worker_json(i, w)),
            ),
        )
        .num("graphs", stats.len() as u64)
        .num("window_ns", live.window_ns)
        .num("ring_events", live.events)
        .num("ring_dropped", live.dropped)
        .raw("stalls", &array(stalls))
        .raw("live", &array(live.graphs.iter().map(live_graph_json)))
        .raw("adapt", &array(adapt.iter().map(adapt_json)))
        .build()
}

// ---- the `top` table ----------------------------------------------------

/// Render the rolling window as the `hinch-serve top` table:
/// graphs x {throughput, p50/p99, backlog, dominant}. Pure function of
/// the snapshot — `top --once` output is reproducible for a fixed
/// runtime state.
pub fn render_top(pool: &PoolTelemetry, live: &LiveSummary) -> String {
    let mut o = String::new();
    let busy: u64 = pool.workers.iter().map(|w| w.busy_ns).sum();
    let idle: u64 = pool.workers.iter().map(|w| w.idle_ns).sum();
    let _ = writeln!(
        o,
        "pool: {} workers, uptime {:.1}s, busy {:.1}s / parked {:.1}s, {} queued",
        pool.workers.len(),
        pool.uptime_ns as f64 / 1e9,
        busy as f64 / 1e9,
        idle as f64 / 1e9,
        pool.queued_jobs
    );
    let window = live.window_ns as f64 / 1e9;
    let dominant = match live.dominant_cause {
        Some(c) => format!(", dominant stall {}", c.as_str()),
        None => String::new(),
    };
    let _ = writeln!(
        o,
        "window: {:.1}s, {} ring events ({} dropped){}",
        window, live.events, live.dropped, dominant
    );
    let _ = writeln!(
        o,
        "{:>5} {:<10} {:>9} {:>11} {:>11} {:>7}  dominant",
        "graph", "app", "fps", "p50", "p99", "backlog"
    );
    for g in &live.graphs {
        let _ = writeln!(
            o,
            "{:>5} {:<10} {:>9.1} {:>11} {:>11} {:>7}  {}",
            g.graph,
            g.app,
            g.throughput_fps,
            g.p50_ns,
            g.p99_ns,
            g.backlog,
            g.dominant.render()
        );
    }
    if live.graphs.is_empty() {
        let _ = writeln!(o, "(no graphs in window)");
    }
    o
}

// ---- exposition validator -----------------------------------------------

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// A parsed sample line: metric name, label pairs, value.
type Sample = (String, Vec<(String, String)>, f64);

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (name_part, rest) = match line.find('{') {
        Some(open) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label braces: {line}"))?;
            (&line[..open], {
                let labels = &line[open + 1..close];
                let value = line[close + 1..].trim();
                (labels, value)
            })
        }
        None => {
            let (name, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("no value: {line}"))?;
            (name, ("", value.trim()))
        }
    };
    let (labels_raw, value_raw) = rest;
    if !valid_metric_name(name_part) {
        return Err(format!("bad metric name '{name_part}'"));
    }
    let mut labels = Vec::new();
    if !labels_raw.is_empty() {
        for pair in split_labels(labels_raw)? {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("bad label pair '{pair}'"))?;
            if !valid_metric_name(k) {
                return Err(format!("bad label name '{k}'"));
            }
            let v = v
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| format!("unquoted label value in '{pair}'"))?;
            labels.push((k.to_string(), v.to_string()));
        }
    }
    let value = match value_raw {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|_| format!("bad sample value '{v}'"))?,
    };
    Ok((name_part.to_string(), labels, value))
}

/// Split `k="v",k2="v2"` on commas outside quotes (label values may
/// contain commas).
fn split_labels(raw: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in raw.chars() {
        match c {
            _ if escaped => {
                cur.push(c);
                escaped = false;
            }
            '\\' if in_quotes => {
                cur.push(c);
                escaped = true;
            }
            '"' => {
                cur.push(c);
                in_quotes = !in_quotes;
            }
            ',' if !in_quotes => out.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(format!("unterminated label value in '{raw}'"));
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    Ok(out)
}

/// Base metric name of a histogram series sample.
fn histogram_base(name: &str) -> Option<&str> {
    name.strip_suffix("_bucket")
        .or_else(|| name.strip_suffix("_sum"))
        .or_else(|| name.strip_suffix("_count"))
}

/// Validate a Prometheus text exposition: every sample parses, every
/// series has a preceding `# TYPE`, and histograms satisfy the
/// cumulative invariants (bucket counts non-decreasing in `le`, a
/// `+Inf` bucket present and equal to `_count`). Returns the number of
/// samples. This is what the CI smoke gate runs over `GET /metrics`.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    use std::collections::HashMap;
    let mut types: HashMap<String, String> = HashMap::new();
    // (histogram base, labels-without-le) -> ascending (le, cumulative).
    let mut buckets: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
    let mut counts: HashMap<(String, String), f64> = HashMap::new();
    let mut samples = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let err = |e: String| format!("line {}: {e}", lineno + 1);
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.split_whitespace();
            if parts.next() == Some("TYPE") {
                let name = parts
                    .next()
                    .ok_or_else(|| err("TYPE without name".into()))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| err("TYPE without kind".into()))?;
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(err(format!("unknown TYPE kind '{kind}'")));
                }
                types.insert(name.to_string(), kind.to_string());
            }
            continue; // HELP and free comments pass
        }
        let (name, labels, value) = parse_sample(line).map_err(err)?;
        samples += 1;
        let declared = types.contains_key(&name)
            || histogram_base(&name)
                .is_some_and(|b| types.get(b).map(String::as_str) == Some("histogram"));
        if !declared {
            return Err(err(format!("sample '{name}' has no preceding # TYPE")));
        }
        if let Some(base) = histogram_base(&name) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                let others: Vec<String> = labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect();
                let key = (base.to_string(), others.join(","));
                if name.ends_with("_bucket") {
                    let le = labels
                        .iter()
                        .find(|(k, _)| k == "le")
                        .ok_or_else(|| err(format!("bucket without le: {line}")))?;
                    let le = match le.1.as_str() {
                        "+Inf" => f64::INFINITY,
                        v => v.parse::<f64>().map_err(|_| err(format!("bad le '{v}'")))?,
                    };
                    buckets.entry(key).or_default().push((le, value));
                } else if name.ends_with("_count") {
                    counts.insert(key, value);
                }
            }
        }
    }

    for ((base, labels), mut series) in buckets {
        series.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prev = -1.0f64;
        for &(le, cum) in &series {
            if cum < prev {
                return Err(format!(
                    "histogram {base}{{{labels}}}: bucket le={le} count {cum} < previous {prev}"
                ));
            }
            prev = cum;
        }
        let inf = series
            .last()
            .filter(|(le, _)| le.is_infinite())
            .ok_or_else(|| format!("histogram {base}{{{labels}}}: missing +Inf bucket"))?;
        if let Some(&count) = counts.get(&(base.clone(), labels.clone())) {
            if (inf.1 - count).abs() > f64::EPSILON {
                return Err(format!(
                    "histogram {base}{{{labels}}}: +Inf bucket {} != _count {count}",
                    inf.1
                ));
            }
        } else {
            return Err(format!("histogram {base}{{{labels}}}: missing _count"));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hinch::{GraphId, WorkerTelemetry};

    fn snapshot() -> (PoolTelemetry, Vec<GraphStats>, LiveSummary) {
        let h = LogHistogram::default();
        for v in [100u64, 200, 400, 90_000] {
            h.record(v);
        }
        let stats = vec![GraphStats {
            id: GraphId(0),
            label: "pip1\"x".into(), // hostile label: must be escaped
            submitted: 5,
            completed: 4,
            inflight: 1,
            reconfigs: 0,
            jobs_executed: 12,
            latency_mean_ns: h.mean(),
            latency_p50_ns: h.quantile(0.5),
            latency_p99_ns: h.quantile(0.99),
            latency_buckets: h.nonzero_buckets(),
            shed: 2,
            failure: None,
        }];
        let pool = PoolTelemetry {
            workers: vec![
                WorkerTelemetry {
                    busy_ns: 1_000_000,
                    idle_ns: 2_000_000,
                    jobs: 12,
                    parks: 3,
                    steals: 1,
                },
                WorkerTelemetry::default(),
            ],
            queued_jobs: 0,
            idle_workers: 2,
            uptime_ns: 5_000_000_000,
        };
        let mut la = LiveAnalyzer::new(4);
        la.tick(
            1_000_000_000,
            &[GraphSample {
                graph: 0,
                app: "pip1\"x".into(),
                completed: 4,
                shed: 2,
                inflight: 1,
                latency_counts: counts_from_nonzero(&stats[0].latency_buckets),
            }],
        );
        (pool, stats, la.summary())
    }

    fn adapt_status() -> Vec<AdaptStatus> {
        vec![AdaptStatus {
            graph: 0,
            app: "pip1\"x".into(), // hostile label: must be escaped
            config: "full/s4/d1".into(),
            quality_full: true,
            target_p99_ns: 2_000_000,
            ticks: 9,
            hold: 7,
            toggle: 2,
            resize: 0,
            step_depth: 0,
            last_action: "toggle".into(),
            last_reason: "slo-under:recover".into(),
        }]
    }

    #[test]
    fn metrics_body_passes_the_validator() {
        let (pool, stats, live) = snapshot();
        let text = prometheus_text(&pool, &stats, &live, &adapt_status());
        let samples = validate_prometheus(&text).expect("valid exposition");
        assert!(samples > 20, "suspiciously few samples: {samples}\n{text}");
        for want in [
            "hinch_worker_busy_seconds_total{worker=\"0\"}",
            "hinch_graph_frame_latency_ns_bucket{graph=\"0\",app=\"pip1\\\"x\",le=\"+Inf\"} 4",
            "hinch_graph_backlog{graph=\"0\"",
            "hinch_graph_shed_total",
            "hinch_live_stall_seconds{cause=\"backpressure\"}",
            "hinch_worker_steals_total",
            "hinch_worker_parks_total",
            "hinch_adapt_target_p99_ns{graph=\"0\",app=\"pip1\\\"x\"} 2000000",
            "hinch_adapt_full_quality{graph=\"0\",app=\"pip1\\\"x\",config=\"full/s4/d1\"} 1",
            "hinch_adapt_decisions_total{graph=\"0\",app=\"pip1\\\"x\",action=\"toggle\"} 2",
        ] {
            assert!(text.contains(want), "missing {want}:\n{text}");
        }
        // No controllers attached → no hinch_adapt_* series at all (not
        // even empty TYPE declarations).
        let bare = prometheus_text(&pool, &stats, &live, &[]);
        validate_prometheus(&bare).expect("valid exposition without adapt");
        assert!(!bare.contains("hinch_adapt_"), "{bare}");
    }

    #[test]
    fn telemetry_json_carries_the_snapshot() {
        let (pool, stats, live) = snapshot();
        let json = telemetry_json(&pool, &stats, &live, &adapt_status());
        for want in [
            "\"uptime_ns\":5000000000",
            "\"workers\":[{\"worker\":0,",
            "\"steals\":1",
            "\"app\":\"pip1\\\"x\"",
            "\"stalls\":[{\"cause\":\"starvation\"",
            "\"backlog\":1",
            "\"adapt\":[{\"graph\":0,",
            "\"config\":\"full/s4/d1\"",
            "\"full_quality\":true",
            "\"last_reason\":\"slo-under:recover\"",
        ] {
            assert!(json.contains(want), "missing {want}:\n{json}");
        }
        assert!(
            telemetry_json(&pool, &stats, &live, &[]).contains("\"adapt\":[]"),
            "empty adapt array when nothing is attached"
        );
    }

    #[test]
    fn top_table_renders_every_graph_row() {
        let (pool, stats, live) = snapshot();
        let _ = stats;
        let table = render_top(&pool, &live);
        assert!(table.contains("pool: 2 workers"), "{table}");
        assert!(table.contains("dominant"), "{table}");
        assert!(table.contains("pip1\"x"), "{table}");
        // Deterministic: same snapshot, same bytes.
        assert_eq!(table, render_top(&pool, &live));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        // Sample without a TYPE.
        assert!(validate_prometheus("orphan_metric 1\n").is_err());
        // Garbage value.
        assert!(
            validate_prometheus("# TYPE m gauge\nm one\n").is_err(),
            "non-numeric value must fail"
        );
        // Non-cumulative histogram buckets.
        let shrinking = "# TYPE h histogram\n\
                         h_bucket{le=\"1\"} 5\n\
                         h_bucket{le=\"2\"} 3\n\
                         h_bucket{le=\"+Inf\"} 5\n\
                         h_count 5\n";
        assert!(validate_prometheus(shrinking).is_err());
        // Missing +Inf bucket.
        let no_inf = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\n";
        assert!(validate_prometheus(no_inf).is_err());
        // +Inf disagreeing with _count.
        let mismatch = "# TYPE h histogram\n\
                        h_bucket{le=\"+Inf\"} 4\n\
                        h_count 5\n";
        assert!(validate_prometheus(mismatch).is_err());
        // Unterminated label value.
        assert!(validate_prometheus("# TYPE m gauge\nm{a=\"x} 1\n").is_err());
        // A well-formed document passes and counts samples.
        let ok = "# HELP m help text\n# TYPE m counter\nm{a=\"x,y\"} 1\nm{a=\"z\"} 2\n";
        assert_eq!(validate_prometheus(ok), Ok(2));
    }
}
