//! Typed client for the frame protocol (used by the load harness, the
//! smoke gate and external tools).

use crate::protocol::{read_frame, write_frame, Request, Response, WireDiagnostic, ALL_GRAPHS};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side errors: transport failures vs errors the server reported
/// vs spawns the server's static analyzer rejected.
#[derive(Debug)]
pub enum ClientError {
    Io(io::Error),
    /// The server answered with an error response (its message).
    Server(String),
    /// The server's static analyzer rejected the spawn; the `XA0xx`
    /// diagnostics say why.
    Rejected(Vec<WireDiagnostic>),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Server(msg) => write!(f, "server: {msg}"),
            ClientError::Rejected(diags) => {
                write!(
                    f,
                    "rejected by static analysis ({} finding(s))",
                    diags.len()
                )?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a serving front-end. Requests are synchronous:
/// write a frame, read the response frame.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        Ok(Client {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Raw request/response round trip.
    pub fn request(&mut self, req: &Request) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.stream, &req.encode()?)?;
        let body = read_frame(&mut self.stream)?.ok_or_else(|| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))
        })?;
        match Response::decode(&body)? {
            Response::Ok(payload) => Ok(payload),
            Response::Err(msg) => Err(ClientError::Server(msg)),
            Response::Rejected(diags) => Err(ClientError::Rejected(diags)),
        }
    }

    /// Spawn an app instance; returns its graph id.
    pub fn spawn(
        &mut self,
        app: &str,
        pipeline_depth: u32,
        max_backlog: u64,
    ) -> Result<u32, ClientError> {
        let payload = self.request(&Request::Spawn {
            app: app.to_string(),
            pipeline_depth,
            max_backlog,
        })?;
        let bytes: [u8; 4] = payload
            .try_into()
            .map_err(|_| ClientError::Server("malformed spawn response".into()))?;
        Ok(u32::from_be_bytes(bytes))
    }

    /// Spawn a graph from XSPCL source shipped over the wire; the server
    /// statically analyzes and elaborates it first. Returns the graph id,
    /// or [`ClientError::Rejected`] with the analyzer's diagnostics.
    pub fn spawn_xspcl(
        &mut self,
        source: &str,
        pipeline_depth: u32,
        max_backlog: u64,
    ) -> Result<u32, ClientError> {
        let payload = self.request(&Request::SpawnXspcl {
            source: source.to_string(),
            pipeline_depth,
            max_backlog,
        })?;
        let bytes: [u8; 4] = payload
            .try_into()
            .map_err(|_| ClientError::Server("malformed spawn response".into()))?;
        Ok(u32::from_be_bytes(bytes))
    }

    /// Offer `frames` frames; returns how many the server accepted
    /// (admission control — 0 means shed, retry later).
    pub fn submit(&mut self, graph: u32, frames: u64) -> Result<u64, ClientError> {
        let payload = self.request(&Request::Submit { graph, frames })?;
        let bytes: [u8; 8] = payload
            .try_into()
            .map_err(|_| ClientError::Server("malformed submit response".into()))?;
        Ok(u64::from_be_bytes(bytes))
    }

    /// Inject a manager event (reconfiguration over the wire).
    pub fn inject(
        &mut self,
        graph: u32,
        queue: &str,
        kind: &str,
        payload: i64,
    ) -> Result<(), ClientError> {
        self.request(&Request::Inject {
            graph,
            queue: queue.to_string(),
            kind: kind.to_string(),
            payload,
        })?;
        Ok(())
    }

    /// Stats of one graph as a JSON string.
    pub fn stats(&mut self, graph: u32) -> Result<String, ClientError> {
        let payload = self.request(&Request::Stats { graph })?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// Stats of every live graph as a JSON array string.
    pub fn all_stats(&mut self) -> Result<String, ClientError> {
        self.stats(ALL_GRAPHS)
    }

    /// Drain a graph to completion and tear it down; returns its final
    /// stats as a JSON string.
    pub fn drain(&mut self, graph: u32) -> Result<String, ClientError> {
        let payload = self.request(&Request::Drain { graph })?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// Fetch one live-telemetry snapshot, rendered server-side in the
    /// requested format (`crate::telemetry::{FORMAT_JSON,
    /// FORMAT_PROMETHEUS, FORMAT_TABLE}`).
    pub fn telemetry(&mut self, format: u8) -> Result<String, ClientError> {
        let payload = self.request(&Request::Telemetry { format })?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// Attach (or replace) a latency SLO policy on a graph: the server's
    /// closed-loop controller then holds the objective by toggling the
    /// app's quality option at the graph's quiescent points. Returns the
    /// attach summary (initial config, candidate count) as a JSON string.
    #[allow(clippy::too_many_arguments)]
    pub fn attach_slo(
        &mut self,
        graph: u32,
        target_p99_ns: u64,
        low_watermark: f64,
        cooldown_ticks: u32,
        min_samples: u64,
        max_backlog: u64,
    ) -> Result<String, ClientError> {
        let payload = self.request(&Request::AttachSlo {
            graph,
            target_p99_ns,
            low_watermark_bits: low_watermark.to_bits(),
            cooldown_ticks,
            min_samples,
            max_backlog,
        })?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// Detach the SLO policy from a graph; returns the controller's final
    /// decision counters as a JSON string.
    pub fn detach_slo(&mut self, graph: u32) -> Result<String, ClientError> {
        let payload = self.request(&Request::DetachSlo { graph })?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Ping)?;
        Ok(())
    }

    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown)?;
        Ok(())
    }
}
