//! Multi-graph serving front-end for the hinch runtime.
//!
//! The coordination language's runtime traditionally executes one graph
//! per process run. This crate turns it into a *service*: many graph
//! instances multiplexed over one shared worker pool
//! ([`hinch::Runtime`]), fed over the network — a length-prefixed TCP
//! frame protocol ([`protocol`]) plus a minimal HTTP gateway ([`http`])
//! for frame submission and manager-event injection (reconfiguration
//! over the wire) — with per-tenant admission control and an open-loop
//! load harness ([`load`]) that measures concurrent-graph throughput and
//! p99 frame latency for `BENCH_serve.json`.
//!
//! See `docs/SERVING.md` for the protocol framing, admission-control
//! semantics and load-generator usage; `hinch-serve --help` for the CLI.

pub mod client;
pub mod http;
mod json;
pub mod load;
pub mod protocol;
pub mod server;
pub mod telemetry;

pub use client::{Client, ClientError};
pub use load::{
    run_burst_replay, run_open_loop, run_saturated, run_telemetry_probe, Burst, LoadConfig,
    LoadReport, ReplayConfig, ReplayReport, SaturatedReport, TelemetryProbe,
};
pub use protocol::{Request, Response, WireDiagnostic, ALL_GRAPHS, MAX_FRAME};
pub use server::{stats_json, Server, ServerConfig};
pub use telemetry::{
    prometheus_text, render_top, telemetry_json, validate_prometheus, AdaptStatus, Telemetry,
    FORMAT_JSON, FORMAT_PROMETHEUS, FORMAT_TABLE,
};

#[cfg(test)]
mod tests {
    use super::*;
    use apps::experiment::Scale;

    /// End-to-end over real sockets: spawn, feed, reconfigure over the
    /// wire, drain, shut down.
    #[test]
    fn tcp_round_trip_serves_and_reconfigures() {
        let server = Server::bind(
            ServerConfig {
                workers: 2,
                scale: Scale::Small,
            },
            "127.0.0.1:0",
            None,
        )
        .expect("bind");
        let addr = server.tcp_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run().expect("server run"));

        let mut c = Client::connect(addr).expect("connect");
        c.ping().expect("ping");
        // pip12 carries a manager ("m") on queue "mq" with a `flip` rule.
        let g = c.spawn("pip12", 2, 64).expect("spawn");
        assert_eq!(c.submit(g, 4).expect("submit"), 4);
        c.inject(g, "mq", "flip", 0).expect("inject");
        // These frames' manager entries run after the injection: the flip
        // is picked up and applied at quiescence.
        assert_eq!(c.submit(g, 4).expect("submit"), 4);
        let drained = c.drain(g).expect("drain");
        assert!(drained.contains("\"completed\":8"), "{drained}");
        assert!(!drained.contains("\"reconfigs\":0"), "{drained}");
        // Unknown app and unknown graph are reported, not fatal.
        assert!(matches!(c.spawn("nope", 1, 1), Err(ClientError::Server(_))));
        assert!(matches!(c.submit(77, 1), Err(ClientError::Server(_))));
        c.shutdown().expect("shutdown");
        drop(c);
        handle.join().expect("server thread");
    }

    /// The static-analysis admission gate, end-to-end: an unsound XSPCL
    /// document shipped over the wire comes back as a structured
    /// rejection with its `XA0xx` diagnostics; a sound document naming a
    /// missing asset fails with a structured error (the factory panic is
    /// caught); and in both cases the connection and the runtime keep
    /// serving.
    #[test]
    fn xspcl_spawn_analysis_gate_over_the_wire() {
        let server = Server::bind(
            ServerConfig {
                workers: 2,
                scale: Scale::Small,
            },
            "127.0.0.1:0",
            None,
        )
        .expect("bind");
        let addr = server.tcp_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run().expect("server run"));
        let mut c = Client::connect(addr).expect("connect");

        // Analyze-dirty: 'snk' reads a stream nothing writes (XA014).
        let dirty = r#"<xspcl>
          <procedure name="main">
            <stream name="s"/><stream name="ghost"/>
            <body>
              <component name="src" class="gen"><out port="o" stream="s"/></component>
              <component name="snk" class="sink">
                <in port="a" stream="s"/><in port="b" stream="ghost"/>
              </component>
            </body>
          </procedure>
        </xspcl>"#;
        match c.spawn_xspcl(dirty, 1, 8) {
            Err(ClientError::Rejected(diags)) => {
                assert!(
                    diags.iter().any(|d| d.code == "XA014" && d.is_error()),
                    "expected an XA014 error, got {diags:?}"
                );
            }
            other => panic!("expected a static-analysis rejection, got {other:?}"),
        }

        // An unreadable document is an error, not a rejection.
        assert!(matches!(
            c.spawn_xspcl("<xspcl", 1, 8),
            Err(ClientError::Server(_))
        ));

        // Analysis-clean but naming an asset the server never
        // provisioned: the component factory's panic is caught and
        // surfaced as a structured error.
        let clean = r#"<xspcl>
          <procedure name="main">
            <stream name="y"/><stream name="out"/>
            <body>
              <component name="src" class="plane_source">
                <out port="o" stream="y"/>
                <param name="file" value="nosuch"/><param name="field" value="0"/>
              </component>
              <component name="p" class="pass"><in port="i" stream="y"/><out port="o" stream="out"/></component>
            </body>
          </procedure>
        </xspcl>"#;
        match c.spawn_xspcl(clean, 1, 8) {
            Err(ClientError::Server(msg)) => {
                assert!(msg.contains("not registered"), "{msg}")
            }
            other => panic!("expected a structured spawn failure, got {other:?}"),
        }

        // The connection and the shared runtime both survived all three.
        c.ping().expect("ping after rejected spawns");
        let g = c.spawn("pip1", 1, 8).expect("regular spawn still works");
        assert_eq!(c.submit(g, 1).expect("submit"), 1);
        c.drain(g).expect("drain");
        c.shutdown().expect("shutdown");
        handle.join().expect("server thread");
    }

    /// The closed-loop SLO plane, end-to-end over real sockets: attach a
    /// policy whose target no real graph can meet (1 ns p99), watch the
    /// collector-driven controller degrade quality, see the decision in
    /// both telemetry exports, and detach with the final counters. Also
    /// covers the refusal paths: unknown graph, non-reconfigurable app,
    /// detach without attach.
    #[test]
    fn slo_policy_attaches_and_decides_over_the_wire() {
        let server = Server::bind(
            ServerConfig {
                workers: 2,
                scale: Scale::Small,
            },
            "127.0.0.1:0",
            None,
        )
        .expect("bind");
        let addr = server.tcp_addr().expect("addr");
        let handle = std::thread::spawn(move || server.run().expect("server run"));
        let mut c = Client::connect(addr).expect("connect");

        // Refusals: no such graph; an app without a quality option.
        assert!(matches!(
            c.attach_slo(99, 1_000, 0.5, 0, 1, 1 << 30),
            Err(ClientError::Server(_))
        ));
        let static_g = c.spawn("pip1", 1, 8).expect("spawn pip1");
        match c.attach_slo(static_g, 1_000, 0.5, 0, 1, 1 << 30) {
            Err(ClientError::Server(msg)) => assert!(msg.contains("quality option"), "{msg}"),
            other => panic!("expected a refusal, got {other:?}"),
        }
        assert!(matches!(
            c.detach_slo(static_g),
            Err(ClientError::Server(_))
        ));
        c.drain(static_g).expect("drain pip1");

        // blur35 carries a set-style quality option (kernel size over
        // queue "mq"). A 1 ns target overloads on the first populated
        // window, so the controller must degrade.
        let g = c.spawn("blur35", 2, 1 << 20).expect("spawn blur35");
        let attached = c.attach_slo(g, 1, 0.5, 0, 1, 1 << 30).expect("attach slo");
        assert!(attached.contains("\"app\":\"blur35\""), "{attached}");
        assert!(attached.contains("\"config\":\"full/"), "{attached}");
        // Re-attach replaces the governor rather than erroring.
        c.attach_slo(g, 1, 0.5, 0, 1, 1 << 30).expect("re-attach");

        // Keep windows populated until the controller toggles (the
        // collector ticks every 250 ms; allow a generous deadline).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let mut submitted = 0u64;
        let decided = loop {
            submitted += c.submit(g, 4).expect("submit");
            let tj = c.telemetry(FORMAT_JSON).expect("telemetry json");
            assert!(tj.contains("\"adapt\":[{"), "{tj}");
            // The toggle *counter* is monotone; `last_action` is
            // overwritten by the holds that follow, so don't race it.
            if tj.contains("\"toggle\":1") {
                break tj;
            }
            if std::time::Instant::now() > deadline {
                panic!("controller never toggled: {tj}");
            }
            std::thread::sleep(std::time::Duration::from_millis(100));
        };
        assert!(decided.contains("\"app\":\"blur35\""), "{decided}");
        assert!(decided.contains("\"full_quality\":false"), "{decided}");

        // The same decision in the Prometheus exposition, and the body
        // still validates.
        let prom = c.telemetry(FORMAT_PROMETHEUS).expect("telemetry prom");
        validate_prometheus(&prom).expect("valid exposition");
        assert!(prom.contains("hinch_adapt_target_p99_ns{graph="), "{prom}");
        assert!(
            prom.contains("action=\"toggle\"} 1"),
            "one toggle so far:\n{prom}"
        );

        // Detach reports the final counters; a second detach is an error.
        let detached = c.detach_slo(g).expect("detach");
        assert!(detached.contains("\"toggle\":1"), "{detached}");
        assert!(matches!(c.detach_slo(g), Err(ClientError::Server(_))));
        let after = c.telemetry(FORMAT_JSON).expect("telemetry json");
        assert!(after.contains("\"adapt\":[]"), "{after}");

        let drained = c.drain(g).expect("drain");
        assert!(
            drained.contains(&format!("\"completed\":{submitted}")),
            "{drained}"
        );
        c.shutdown().expect("shutdown");
        drop(c);
        handle.join().expect("server thread");
    }

    #[test]
    fn http_gateway_round_trip() {
        use std::io::{Read, Write};
        let server = Server::bind(
            ServerConfig {
                workers: 2,
                scale: Scale::Small,
            },
            "127.0.0.1:0",
            Some("127.0.0.1:0"),
        )
        .expect("bind");
        let http = server.http_addr().expect("http addr");
        let handle = std::thread::spawn(move || server.run().expect("server run"));

        let get = |path: &str| -> String {
            let mut s = std::net::TcpStream::connect(http).expect("http connect");
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        let post = |path: &str| -> String {
            let mut s = std::net::TcpStream::connect(http).expect("http connect");
            write!(s, "POST {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };

        assert!(get("/healthz").contains("{\"ok\":true}"));
        let spawned = post("/spawn?app=blur3&depth=2&backlog=16");
        assert!(spawned.contains("\"graph\":0"), "{spawned}");
        let submitted = post("/submit?graph=0&frames=3");
        assert!(submitted.contains("\"accepted\":3"), "{submitted}");
        let drained = post("/drain?graph=0");
        assert!(drained.contains("\"completed\":3"), "{drained}");
        assert!(get("/stats").contains("[]"));
        assert!(post("/submit?graph=0&frames=1").contains("400"), "drained");
        assert!(post("/nope").contains("400"));
        post("/shutdown");
        handle.join().expect("server thread");
    }
}
