//! Minimal HTTP/1.1 gateway over the same request semantics as the
//! binary frame protocol — `curl`-able frame submission and manager-event
//! injection, flowd-style.
//!
//! Routes (all responses are JSON, `Connection: close`):
//!
//! | route | maps to |
//! |-------|---------|
//! | `GET  /healthz` | liveness probe |
//! | `GET  /metrics` | Prometheus text exposition ([`crate::telemetry`]) — the one non-JSON route |
//! | `GET  /stats[?graph=N]` | [`Request::Stats`] |
//! | `POST /spawn?app=pip1[&depth=5][&backlog=32]` | [`Request::Spawn`] |
//! | `POST /submit?graph=N&frames=K` | [`Request::Submit`] — response carries `accepted` (admission control) |
//! | `POST /inject?graph=N&queue=mq&event=flip[&payload=0]` | [`Request::Inject`] |
//! | `POST /drain?graph=N` | [`Request::Drain`] |
//! | `POST /shutdown` | [`Request::Shutdown`] |
//!
//! Hand-rolled on `std::net` — request line + headers are read and the
//! body (none of the routes needs one) is ignored. Not a general HTTP
//! server; just enough for scripted ingress and smoke tests.

use crate::json::{array, JsonObject};
use crate::protocol::{Request, Response, WireDiagnostic, ALL_GRAPHS};
use crate::server::Inner;
use crate::telemetry::FORMAT_PROMETHEUS;
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// A connection that sends no complete request within this window is
/// dropped — an idle client must not pin its handler thread (or delay
/// shutdown joins) indefinitely.
const HTTP_READ_TIMEOUT: Duration = Duration::from_secs(5);

pub(crate) fn accept_loop(listener: TcpListener, inner: Arc<Inner>, tcp_addr: SocketAddr) {
    // One handler thread per connection, mirroring the frame-protocol
    // front-end: a slow or idle client stalls only its own request, never
    // the accept loop or other clients.
    let http_addr = listener.local_addr().ok();
    let mut joins = Vec::new();
    for conn in listener.incoming() {
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(stream) = conn {
            let inner = Arc::clone(&inner);
            if let Ok(j) = std::thread::Builder::new()
                .name("serve-http-conn".into())
                .spawn(move || {
                    let _ = handle(stream, &inner);
                    // The handler that carried a shutdown request pokes
                    // its own accept loop awake so it can exit.
                    if inner.stop.load(Ordering::SeqCst) {
                        if let Some(addr) = http_addr {
                            let _ = TcpStream::connect(addr);
                        }
                    }
                })
            {
                joins.push(j);
            }
        }
    }
    // Unblock the frame-protocol accept loop so shutdown initiated over
    // HTTP propagates (and vice versa — poking an already-closed
    // listener is harmless).
    let _ = TcpStream::connect(tcp_addr);
    // Handlers terminate on their own: each reads with a timeout and a
    // connection serves exactly one request.
    for j in joins {
        let _ = j.join();
    }
}

fn parse_query(query: &str) -> HashMap<&str, &str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .collect()
}

fn param<T: std::str::FromStr>(
    q: &HashMap<&str, &str>,
    key: &str,
    default: Option<T>,
) -> Result<T, String> {
    match q.get(key) {
        Some(v) => v.parse().map_err(|_| format!("bad parameter '{key}'")),
        None => default.ok_or(format!("missing parameter '{key}'")),
    }
}

fn error_json(msg: &str) -> String {
    JsonObject::new().str("error", msg).build()
}

/// Render analyzer diagnostics as the 422 response body.
fn reject_json(diags: &[WireDiagnostic]) -> String {
    let items = diags.iter().map(|d| {
        JsonObject::new()
            .str("severity", if d.is_error() { "error" } else { "warning" })
            .str("code", &d.code)
            .str("message", &d.message)
            .build()
    });
    JsonObject::new()
        .str("error", "rejected by static analysis")
        .raw("diagnostics", &array(items))
        .build()
}

/// Unwrap a protocol response into its payload, or the `(status, body)`
/// to answer with: server errors are 400, analyzer rejections 422.
fn expect_ok(resp: Response) -> Result<Vec<u8>, (u16, String)> {
    match resp {
        Response::Ok(b) => Ok(b),
        Response::Err(e) => Err((400, error_json(&e))),
        Response::Rejected(diags) => Err((422, reject_json(&diags))),
    }
}

const CT_JSON: &str = "application/json";
/// Prometheus text exposition format 0.0.4 — what scrapers negotiate.
const CT_PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Translate one HTTP request into a protocol [`Request`], run it, and
/// render the body. Returns `(http status, content type, body)` — every
/// route is JSON except `GET /metrics`, which serves Prometheus text.
fn route(method: &str, path: &str, query: &str, inner: &Inner) -> (u16, &'static str, String) {
    if (method, path) == ("GET", "/metrics") {
        return match inner.telemetry_payload(FORMAT_PROMETHEUS) {
            Ok(body) => (200, CT_PROM, body),
            Err(crate::server::Refusal::Error(e)) => (400, CT_JSON, error_json(&e)),
            Err(crate::server::Refusal::Rejected(d)) => (422, CT_JSON, reject_json(&d)),
        };
    }
    let q = parse_query(query);
    let bad = |e: String| (400u16, error_json(&e));
    let result: Result<String, (u16, String)> = (|| match (method, path) {
        ("GET", "/healthz") => Ok("{\"ok\":true}".to_string()),
        ("GET", "/stats") => {
            let graph = param(&q, "graph", Some(ALL_GRAPHS)).map_err(bad)?;
            let json = expect_ok(inner.handle(Request::Stats { graph }))?;
            Ok(String::from_utf8_lossy(&json).into_owned())
        }
        ("POST", "/spawn") => {
            let req = Request::Spawn {
                app: param::<String>(&q, "app", None).map_err(bad)?,
                pipeline_depth: param(&q, "depth", Some(5)).map_err(bad)?,
                max_backlog: param(&q, "backlog", Some(32)).map_err(bad)?,
            };
            let b = expect_ok(inner.handle(req))?;
            match <[u8; 4]>::try_from(b.as_slice()) {
                Ok(id) => Ok(format!("{{\"graph\":{}}}", u32::from_be_bytes(id))),
                Err(_) => Err(bad("malformed spawn response".into())),
            }
        }
        ("POST", "/submit") => {
            let req = Request::Submit {
                graph: param(&q, "graph", None).map_err(bad)?,
                frames: param(&q, "frames", None).map_err(bad)?,
            };
            let b = expect_ok(inner.handle(req))?;
            match <[u8; 8]>::try_from(b.as_slice()) {
                Ok(n) => Ok(format!("{{\"accepted\":{}}}", u64::from_be_bytes(n))),
                Err(_) => Err(bad("malformed submit response".into())),
            }
        }
        ("POST", "/inject") => {
            let req = Request::Inject {
                graph: param(&q, "graph", None).map_err(bad)?,
                queue: param::<String>(&q, "queue", None).map_err(bad)?,
                kind: param::<String>(&q, "event", None).map_err(bad)?,
                payload: param(&q, "payload", Some(0)).map_err(bad)?,
            };
            expect_ok(inner.handle(req))?;
            Ok("{\"ok\":true}".to_string())
        }
        ("POST", "/drain") => {
            let req = Request::Drain {
                graph: param(&q, "graph", None).map_err(bad)?,
            };
            let json = expect_ok(inner.handle(req))?;
            Ok(String::from_utf8_lossy(&json).into_owned())
        }
        ("POST", "/shutdown") => {
            expect_ok(inner.handle(Request::Shutdown))?;
            Ok("{\"ok\":true}".to_string())
        }
        _ => Err(bad(format!("no route {method} {path}"))),
    })();
    match result {
        Ok(body) => (200, CT_JSON, body),
        Err((status, body)) => (status, CT_JSON, body),
    }
}

fn handle(stream: TcpStream, inner: &Inner) -> io::Result<()> {
    stream.set_read_timeout(Some(HTTP_READ_TIMEOUT))?;
    stream.set_write_timeout(Some(HTTP_READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    // Drain the headers; no route carries a body.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let (status, content_type, body) = if method.is_empty() || target.is_empty() {
        (
            400,
            CT_JSON,
            "{\"error\":\"malformed request line\"}".to_string(),
        )
    } else {
        route(&method, path, query, inner)
    };
    let reason = match status {
        200 => "OK",
        422 => "Unprocessable Entity",
        _ => "Bad Request",
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}
