//! Minimal HTTP/1.1 gateway over the same request semantics as the
//! binary frame protocol — `curl`-able frame submission and manager-event
//! injection, flowd-style.
//!
//! Routes (all responses are JSON, `Connection: close`):
//!
//! | route | maps to |
//! |-------|---------|
//! | `GET  /healthz` | liveness probe |
//! | `GET  /stats[?graph=N]` | [`Request::Stats`] |
//! | `POST /spawn?app=pip1[&depth=5][&backlog=32]` | [`Request::Spawn`] |
//! | `POST /submit?graph=N&frames=K` | [`Request::Submit`] — response carries `accepted` (admission control) |
//! | `POST /inject?graph=N&queue=mq&event=flip[&payload=0]` | [`Request::Inject`] |
//! | `POST /drain?graph=N` | [`Request::Drain`] |
//! | `POST /shutdown` | [`Request::Shutdown`] |
//!
//! Hand-rolled on `std::net` — request line + headers are read and the
//! body (none of the routes needs one) is ignored. Not a general HTTP
//! server; just enough for scripted ingress and smoke tests.

use crate::protocol::{Request, Response, ALL_GRAPHS};
use crate::server::{json_escape, Inner};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// A connection that sends no complete request within this window is
/// dropped — an idle client must not pin its handler thread (or delay
/// shutdown joins) indefinitely.
const HTTP_READ_TIMEOUT: Duration = Duration::from_secs(5);

pub(crate) fn accept_loop(listener: TcpListener, inner: Arc<Inner>, tcp_addr: SocketAddr) {
    // One handler thread per connection, mirroring the frame-protocol
    // front-end: a slow or idle client stalls only its own request, never
    // the accept loop or other clients.
    let http_addr = listener.local_addr().ok();
    let mut joins = Vec::new();
    for conn in listener.incoming() {
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        if let Ok(stream) = conn {
            let inner = Arc::clone(&inner);
            if let Ok(j) = std::thread::Builder::new()
                .name("serve-http-conn".into())
                .spawn(move || {
                    let _ = handle(stream, &inner);
                    // The handler that carried a shutdown request pokes
                    // its own accept loop awake so it can exit.
                    if inner.stop.load(Ordering::SeqCst) {
                        if let Some(addr) = http_addr {
                            let _ = TcpStream::connect(addr);
                        }
                    }
                })
            {
                joins.push(j);
            }
        }
    }
    // Unblock the frame-protocol accept loop so shutdown initiated over
    // HTTP propagates (and vice versa — poking an already-closed
    // listener is harmless).
    let _ = TcpStream::connect(tcp_addr);
    // Handlers terminate on their own: each reads with a timeout and a
    // connection serves exactly one request.
    for j in joins {
        let _ = j.join();
    }
}

fn parse_query(query: &str) -> HashMap<&str, &str> {
    query
        .split('&')
        .filter_map(|kv| kv.split_once('='))
        .collect()
}

fn param<T: std::str::FromStr>(
    q: &HashMap<&str, &str>,
    key: &str,
    default: Option<T>,
) -> Result<T, String> {
    match q.get(key) {
        Some(v) => v.parse().map_err(|_| format!("bad parameter '{key}'")),
        None => default.ok_or(format!("missing parameter '{key}'")),
    }
}

/// Translate one HTTP request into a protocol [`Request`], run it, and
/// render the JSON body. Returns `(http status, body)`.
fn route(method: &str, path: &str, query: &str, inner: &Inner) -> (u16, String) {
    let q = parse_query(query);
    let run = |req: Request| -> Result<Response, String> { Ok(inner.handle(req)) };
    let result: Result<String, String> = (|| match (method, path) {
        ("GET", "/healthz") => Ok("{\"ok\":true}".to_string()),
        ("GET", "/stats") => {
            let graph = param(&q, "graph", Some(ALL_GRAPHS))?;
            match run(Request::Stats { graph })? {
                Response::Ok(json) => Ok(String::from_utf8_lossy(&json).into_owned()),
                Response::Err(e) => Err(e),
            }
        }
        ("POST", "/spawn") => {
            let req = Request::Spawn {
                app: param::<String>(&q, "app", None)?,
                pipeline_depth: param(&q, "depth", Some(5))?,
                max_backlog: param(&q, "backlog", Some(32))?,
            };
            match run(req)? {
                Response::Ok(b) if b.len() == 4 => {
                    let id = u32::from_be_bytes(b.try_into().unwrap());
                    Ok(format!("{{\"graph\":{id}}}"))
                }
                Response::Ok(_) => Err("malformed spawn response".into()),
                Response::Err(e) => Err(e),
            }
        }
        ("POST", "/submit") => {
            let req = Request::Submit {
                graph: param(&q, "graph", None)?,
                frames: param(&q, "frames", None)?,
            };
            match run(req)? {
                Response::Ok(b) if b.len() == 8 => {
                    let accepted = u64::from_be_bytes(b.try_into().unwrap());
                    Ok(format!("{{\"accepted\":{accepted}}}"))
                }
                Response::Ok(_) => Err("malformed submit response".into()),
                Response::Err(e) => Err(e),
            }
        }
        ("POST", "/inject") => {
            let req = Request::Inject {
                graph: param(&q, "graph", None)?,
                queue: param::<String>(&q, "queue", None)?,
                kind: param::<String>(&q, "event", None)?,
                payload: param(&q, "payload", Some(0))?,
            };
            match run(req)? {
                Response::Ok(_) => Ok("{\"ok\":true}".to_string()),
                Response::Err(e) => Err(e),
            }
        }
        ("POST", "/drain") => {
            let req = Request::Drain {
                graph: param(&q, "graph", None)?,
            };
            match run(req)? {
                Response::Ok(json) => Ok(String::from_utf8_lossy(&json).into_owned()),
                Response::Err(e) => Err(e),
            }
        }
        ("POST", "/shutdown") => match run(Request::Shutdown)? {
            Response::Ok(_) => Ok("{\"ok\":true}".to_string()),
            Response::Err(e) => Err(e),
        },
        _ => Err(format!("no route {method} {path}")),
    })();
    match result {
        Ok(body) => (200, body),
        Err(e) => (400, format!("{{\"error\":\"{}\"}}", json_escape(&e))),
    }
}

fn handle(stream: TcpStream, inner: &Inner) -> io::Result<()> {
    stream.set_read_timeout(Some(HTTP_READ_TIMEOUT))?;
    stream.set_write_timeout(Some(HTTP_READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    // Drain the headers; no route carries a body.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let (status, body) = if method.is_empty() || target.is_empty() {
        (400, "{\"error\":\"malformed request line\"}".to_string())
    } else {
        route(&method, path, query, inner)
    };
    let reason = if status == 200 { "OK" } else { "Bad Request" };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()
}
