//! Seeded open-loop load generation against the in-process runtime.
//!
//! *Open loop* means arrivals are scheduled by the clock, not by the
//! system's responses: a Poisson process (seeded, reproducible) emits
//! frame arrivals at a configured aggregate rate, each arrival targets a
//! uniformly drawn graph instance, and an arrival the tenant's admission
//! bound rejects is counted as **shed** rather than queued — so the
//! harness measures the latency of what the system accepted *under
//! sustained offered load*, the number a closed-loop (submit-and-wait)
//! driver structurally cannot produce.
//!
//! Two harnesses:
//!
//! * [`run_open_loop`] — N concurrent graph instances (mixed app
//!   families), Poisson arrivals with optional periodic bursts,
//!   reporting aggregate frames/sec, shed count and a fleet-wide p50/p99
//!   frame latency (per-tenant histograms merged exactly — same
//!   power-of-two buckets);
//! * [`run_saturated`] — the multi-tenancy overhead probe behind the
//!   `BENCH_serve.json` gate: N identical instances saturated on one
//!   shared pool vs the same N run back-to-back as dedicated
//!   single-graph `run_native` calls with the same worker count. The
//!   shared pool must stay within 0.9× of the dedicated runs' aggregate
//!   throughput (in practice it wins: N small graphs interleave across
//!   workers better than one).

use adapt::{run_scenario, Action, Quality, ScenarioReport, ScenarioSpec};
use apps::experiment::{
    build_isolated, build_isolated_adaptive, reconfig_handle, App, AppConfig, Built, Scale,
};
use hinch::engine::{run_native, RunConfig, DEFAULT_RING_CAPACITY};
use hinch::trace::metrics::{LogHistogram, LOG_BUCKETS};
use hinch::{Event, GraphId, GraphStats, Runtime, RuntimeConfig, SpawnOpts};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Periodic burst profile: every `period`, the arrival rate is
/// multiplied by `factor` for `len`.
#[derive(Debug, Clone, Copy)]
pub struct Burst {
    pub period: Duration,
    pub len: Duration,
    pub factor: f64,
}

/// Open-loop harness configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent graph instances.
    pub graphs: usize,
    /// Worker threads of the shared pool.
    pub workers: usize,
    /// App families cycled over the instances.
    pub mix: Vec<App>,
    pub scale: Scale,
    pub pipeline_depth: usize,
    /// Per-tenant in-flight bound (admission control).
    pub max_backlog: u64,
    /// Aggregate Poisson arrival rate, frames/sec across all graphs.
    pub rate_fps: f64,
    pub duration: Duration,
    pub burst: Option<Burst>,
    pub seed: u64,
    /// Flight-recorder ring slots per worker (0 disables telemetry —
    /// the A/B knob behind [`run_telemetry_probe`]).
    pub ring_capacity: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            graphs: 64,
            workers: 8,
            mix: vec![App::Pip1, App::Jpip1, App::Blur3, App::Pip12],
            scale: Scale::Small,
            pipeline_depth: 3,
            max_backlog: 8,
            rate_fps: 2_000.0,
            duration: Duration::from_secs(2),
            burst: Some(Burst {
                period: Duration::from_millis(500),
                len: Duration::from_millis(100),
                factor: 3.0,
            }),
            seed: 42,
            ring_capacity: DEFAULT_RING_CAPACITY,
        }
    }
}

/// Aggregate result of one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub graphs: usize,
    pub workers: usize,
    /// Arrivals emitted by the generator.
    pub offered: u64,
    /// Arrivals admitted by the tenants.
    pub accepted: u64,
    /// Arrivals rejected by admission control (offered − accepted).
    pub shed: u64,
    /// Frames retired across all tenants.
    pub completed: u64,
    /// Wall time from first arrival to last drain.
    pub elapsed: Duration,
    /// completed / elapsed.
    pub agg_fps: f64,
    pub latency_mean_ns: f64,
    pub latency_p50_ns: u64,
    pub latency_p99_ns: u64,
    /// Reconfigurations applied across tenants (reconfig apps in the mix).
    pub reconfigs: u64,
    /// Final per-tenant stats, ordered by graph id.
    pub per_graph: Vec<GraphStats>,
}

/// Merge per-tenant latency histograms (identical power-of-two bucket
/// layouts) and return `(mean, p50, p99)` of the aggregate.
fn merge_latencies(stats: &[GraphStats]) -> (f64, u64, u64) {
    let mut buckets = [0u64; LOG_BUCKETS];
    let mut count = 0u64;
    let mut weighted_sum = 0.0f64;
    for s in stats {
        let n: u64 = s.latency_buckets.iter().map(|(_, _, c)| c).sum();
        count += n;
        weighted_sum += s.latency_mean_ns * n as f64;
        for &(low, _, c) in &s.latency_buckets {
            buckets[LogHistogram::bucket_of(low)] += c;
        }
    }
    if count == 0 {
        return (0.0, 0, 0);
    }
    let quantile = |q: f64| -> u64 {
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return LogHistogram::bucket_high(b);
            }
        }
        LogHistogram::bucket_high(LOG_BUCKETS - 1)
    };
    (weighted_sum / count as f64, quantile(0.5), quantile(0.99))
}

/// Exponential inter-arrival sample for rate `rate` (events/sec).
fn exp_interval(rng: &mut StdRng, rate: f64) -> Duration {
    // Inverse-CDF sampling; clamp the uniform away from 0 so ln() is finite.
    let u: f64 = rng.gen_range(1e-12..1.0);
    Duration::from_secs_f64((-u.ln() / rate).min(1.0))
}

/// The complete arrival schedule of an open-loop run — `(offset from
/// start, target graph index)` pairs — as a pure function of the config.
///
/// Burst windows are gated on the *scheduled virtual time*, not the wall
/// clock at emission: pacing jitter (a slow submit, a descheduled
/// generator thread) must not change which arrivals land inside a burst,
/// or replay files would differ run to run with the same seed.
pub fn arrival_schedule(cfg: &LoadConfig) -> Vec<(Duration, usize)> {
    assert!(cfg.graphs > 0 && cfg.rate_fps > 0.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = Duration::ZERO;
    let mut out = Vec::new();
    loop {
        let rate = match cfg.burst {
            Some(b) if t.as_nanos() % b.period.as_nanos() < b.len.as_nanos() => {
                cfg.rate_fps * b.factor
            }
            _ => cfg.rate_fps,
        };
        t += exp_interval(&mut rng, rate);
        if t >= cfg.duration {
            return out;
        }
        out.push((t, rng.gen_range(0..cfg.graphs)));
    }
}

/// Run the open-loop harness: spawn the fleet, emit Poisson arrivals for
/// `cfg.duration`, drain everything, aggregate.
pub fn run_open_loop(cfg: &LoadConfig) -> LoadReport {
    assert!(cfg.graphs > 0 && !cfg.mix.is_empty() && cfg.rate_fps > 0.0);
    let runtime = Runtime::new(RuntimeConfig::new(cfg.workers).ring_capacity(cfg.ring_capacity));

    // Fleet: instances cycle over the app mix.
    let ids: Vec<GraphId> = (0..cfg.graphs)
        .map(|i| {
            let app = cfg.mix[i % cfg.mix.len()];
            let built = build_isolated(AppConfig {
                app,
                scale: cfg.scale,
                frames: 0,
            });
            runtime
                .spawn(
                    &built.spec,
                    SpawnOpts::new(app.id())
                        .pipeline_depth(cfg.pipeline_depth)
                        .max_backlog(cfg.max_backlog),
                )
                .expect("spawn fleet instance")
        })
        .collect();

    // The schedule is precomputed — arrival times, burst windows and
    // targets are all captured by the seed; the loop below only paces it
    // against the wall clock. An arrival whose time already passed fires
    // immediately: open loop means arrivals never wait for the system.
    let schedule = arrival_schedule(cfg);
    let start = Instant::now();
    let mut offered = 0u64;
    let mut accepted = 0u64;
    for &(at, target) in &schedule {
        let due = start + at;
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        offered += 1;
        accepted += runtime.submit(ids[target], 1).expect("fleet submit");
    }

    let mut per_graph: Vec<GraphStats> = ids
        .into_iter()
        .map(|id| runtime.drain(id).expect("fleet drain"))
        .collect();
    let elapsed = start.elapsed();
    per_graph.sort_by_key(|s| s.id.0);
    runtime.shutdown();

    let completed: u64 = per_graph.iter().map(|s| s.completed).sum();
    let reconfigs: u64 = per_graph.iter().map(|s| s.reconfigs).sum();
    let (latency_mean_ns, latency_p50_ns, latency_p99_ns) = merge_latencies(&per_graph);
    LoadReport {
        graphs: per_graph.len(),
        workers: cfg.workers,
        offered,
        accepted,
        shed: offered - accepted,
        completed,
        elapsed,
        agg_fps: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        latency_mean_ns,
        latency_p50_ns,
        latency_p99_ns,
        reconfigs,
        per_graph,
    }
}

/// Saturated multi-tenancy probe (the bench gate's numerator and
/// denominator).
#[derive(Debug, Clone)]
pub struct SaturatedReport {
    pub graphs: usize,
    pub workers: usize,
    pub frames_per_graph: u64,
    /// Wall time to run all instances concurrently on one shared pool.
    pub multi_elapsed: Duration,
    /// Summed wall time of the same instances as dedicated back-to-back
    /// single-graph runs.
    pub solo_elapsed: Duration,
    pub multi_fps: f64,
    pub solo_fps: f64,
    /// multi throughput / solo throughput (= solo time / multi time).
    pub ratio: f64,
}

/// Run `graphs` instances of `app` to `frames` frames each, (a) all
/// concurrently on a shared `workers`-thread pool and (b) back-to-back
/// as dedicated `run_native` calls with the same worker count, and
/// compare aggregate throughput.
pub fn run_saturated(
    app: App,
    scale: Scale,
    graphs: usize,
    frames: u64,
    workers: usize,
    pipeline_depth: usize,
) -> SaturatedReport {
    let cfg = AppConfig { app, scale, frames };

    // Dedicated baseline: one graph at a time, full pool each.
    let solo_start = Instant::now();
    for _ in 0..graphs {
        let built = build_isolated(cfg);
        let run_cfg = RunConfig::new(frames)
            .workers(workers)
            .pipeline_depth(pipeline_depth);
        let report = run_native(&built.spec, &run_cfg).expect("solo run");
        assert_eq!(report.iterations, frames);
    }
    let solo_elapsed = solo_start.elapsed();

    // Shared pool: all instances at once. Backlog bound = frames, i.e.
    // admission control is open — this probe measures scheduling, not
    // shedding.
    let multi_elapsed = shared_pool_elapsed(
        app,
        scale,
        graphs,
        frames,
        workers,
        pipeline_depth,
        DEFAULT_RING_CAPACITY,
    );

    let total = (graphs as u64 * frames) as f64;
    let multi_fps = total / multi_elapsed.as_secs_f64().max(1e-9);
    let solo_fps = total / solo_elapsed.as_secs_f64().max(1e-9);
    SaturatedReport {
        graphs,
        workers,
        frames_per_graph: frames,
        multi_elapsed,
        solo_elapsed,
        multi_fps,
        solo_fps,
        ratio: multi_fps / solo_fps,
    }
}

/// Wall time to run `graphs` saturated instances of `app` concurrently
/// on one shared pool, with the flight recorder at `ring_capacity` slots
/// per worker (0 = telemetry off).
fn shared_pool_elapsed(
    app: App,
    scale: Scale,
    graphs: usize,
    frames: u64,
    workers: usize,
    pipeline_depth: usize,
    ring_capacity: usize,
) -> Duration {
    let cfg = AppConfig { app, scale, frames };
    let runtime = Runtime::new(RuntimeConfig::new(workers).ring_capacity(ring_capacity));
    let ids: Vec<GraphId> = (0..graphs)
        .map(|_| {
            let built = build_isolated(cfg);
            runtime
                .spawn(
                    &built.spec,
                    SpawnOpts::new(app.id())
                        .pipeline_depth(pipeline_depth)
                        .max_backlog(frames),
                )
                .expect("spawn saturated instance")
        })
        .collect();
    let start = Instant::now();
    for &id in &ids {
        assert_eq!(runtime.submit(id, frames).expect("submit"), frames);
    }
    for &id in &ids {
        let stats = runtime.drain(id).expect("drain");
        assert_eq!(stats.completed, frames);
    }
    let elapsed = start.elapsed();
    runtime.shutdown();
    elapsed
}

/// A/B result of the flight-recorder overhead probe (the `telemetry`
/// section of `BENCH_serve.json`).
#[derive(Debug, Clone)]
pub struct TelemetryProbe {
    pub graphs: usize,
    pub workers: usize,
    pub frames_per_graph: u64,
    /// Runs per side; each side reports its best (least-noise) run.
    pub trials: usize,
    /// Best throughput with the flight recorder on (default capacity).
    pub on_fps: f64,
    /// Best throughput with the flight recorder off (`ring_capacity 0`).
    pub off_fps: f64,
    /// on / off — `>= 0.97` means always-on telemetry costs <= 3%.
    pub ratio: f64,
}

/// Measure the always-on flight recorder's throughput cost: the same
/// saturated shared-pool workload with rings at default capacity vs
/// disabled, best-of-`trials` per side (wall-clock noise on a shared
/// machine easily exceeds the recorder's per-job seqlock write, so the
/// minimum is the honest comparison).
pub fn run_telemetry_probe(
    app: App,
    scale: Scale,
    graphs: usize,
    frames: u64,
    workers: usize,
    pipeline_depth: usize,
    trials: usize,
) -> TelemetryProbe {
    let best = |ring_capacity: usize| -> f64 {
        let total = (graphs as u64 * frames) as f64;
        (0..trials.max(1))
            .map(|_| {
                let elapsed = shared_pool_elapsed(
                    app,
                    scale,
                    graphs,
                    frames,
                    workers,
                    pipeline_depth,
                    ring_capacity,
                );
                total / elapsed.as_secs_f64().max(1e-9)
            })
            .fold(0.0f64, f64::max)
    };
    let off_fps = best(0);
    let on_fps = best(DEFAULT_RING_CAPACITY);
    TelemetryProbe {
        graphs,
        workers,
        frames_per_graph: frames,
        trials: trials.max(1),
        on_fps,
        off_fps,
        ratio: on_fps / off_fps.max(1e-9),
    }
}

/// Configuration of the real-runtime burst-replay harness.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    pub scenario: ScenarioSpec,
    /// Worker threads of the runtime executing the replay.
    pub workers: usize,
    /// Cap on real frames executed: the virtual scenario's arrival count
    /// can exceed a test budget; decisions past the cap are not replayed.
    pub max_frames: u64,
}

impl ReplayConfig {
    pub fn small(app: App, seed: u64) -> Self {
        Self {
            scenario: ScenarioSpec::small(app, seed),
            workers: 2,
            max_frames: 60,
        }
    }
}

/// Result of re-executing a scenario's decision schedule on the real
/// runtime (quality toggles via `Runtime::inject`, resizes / depth steps
/// via drain + respawn).
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// The virtual-time scenario whose decisions were replayed (carries
    /// the deadline-miss accounting and the replay log).
    pub scenario: ScenarioReport,
    /// Real frames executed (≤ the scenario's arrival count).
    pub frames: u64,
    /// Quality-toggle events injected into the live graph.
    pub toggles: u64,
    /// Drain + respawn rebuilds (slice resize or depth step).
    pub rebuilds: u64,
    /// Reconfigurations the runtime observed across all incarnations.
    pub reconfigs: u64,
    /// FNV-1a/64 over every captured output frame, per incarnation in
    /// retirement order — byte-determinism fingerprint of the replay.
    pub output_digest: String,
    pub completed: u64,
    pub latency_p99_ns: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_u64(h: u64, v: u64) -> u64 {
    fnv_bytes(h, &v.to_le_bytes())
}

/// Fold one incarnation's captured outputs into the digest (structure
/// before content, so a missing frame can never alias a shifted one).
fn fold_outputs(mut h: u64, built: &Built) -> u64 {
    h = fnv_u64(h, built.capture_ports as u64);
    for p in 0..built.capture_ports {
        let frames = built.assets.captured(built.capture, p);
        h = fnv_u64(h, frames.len() as u64);
        for f in &frames {
            h = fnv_u64(h, f.len() as u64);
            h = fnv_bytes(h, f);
        }
    }
    h
}

fn wait_quiescent(rt: &Runtime, id: GraphId) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = rt.stats(id).expect("replay stats");
        if s.inflight == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "replay never quiesced: {s:?}");
        std::thread::yield_now();
    }
}

/// Replay the scenario's decision schedule against the real runtime.
///
/// The graph is drip-fed in segments bounded by the scenario's decision
/// points (`after_frames`); at each boundary the harness waits for
/// quiescence, then actuates exactly what the controller decided: a
/// quality toggle becomes a manager-queue event (the graph keeps
/// running), a resize or depth step becomes a drain + respawn at the new
/// configuration. Because every actuation lands at a quiescent,
/// frame-exact boundary, the captured outputs — and hence
/// `output_digest` — are a pure function of the scenario spec.
pub fn run_burst_replay(cfg: &ReplayConfig) -> ReplayReport {
    let scenario = run_scenario(&cfg.scenario);
    let frames = scenario.arrivals.min(cfg.max_frames);
    let app = cfg.scenario.app;
    let handle = reconfig_handle(app);

    let runtime = Runtime::new(RuntimeConfig::new(cfg.workers));
    let spawn = |slices: usize, depth: usize| -> (Built, GraphId) {
        let built = build_isolated_adaptive(
            AppConfig {
                app,
                scale: cfg.scenario.scale,
                frames: 0,
            },
            Some(slices),
        );
        let id = runtime
            .spawn(
                &built.spec,
                SpawnOpts::new(app.id())
                    .pipeline_depth(depth)
                    .max_backlog(frames.max(1)),
            )
            .expect("spawn replay graph");
        (built, id)
    };
    // Reconfig graphs spawn degraded (second picture disabled / 3×3
    // kernel); one idempotent event brings a fresh incarnation to the
    // wanted quality before any frame flows.
    let sync_quality = |id: GraphId, live: &mut Quality, want: Quality| {
        if let Some(h) = handle {
            if *live != want {
                let payload = match want {
                    Quality::Full => h.full_payload,
                    Quality::Degraded => h.degraded_payload,
                };
                runtime
                    .inject(id, h.queue, Event::with_payload(h.event, payload))
                    .expect("replay inject");
                *live = want;
            }
        }
    };

    let mut current = scenario.initial;
    let (mut built, mut id) = spawn(current.slices, current.pipeline_depth);
    let mut live_quality = Quality::Degraded;
    sync_quality(id, &mut live_quality, current.quality);

    let mut toggles = 0u64;
    let mut rebuilds = 0u64;
    let mut reconfigs = 0u64;
    let mut completed = 0u64;
    let mut digest = FNV_OFFSET;
    let mut retired: Vec<GraphStats> = Vec::new();
    let mut done = 0u64;

    for d in scenario
        .decisions
        .iter()
        .filter(|d| d.after_frames < frames)
    {
        if d.after_frames > done {
            let n = d.after_frames - done;
            assert_eq!(runtime.submit(id, n).expect("replay submit"), n);
            done = d.after_frames;
        }
        wait_quiescent(&runtime, id);
        match d.action {
            Action::Hold => {}
            // The next rebuild's `config_after` carries the cumulative
            // quality, so toggles don't need to update `current`.
            Action::Toggle { to } => {
                sync_quality(id, &mut live_quality, to);
                toggles += 1;
            }
            Action::Resize { .. } | Action::StepDepth { .. } => {
                current = d.config_after;
                let stats = runtime.drain(id).expect("replay drain");
                reconfigs += stats.reconfigs;
                completed += stats.completed;
                digest = fold_outputs(digest, &built);
                retired.push(stats);
                rebuilds += 1;
                (built, id) = spawn(current.slices, current.pipeline_depth);
                live_quality = Quality::Degraded;
                sync_quality(id, &mut live_quality, current.quality);
            }
        }
    }
    if frames > done {
        let n = frames - done;
        assert_eq!(runtime.submit(id, n).expect("replay submit"), n);
    }
    let stats = runtime.drain(id).expect("replay drain");
    reconfigs += stats.reconfigs;
    completed += stats.completed;
    digest = fold_outputs(digest, &built);
    retired.push(stats);
    runtime.shutdown();

    let (_, _, latency_p99_ns) = merge_latencies(&retired);
    ReplayReport {
        scenario,
        frames,
        toggles,
        rebuilds,
        reconfigs,
        output_digest: format!("{digest:016x}"),
        completed,
        latency_p99_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_small_fleet_completes_and_reports() {
        let cfg = LoadConfig {
            graphs: 4,
            workers: 2,
            mix: vec![App::Pip1, App::Blur3],
            rate_fps: 200.0,
            duration: Duration::from_millis(300),
            ..LoadConfig::default()
        };
        let r = run_open_loop(&cfg);
        assert_eq!(r.graphs, 4);
        assert!(r.offered > 0);
        assert_eq!(r.accepted + r.shed, r.offered);
        assert_eq!(
            r.completed, r.accepted,
            "drain retires every accepted frame"
        );
        if r.completed > 0 {
            assert!(r.agg_fps > 0.0);
            assert!(r.latency_p99_ns >= r.latency_p50_ns);
        }
    }

    #[test]
    fn open_loop_is_seed_reproducible_in_offered_schedule() {
        // The arrival schedule is a pure function of the config (burst
        // windows gate on scheduled virtual time, not the wall clock), so
        // the offered count is *exactly* reproducible; acceptance depends
        // on scheduling, so only the generator side is asserted.
        let cfg = LoadConfig {
            graphs: 2,
            workers: 2,
            mix: vec![App::Pip1],
            rate_fps: 500.0,
            duration: Duration::from_millis(200),
            ..LoadConfig::default()
        };
        let a = run_open_loop(&cfg);
        let b = run_open_loop(&cfg);
        assert_eq!(a.offered, b.offered);
        assert_eq!(a.offered, arrival_schedule(&cfg).len() as u64);
    }

    #[test]
    fn arrival_schedule_is_pure_and_burst_sensitive() {
        let cfg = LoadConfig {
            rate_fps: 5_000.0,
            duration: Duration::from_secs(1),
            ..LoadConfig::default()
        };
        assert_eq!(arrival_schedule(&cfg), arrival_schedule(&cfg));
        // Bursts raise the rate, so dropping them must lower the count.
        let flat = LoadConfig {
            burst: None,
            ..cfg.clone()
        };
        assert!(
            arrival_schedule(&cfg).len() > arrival_schedule(&flat).len(),
            "burst windows must add arrivals"
        );
        // Every target index is in range; times are non-decreasing.
        let sched = arrival_schedule(&cfg);
        for w in sched.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        assert!(sched.iter().all(|&(_, g)| g < cfg.graphs));
    }

    #[test]
    fn burst_replay_executes_decision_schedule() {
        let cfg = ReplayConfig::small(App::Pip12, 42);
        let r = run_burst_replay(&cfg);
        assert_eq!(r.completed, r.frames);
        assert!(
            r.toggles + r.rebuilds > 0,
            "the bursty scenario must actuate within the replayed prefix"
        );
        // Every injected toggle reaches the graph as a reconfiguration;
        // the parked in-graph injector contributes none, and each
        // incarnation adds at most one quality-sync event.
        assert!(
            r.reconfigs >= r.toggles && r.reconfigs <= r.toggles + r.rebuilds + 1,
            "reconfigs {} outside [{}, {}]",
            r.reconfigs,
            r.toggles,
            r.toggles + r.rebuilds + 1
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(3))]

        // Satellite: the end-to-end burst replay is byte-deterministic —
        // same seed, same decision schedule, same captured output bytes.
        #[test]
        fn burst_replay_is_byte_deterministic(seed in 0u64..1 << 32) {
            use proptest::prelude::prop_assert_eq;
            let mut cfg = ReplayConfig::small(App::Pip12, seed);
            cfg.max_frames = 36;
            let a = run_burst_replay(&cfg);
            let b = run_burst_replay(&cfg);
            prop_assert_eq!(&a.output_digest, &b.output_digest);
            prop_assert_eq!(a.toggles, b.toggles);
            prop_assert_eq!(a.rebuilds, b.rebuilds);
            prop_assert_eq!(a.completed, b.completed);
            prop_assert_eq!(
                a.scenario.render_replay(),
                b.scenario.render_replay()
            );
        }
    }

    #[test]
    fn merged_latency_quantiles_match_single_histogram() {
        use hinch::trace::metrics::LogHistogram;
        let h = LogHistogram::default();
        for v in [100u64, 200, 400, 800, 100_000] {
            h.record(v);
        }
        let stats = GraphStats {
            id: GraphId(0),
            label: "x".into(),
            submitted: 5,
            completed: 5,
            inflight: 0,
            reconfigs: 0,
            jobs_executed: 0,
            latency_mean_ns: h.mean(),
            latency_p50_ns: h.quantile(0.5),
            latency_p99_ns: h.quantile(0.99),
            latency_buckets: h.nonzero_buckets(),
            shed: 0,
            failure: None,
        };
        let (mean, p50, p99) = merge_latencies(&[stats]);
        assert!((mean - h.mean()).abs() < 1e-9);
        assert_eq!(p50, h.quantile(0.5));
        assert_eq!(p99, h.quantile(0.99));
    }

    #[test]
    fn saturated_probe_runs_both_sides() {
        let r = run_saturated(App::Pip1, Scale::Small, 2, 4, 2, 2);
        assert_eq!(r.graphs, 2);
        assert!(r.multi_fps > 0.0 && r.solo_fps > 0.0 && r.ratio > 0.0);
    }

    fn graph_stats_for(id: u32, h: &LogHistogram) -> GraphStats {
        let n: u64 = h.count();
        GraphStats {
            id: GraphId(id),
            label: format!("g{id}"),
            submitted: n,
            completed: n,
            inflight: 0,
            reconfigs: 0,
            jobs_executed: 0,
            latency_mean_ns: h.mean(),
            latency_p50_ns: h.quantile(0.5),
            latency_p99_ns: h.quantile(0.99),
            latency_buckets: h.nonzero_buckets(),
            shed: 0,
            failure: None,
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        // Satellite: bucket-merged p50/p99 equals (a) the quantile of a
        // single histogram over the whole stream *exactly*, and (b) the
        // true percentile of the unmerged value stream within one
        // bucket width — with values adversarially hugging the
        // power-of-two bucket edges (2^k - 1, 2^k, 2^k + 1), where an
        // off-by-one in the merge re-bucketing would shift the result a
        // whole bucket.
        #[test]
        fn merged_quantiles_match_unmerged_stream(
            raw in proptest::collection::vec(
                (0u32..41, -1i64..=1, 0usize..6),
                1..200,
            ),
        ) {
            use proptest::prelude::prop_assert_eq;
            let values: Vec<(u64, usize)> = raw
                .iter()
                .map(|&(k, off, g)| ((((1u64 << k) as i64) + off).max(0) as u64, g))
                .collect();

            // Partition the stream across up to 6 per-graph histograms.
            let per_graph: Vec<LogHistogram> =
                (0..6).map(|_| LogHistogram::default()).collect();
            let combined = LogHistogram::default();
            for &(v, g) in &values {
                per_graph[g].record(v);
                combined.record(v);
            }
            let stats: Vec<GraphStats> = per_graph
                .iter()
                .enumerate()
                .map(|(i, h)| graph_stats_for(i as u32, h))
                .collect();
            let (_, p50, p99) = merge_latencies(&stats);

            // (a) merge is exact against the single-histogram quantile.
            prop_assert_eq!(p50, combined.quantile(0.5));
            prop_assert_eq!(p99, combined.quantile(0.99));

            // (b) against the raw stream: same bucket, so within one
            // bucket width.
            let mut sorted: Vec<u64> = values.iter().map(|&(v, _)| v).collect();
            sorted.sort_unstable();
            for (q, merged) in [(0.5f64, p50), (0.99, p99)] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
                let exact = sorted[rank - 1];
                prop_assert_eq!(
                    merged,
                    LogHistogram::bucket_high(LogHistogram::bucket_of(exact)),
                    "q={} exact={} merged={}", q, exact, merged
                );
            }
        }
    }
}
