//! Length-prefixed binary frame protocol for graph serving.
//!
//! Every message — request or response — is one *frame* on the wire:
//!
//! ```text
//! u32 BE body length | body
//! ```
//!
//! A request body is an opcode byte followed by opcode-specific fields; a
//! response body is a status byte (`0` ok, `1` error, `2` rejected)
//! followed by a payload (for errors: the message as raw UTF-8; for
//! rejections: a list of structured diagnostics — see
//! [`WireDiagnostic`]). Integers are big-endian; strings are `u16 BE
//! length + UTF-8 bytes` unless noted.
//!
//! | opcode | request fields | ok-response payload |
//! |--------|----------------|---------------------|
//! | `0x01` Spawn      | app `str`, depth `u32`, max_backlog `u64` | graph id `u32` |
//! | `0x02` Submit     | graph `u32`, frames `u64`                 | accepted `u64` |
//! | `0x03` Inject     | graph `u32`, queue `str`, kind `str`, payload `i64` | — |
//! | `0x04` Stats      | graph `u32` (`0xFFFF_FFFF` = all)         | JSON `str` |
//! | `0x05` Drain      | graph `u32`                               | JSON `str` |
//! | `0x06` Ping       | —                                         | — |
//! | `0x07` Shutdown   | —                                         | — |
//! | `0x08` SpawnXspcl | source `lstr` (u32 BE length), depth `u32`, max_backlog `u64` | graph id `u32` |
//! | `0x09` Telemetry  | format `u8` (0 json, 1 prometheus, 2 table)  | rendered text |
//! | `0x0A` AttachSlo  | graph `u32`, target_p99_ns `u64`, low_watermark `u64` (f64 bits), cooldown_ticks `u32`, min_samples `u64`, max_backlog `u64` | JSON `str` |
//! | `0x0B` DetachSlo  | graph `u32`                               | JSON `str` |
//!
//! `Submit` is where admission control surfaces: the response carries how
//! many of the offered frames the server *accepted* (possibly 0) — the
//! client's backpressure signal. `Inject` is reconfiguration over the
//! wire: the event lands in the named manager queue and takes effect at
//! the graph's next quiescent point, exactly as an in-process event.
//!
//! `Spawn`/`SpawnXspcl` are where the static analyzer surfaces: before a
//! graph is admitted the server runs `crates/analyze` over the spec, and
//! an analysis error rejects the spawn with status `2` carrying the
//! `XA0xx` diagnostics, so the client sees *why* the spec is unsound
//! rather than an opaque failure (or worse, a graph that deadlocks).

use std::io::{self, Read, Write};

/// Largest accepted frame body; guards the server against a garbage
/// length prefix allocating gigabytes.
pub const MAX_FRAME: u32 = 1 << 20;

/// Wildcard graph id in a `Stats` request: report every tenant.
pub const ALL_GRAPHS: u32 = u32::MAX;

/// Request opcodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Spawn {
        app: String,
        pipeline_depth: u32,
        max_backlog: u64,
    },
    Submit {
        graph: u32,
        frames: u64,
    },
    Inject {
        graph: u32,
        queue: String,
        kind: String,
        payload: i64,
    },
    Stats {
        graph: u32,
    },
    Drain {
        graph: u32,
    },
    Ping,
    Shutdown,
    /// Spawn from XSPCL source shipped over the wire: the server parses,
    /// statically analyzes and elaborates the document against its
    /// component registry before admitting the graph.
    SpawnXspcl {
        source: String,
        pipeline_depth: u32,
        max_backlog: u64,
    },
    /// Live-telemetry export: the server samples its flight recorder and
    /// returns one rendered snapshot. `format` selects the rendering
    /// (see `crate::telemetry::{FORMAT_JSON, FORMAT_PROMETHEUS,
    /// FORMAT_TABLE}`), so clients stay parser-free.
    Telemetry {
        format: u8,
    },
    /// Attach (or replace) a latency SLO policy on a graph: the server's
    /// closed-loop controller (`crates/adapt`) then watches the graph's
    /// rolling telemetry windows and toggles its quality option to hold
    /// the objective. `low_watermark` travels as raw `f64` bits so the
    /// encoding is exact. Decisions surface in the `Telemetry` export
    /// (`hinch_adapt_*`).
    AttachSlo {
        graph: u32,
        target_p99_ns: u64,
        /// `f64::to_bits` of the recovery watermark in (0, 1].
        low_watermark_bits: u64,
        cooldown_ticks: u32,
        min_samples: u64,
        max_backlog: u64,
    },
    /// Detach the SLO policy from a graph; the response carries the
    /// controller's final decision counters as JSON.
    DetachSlo {
        graph: u32,
    },
}

/// One static-analysis finding carried over the wire: the stable `XA0xx`
/// code, its severity and the human-readable message. A flattened
/// [`analyze::Diagnostic`] — spans and fix-its stay server-side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiagnostic {
    /// 0 = warning, 1 = error.
    pub severity: u8,
    /// Stable machine-readable code (`XA001`, `XA090`, ...).
    pub code: String,
    pub message: String,
}

impl WireDiagnostic {
    pub fn is_error(&self) -> bool {
        self.severity == SEVERITY_ERROR
    }
}

impl std::fmt::Display for WireDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = if self.is_error() { "error" } else { "warning" };
        write!(f, "{sev}[{}]: {}", self.code, self.message)
    }
}

pub const SEVERITY_WARNING: u8 = 0;
pub const SEVERITY_ERROR: u8 = 1;

/// A decoded response: `Ok` with opcode-specific payload bytes, an error
/// message, or a spawn rejected by static analysis with its diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Ok(Vec<u8>),
    Err(String),
    Rejected(Vec<WireDiagnostic>),
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---- primitive codecs ---------------------------------------------------

/// Append a `u16 BE length + UTF-8` string. Fails (instead of panicking)
/// on strings over `u16::MAX` bytes — a client bug surfaced as a
/// structured error, not a poisoned connection.
pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) -> io::Result<()> {
    let len = u16::try_from(s.len()).map_err(|_| bad("string over u16::MAX bytes"))?;
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Append a `u32 BE length + UTF-8` *long* string (XSPCL sources can
/// exceed 64 KiB). Still bounded by [`MAX_FRAME`] at framing time.
pub(crate) fn put_lstr(buf: &mut Vec<u8>, s: &str) -> io::Result<()> {
    let len = u32::try_from(s.len()).map_err(|_| bad("string over u32::MAX bytes"))?;
    if len > MAX_FRAME {
        return Err(bad("string exceeds maximum frame size"));
    }
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| bad("overflow"))?;
        if end > self.buf.len() {
            return Err(bad("truncated frame"));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Take exactly `N` bytes as a fixed-size array. Infallible once
    /// `take` succeeds — no `try_into().unwrap()` on the decode path.
    fn array<const N: usize>(&mut self) -> io::Result<[u8; N]> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_be_bytes(self.array()?))
    }

    pub(crate) fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.array()?))
    }

    pub(crate) fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.array()?))
    }

    pub(crate) fn i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_be_bytes(self.array()?))
    }

    pub(crate) fn str(&mut self) -> io::Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("non-UTF-8 string"))
    }

    /// Long-string counterpart of [`Cursor::str`] (`u32 BE` length).
    pub(crate) fn lstr(&mut self) -> io::Result<String> {
        let len = self.u32()?;
        if len > MAX_FRAME {
            return Err(bad("string length exceeds maximum frame size"));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("non-UTF-8 string"))
    }

    pub(crate) fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes in frame"))
        }
    }
}

// ---- framing ------------------------------------------------------------

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len()).map_err(|_| bad("frame too large"))?;
    if len > MAX_FRAME {
        return Err(bad("frame too large"));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `None` on clean EOF at a
/// frame boundary (peer hung up between requests).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(bad(format!("frame length {len} exceeds {MAX_FRAME}")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

// ---- request codec ------------------------------------------------------

impl Request {
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        let mut b = Vec::new();
        match self {
            Request::Spawn {
                app,
                pipeline_depth,
                max_backlog,
            } => {
                b.push(0x01);
                put_str(&mut b, app)?;
                b.extend_from_slice(&pipeline_depth.to_be_bytes());
                b.extend_from_slice(&max_backlog.to_be_bytes());
            }
            Request::Submit { graph, frames } => {
                b.push(0x02);
                b.extend_from_slice(&graph.to_be_bytes());
                b.extend_from_slice(&frames.to_be_bytes());
            }
            Request::Inject {
                graph,
                queue,
                kind,
                payload,
            } => {
                b.push(0x03);
                b.extend_from_slice(&graph.to_be_bytes());
                put_str(&mut b, queue)?;
                put_str(&mut b, kind)?;
                b.extend_from_slice(&payload.to_be_bytes());
            }
            Request::Stats { graph } => {
                b.push(0x04);
                b.extend_from_slice(&graph.to_be_bytes());
            }
            Request::Drain { graph } => {
                b.push(0x05);
                b.extend_from_slice(&graph.to_be_bytes());
            }
            Request::Ping => b.push(0x06),
            Request::Shutdown => b.push(0x07),
            Request::SpawnXspcl {
                source,
                pipeline_depth,
                max_backlog,
            } => {
                b.push(0x08);
                put_lstr(&mut b, source)?;
                b.extend_from_slice(&pipeline_depth.to_be_bytes());
                b.extend_from_slice(&max_backlog.to_be_bytes());
            }
            Request::Telemetry { format } => {
                b.push(0x09);
                b.push(*format);
            }
            Request::AttachSlo {
                graph,
                target_p99_ns,
                low_watermark_bits,
                cooldown_ticks,
                min_samples,
                max_backlog,
            } => {
                b.push(0x0a);
                b.extend_from_slice(&graph.to_be_bytes());
                b.extend_from_slice(&target_p99_ns.to_be_bytes());
                b.extend_from_slice(&low_watermark_bits.to_be_bytes());
                b.extend_from_slice(&cooldown_ticks.to_be_bytes());
                b.extend_from_slice(&min_samples.to_be_bytes());
                b.extend_from_slice(&max_backlog.to_be_bytes());
            }
            Request::DetachSlo { graph } => {
                b.push(0x0b);
                b.extend_from_slice(&graph.to_be_bytes());
            }
        }
        Ok(b)
    }

    pub fn decode(body: &[u8]) -> io::Result<Request> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            0x01 => Request::Spawn {
                app: c.str()?,
                pipeline_depth: c.u32()?,
                max_backlog: c.u64()?,
            },
            0x02 => Request::Submit {
                graph: c.u32()?,
                frames: c.u64()?,
            },
            0x03 => Request::Inject {
                graph: c.u32()?,
                queue: c.str()?,
                kind: c.str()?,
                payload: c.i64()?,
            },
            0x04 => Request::Stats { graph: c.u32()? },
            0x05 => Request::Drain { graph: c.u32()? },
            0x06 => Request::Ping,
            0x07 => Request::Shutdown,
            0x08 => Request::SpawnXspcl {
                source: c.lstr()?,
                pipeline_depth: c.u32()?,
                max_backlog: c.u64()?,
            },
            0x09 => Request::Telemetry { format: c.u8()? },
            0x0a => Request::AttachSlo {
                graph: c.u32()?,
                target_p99_ns: c.u64()?,
                low_watermark_bits: c.u64()?,
                cooldown_ticks: c.u32()?,
                min_samples: c.u64()?,
                max_backlog: c.u64()?,
            },
            0x0b => Request::DetachSlo { graph: c.u32()? },
            op => return Err(bad(format!("unknown opcode 0x{op:02x}"))),
        };
        c.done()?;
        Ok(req)
    }
}

// ---- response codec -----------------------------------------------------

impl Response {
    pub fn encode(&self) -> io::Result<Vec<u8>> {
        match self {
            Response::Ok(payload) => {
                let mut b = Vec::with_capacity(1 + payload.len());
                b.push(0);
                b.extend_from_slice(payload);
                Ok(b)
            }
            Response::Err(msg) => {
                let mut b = Vec::with_capacity(1 + msg.len());
                b.push(1);
                b.extend_from_slice(msg.as_bytes());
                Ok(b)
            }
            Response::Rejected(diags) => {
                let mut b = Vec::new();
                b.push(2);
                let count = u16::try_from(diags.len()).map_err(|_| bad("too many diagnostics"))?;
                b.extend_from_slice(&count.to_be_bytes());
                for d in diags {
                    b.push(d.severity);
                    put_str(&mut b, &d.code)?;
                    put_str(&mut b, &d.message)?;
                }
                Ok(b)
            }
        }
    }

    pub fn decode(body: &[u8]) -> io::Result<Response> {
        let (&status, payload) = body.split_first().ok_or_else(|| bad("empty response"))?;
        match status {
            0 => Ok(Response::Ok(payload.to_vec())),
            1 => Ok(Response::Err(String::from_utf8_lossy(payload).into_owned())),
            2 => {
                let mut c = Cursor::new(payload);
                let count = c.u16()? as usize;
                let mut diags = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    diags.push(WireDiagnostic {
                        severity: c.u8()?,
                        code: c.str()?,
                        message: c.str()?,
                    });
                }
                c.done()?;
                Ok(Response::Rejected(diags))
            }
            s => Err(bad(format!("unknown response status {s}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Spawn {
                app: "pip1".into(),
                pipeline_depth: 5,
                max_backlog: 32,
            },
            Request::Submit {
                graph: 3,
                frames: 17,
            },
            Request::Inject {
                graph: 0,
                queue: "mq".into(),
                kind: "flip".into(),
                payload: -7,
            },
            Request::Stats { graph: ALL_GRAPHS },
            Request::Drain { graph: 9 },
            Request::Ping,
            Request::Shutdown,
            Request::SpawnXspcl {
                source: "<application name=\"x\"/>".into(),
                pipeline_depth: 2,
                max_backlog: 8,
            },
            Request::Telemetry { format: 1 },
            Request::AttachSlo {
                graph: 4,
                target_p99_ns: 2_000_000,
                low_watermark_bits: 0.5f64.to_bits(),
                cooldown_ticks: 2,
                min_samples: 4,
                max_backlog: 16,
            },
            Request::DetachSlo { graph: 4 },
        ];
        for req in reqs {
            let decoded = Request::decode(&req.encode().unwrap()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Ok(vec![1, 2, 3]),
            Response::Ok(vec![]),
            Response::Err("no such graph".into()),
            Response::Rejected(vec![]),
            Response::Rejected(vec![
                WireDiagnostic {
                    severity: SEVERITY_ERROR,
                    code: "XA002".into(),
                    message: "stream-dependency cycle: a -> b -> a".into(),
                },
                WireDiagnostic {
                    severity: SEVERITY_WARNING,
                    code: "XA010".into(),
                    message: "stream 'dead' written but never read".into(),
                },
            ]),
        ] {
            assert_eq!(Response::decode(&resp.encode().unwrap()).unwrap(), resp);
        }
    }

    #[test]
    fn oversized_strings_are_errors_not_panics() {
        let big = "x".repeat(u16::MAX as usize + 1);
        let req = Request::Spawn {
            app: big.clone(),
            pipeline_depth: 1,
            max_backlog: 1,
        };
        assert!(req.encode().is_err(), "u16 strings over 64 KiB must fail");
        // The long-string field takes it fine.
        let req = Request::SpawnXspcl {
            source: big,
            pipeline_depth: 1,
            max_backlog: 1,
        };
        let decoded = Request::decode(&req.encode().unwrap()).unwrap();
        assert_eq!(decoded, req);
        // ... up to the frame cap.
        let req = Request::SpawnXspcl {
            source: "x".repeat(MAX_FRAME as usize + 1),
            pipeline_depth: 1,
            max_backlog: 1,
        };
        assert!(req.encode().is_err(), "lstr is still bounded by MAX_FRAME");
    }

    #[test]
    fn framing_round_trips_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xff]).is_err());
        // Truncated Submit.
        assert!(Request::decode(&[0x02, 0, 0]).is_err());
        // Trailing garbage.
        let mut b = Request::Ping.encode().unwrap();
        b.push(0);
        assert!(Request::decode(&b).is_err());
        // Rejected response whose diagnostic count exceeds its payload.
        assert!(Response::decode(&[2, 0xff, 0xff]).is_err());
        // SpawnXspcl whose lstr length points past the frame cap.
        let mut b = vec![0x08];
        b.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        assert!(Request::decode(&b).is_err());
        // Oversized length prefix.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        assert!(read_frame(&mut &wire[..]).is_err());
    }

    /// Feed the decoders random garbage and random mutations of valid
    /// frames: they must return structured errors, never panic. This is
    /// the wire-path audit as a test — any `unwrap` on attacker-supplied
    /// bytes shows up here as a test abort.
    #[test]
    fn decode_survives_fuzzed_frames() {
        let mut rng = StdRng::seed_from_u64(0xF422);
        // Pure garbage, all lengths 0..64, first byte swept over all
        // opcodes/statuses so every decode arm sees hostile input.
        for round in 0..2000u32 {
            let len = rng.gen_range(0usize..64);
            let mut body: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
            if !body.is_empty() {
                body[0] = (round % 12) as u8; // cover 0x00..=0x0b
            }
            let _ = Request::decode(&body);
            let _ = Response::decode(&body);
        }
        // Mutations of valid encodings: truncations and single-byte
        // corruptions of every request and a Rejected response.
        let valid: Vec<Vec<u8>> = [
            Request::Spawn {
                app: "pip1".into(),
                pipeline_depth: 5,
                max_backlog: 32,
            }
            .encode()
            .unwrap(),
            Request::Inject {
                graph: 1,
                queue: "mq".into(),
                kind: "flip".into(),
                payload: -1,
            }
            .encode()
            .unwrap(),
            Request::SpawnXspcl {
                source: "<application name=\"x\"/>".into(),
                pipeline_depth: 1,
                max_backlog: 4,
            }
            .encode()
            .unwrap(),
            Request::AttachSlo {
                graph: 0,
                target_p99_ns: 1_000_000,
                low_watermark_bits: 0.4f64.to_bits(),
                cooldown_ticks: 1,
                min_samples: 2,
                max_backlog: 8,
            }
            .encode()
            .unwrap(),
            Response::Rejected(vec![WireDiagnostic {
                severity: SEVERITY_ERROR,
                code: "XA014".into(),
                message: "stream read but never written".into(),
            }])
            .encode()
            .unwrap(),
        ]
        .into_iter()
        .collect();
        for body in &valid {
            for cut in 0..body.len() {
                let _ = Request::decode(&body[..cut]);
                let _ = Response::decode(&body[..cut]);
            }
            for _ in 0..200 {
                let mut mutated = body.clone();
                let idx = rng.gen_range(0usize..mutated.len());
                mutated[idx] ^= 1 << rng.gen_range(0u32..8);
                let _ = Request::decode(&mutated);
                let _ = Response::decode(&mutated);
            }
        }
    }
}
