//! Length-prefixed binary frame protocol for graph serving.
//!
//! Every message — request or response — is one *frame* on the wire:
//!
//! ```text
//! u32 BE body length | body
//! ```
//!
//! A request body is an opcode byte followed by opcode-specific fields; a
//! response body is a status byte (`0` ok, `1` error) followed by a
//! payload (for errors: the message as raw UTF-8). Integers are
//! big-endian; strings are `u16 BE length + UTF-8 bytes`.
//!
//! | opcode | request fields | ok-response payload |
//! |--------|----------------|---------------------|
//! | `0x01` Spawn    | app `str`, depth `u32`, max_backlog `u64` | graph id `u32` |
//! | `0x02` Submit   | graph `u32`, frames `u64`                 | accepted `u64` |
//! | `0x03` Inject   | graph `u32`, queue `str`, kind `str`, payload `i64` | — |
//! | `0x04` Stats    | graph `u32` (`0xFFFF_FFFF` = all)         | JSON `str` |
//! | `0x05` Drain    | graph `u32`                               | JSON `str` |
//! | `0x06` Ping     | —                                         | — |
//! | `0x07` Shutdown | —                                         | — |
//!
//! `Submit` is where admission control surfaces: the response carries how
//! many of the offered frames the server *accepted* (possibly 0) — the
//! client's backpressure signal. `Inject` is reconfiguration over the
//! wire: the event lands in the named manager queue and takes effect at
//! the graph's next quiescent point, exactly as an in-process event.

use std::io::{self, Read, Write};

/// Largest accepted frame body; guards the server against a garbage
/// length prefix allocating gigabytes.
pub const MAX_FRAME: u32 = 1 << 20;

/// Wildcard graph id in a `Stats` request: report every tenant.
pub const ALL_GRAPHS: u32 = u32::MAX;

/// Request opcodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    Spawn {
        app: String,
        pipeline_depth: u32,
        max_backlog: u64,
    },
    Submit {
        graph: u32,
        frames: u64,
    },
    Inject {
        graph: u32,
        queue: String,
        kind: String,
        payload: i64,
    },
    Stats {
        graph: u32,
    },
    Drain {
        graph: u32,
    },
    Ping,
    Shutdown,
}

/// A decoded response: `Ok` with opcode-specific payload bytes, or an
/// error message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    Ok(Vec<u8>),
    Err(String),
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

// ---- primitive codecs ---------------------------------------------------

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).expect("string over u16::MAX bytes");
    buf.extend_from_slice(&len.to_be_bytes());
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| bad("overflow"))?;
        if end > self.buf.len() {
            return Err(bad("truncated frame"));
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> io::Result<String> {
        let len = u16::from_be_bytes(self.take(2)?.try_into().unwrap()) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("non-UTF-8 string"))
    }

    pub(crate) fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(bad("trailing bytes in frame"))
        }
    }
}

// ---- framing ------------------------------------------------------------

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len()).map_err(|_| bad("frame too large"))?;
    if len > MAX_FRAME {
        return Err(bad("frame too large"));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Read one length-prefixed frame. Returns `None` on clean EOF at a
/// frame boundary (peer hung up between requests).
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(bad(format!("frame length {len} exceeds {MAX_FRAME}")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

// ---- request codec ------------------------------------------------------

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut b = Vec::new();
        match self {
            Request::Spawn {
                app,
                pipeline_depth,
                max_backlog,
            } => {
                b.push(0x01);
                put_str(&mut b, app);
                b.extend_from_slice(&pipeline_depth.to_be_bytes());
                b.extend_from_slice(&max_backlog.to_be_bytes());
            }
            Request::Submit { graph, frames } => {
                b.push(0x02);
                b.extend_from_slice(&graph.to_be_bytes());
                b.extend_from_slice(&frames.to_be_bytes());
            }
            Request::Inject {
                graph,
                queue,
                kind,
                payload,
            } => {
                b.push(0x03);
                b.extend_from_slice(&graph.to_be_bytes());
                put_str(&mut b, queue);
                put_str(&mut b, kind);
                b.extend_from_slice(&payload.to_be_bytes());
            }
            Request::Stats { graph } => {
                b.push(0x04);
                b.extend_from_slice(&graph.to_be_bytes());
            }
            Request::Drain { graph } => {
                b.push(0x05);
                b.extend_from_slice(&graph.to_be_bytes());
            }
            Request::Ping => b.push(0x06),
            Request::Shutdown => b.push(0x07),
        }
        b
    }

    pub fn decode(body: &[u8]) -> io::Result<Request> {
        let mut c = Cursor::new(body);
        let req = match c.u8()? {
            0x01 => Request::Spawn {
                app: c.str()?,
                pipeline_depth: c.u32()?,
                max_backlog: c.u64()?,
            },
            0x02 => Request::Submit {
                graph: c.u32()?,
                frames: c.u64()?,
            },
            0x03 => Request::Inject {
                graph: c.u32()?,
                queue: c.str()?,
                kind: c.str()?,
                payload: c.i64()?,
            },
            0x04 => Request::Stats { graph: c.u32()? },
            0x05 => Request::Drain { graph: c.u32()? },
            0x06 => Request::Ping,
            0x07 => Request::Shutdown,
            op => return Err(bad(format!("unknown opcode 0x{op:02x}"))),
        };
        c.done()?;
        Ok(req)
    }
}

// ---- response codec -----------------------------------------------------

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Ok(payload) => {
                let mut b = Vec::with_capacity(1 + payload.len());
                b.push(0);
                b.extend_from_slice(payload);
                b
            }
            Response::Err(msg) => {
                let mut b = Vec::with_capacity(1 + msg.len());
                b.push(1);
                b.extend_from_slice(msg.as_bytes());
                b
            }
        }
    }

    pub fn decode(body: &[u8]) -> io::Result<Response> {
        let (&status, payload) = body.split_first().ok_or_else(|| bad("empty response"))?;
        match status {
            0 => Ok(Response::Ok(payload.to_vec())),
            1 => Ok(Response::Err(String::from_utf8_lossy(payload).into_owned())),
            s => Err(bad(format!("unknown response status {s}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Spawn {
                app: "pip1".into(),
                pipeline_depth: 5,
                max_backlog: 32,
            },
            Request::Submit {
                graph: 3,
                frames: 17,
            },
            Request::Inject {
                graph: 0,
                queue: "mq".into(),
                kind: "flip".into(),
                payload: -7,
            },
            Request::Stats { graph: ALL_GRAPHS },
            Request::Drain { graph: 9 },
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let decoded = Request::decode(&req.encode()).unwrap();
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            Response::Ok(vec![1, 2, 3]),
            Response::Ok(vec![]),
            Response::Err("no such graph".into()),
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn framing_round_trips_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn decode_rejects_malformed_frames() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xff]).is_err());
        // Truncated Submit.
        assert!(Request::decode(&[0x02, 0, 0]).is_err());
        // Trailing garbage.
        let mut b = Request::Ping.encode();
        b.push(0);
        assert!(Request::decode(&b).is_err());
        // Oversized length prefix.
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        assert!(read_frame(&mut &wire[..]).is_err());
    }
}
