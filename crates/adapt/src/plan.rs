//! Candidate-configuration planning backed by `predict::model`.
//!
//! The controller never searches blindly: a [`Planner`] rates every point
//! of a small (quality × slices × depth) lattice with the analytical SPC
//! model and marks the ones whose predicted steady-state period fits the
//! SLO's frame budget. Costs come from a cycle-deterministic simulation
//! profile of the app's *static counterparts* (index 0 = degraded
//! quality, index 1 = full, per [`App::static_counterparts`]), measured
//! once at the scale's default slice count and scaled analytically to
//! other slice counts — the "measure once, explore parallelizations
//! analytically" workflow of the paper's front-end.

use crate::policy::{CandidateConfig, Quality};
use apps::experiment::{self, App, AppConfig, Scale};
use parking_lot::Mutex;
use predict::{predict, CostDb, PredictConfig};
use std::collections::HashMap;

/// Frames used for the calibration simulation (enough for steady state,
/// small enough to stay fast).
const CAL_FRAMES: u64 = 4;

/// The candidate axes the planner explores around the app's defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lattice {
    /// Candidate data-parallel slice counts, ascending.
    pub slices: Vec<usize>,
    /// Candidate pipeline depths, ascending.
    pub depths: Vec<usize>,
}

impl Lattice {
    /// Half / default / double the app's slice count, pipeline depths
    /// 1–3.
    pub fn around_default(app: App, scale: Scale) -> Self {
        let s = experiment::default_slices(app, scale);
        let mut slices = vec![(s / 2).max(1), s, s * 2];
        slices.dedup();
        Self {
            slices,
            depths: vec![1, 2, 3],
        }
    }
}

/// One rated lattice point.
#[derive(Debug, Clone, PartialEq)]
pub struct RatedConfig {
    pub config: CandidateConfig,
    /// Predicted steady-state period (cycles per frame).
    pub period: f64,
    /// `period <= deadline` for the planner's frame budget.
    pub feasible: bool,
}

/// A rated candidate lattice plus the frame budget that defines
/// feasibility.
#[derive(Debug, Clone)]
pub struct Planner {
    deadline: f64,
    rated: Vec<RatedConfig>,
}

impl Planner {
    /// Build a planner from pre-rated candidates; `feasible` flags are
    /// recomputed against `deadline_cycles`.
    pub fn new(mut rated: Vec<RatedConfig>, deadline_cycles: f64) -> Self {
        for r in &mut rated {
            r.feasible = r.period <= deadline_cycles;
        }
        Self {
            deadline: deadline_cycles,
            rated,
        }
    }

    /// Rate the lattice for `app` on `cores` workers and wrap it in a
    /// planner with the given frame budget.
    pub fn for_app(
        app: App,
        scale: Scale,
        lattice: &Lattice,
        cores: usize,
        deadline_cycles: f64,
    ) -> Self {
        Self::new(rate_app(app, scale, lattice, cores), deadline_cycles)
    }

    pub fn deadline(&self) -> f64 {
        self.deadline
    }

    pub fn rated(&self) -> &[RatedConfig] {
        &self.rated
    }

    pub fn lookup(&self, c: &CandidateConfig) -> Option<&RatedConfig> {
        self.rated.iter().find(|r| r.config == *c)
    }

    /// Is `c` in the lattice and predicted to meet the frame budget?
    pub fn feasible(&self, c: &CandidateConfig) -> bool {
        self.lookup(c).is_some_and(|r| r.feasible)
    }

    /// The lowest-period candidate at the given quality (regardless of
    /// feasibility). Ties break towards the earlier lattice point, so
    /// the answer is deterministic.
    pub fn best_at(&self, q: Quality) -> Option<&RatedConfig> {
        self.rated
            .iter()
            .filter(|r| r.config.quality == q)
            .min_by(|a, b| a.period.total_cmp(&b.period))
    }

    /// The best *static* configuration: full quality, lowest predicted
    /// period — the baseline the bursty-replay scenario compares the
    /// adaptive controller against.
    pub fn best_static_full(&self) -> Option<&RatedConfig> {
        self.best_at(Quality::Full)
    }
}

/// Per-node cost digest of one calibration run: exact labels for
/// unsliced nodes, per-copy means (at the reference slice count) for
/// sliced groups.
#[derive(Debug, Clone, Default)]
struct Profile {
    exact: Vec<(String, f64)>,
    /// base label → per-invocation mean at `s_ref` copies.
    sliced: Vec<(String, f64)>,
    fallback: f64,
}

/// Strip the data-parallel copy suffix (`#i`, `.bj#i`) from a label,
/// mirroring `predict::CostDb`'s lookup fallback.
fn base_of(label: &str) -> &str {
    match label.find('#') {
        Some(pos) => {
            let head = &label[..pos];
            match head.rfind(".b") {
                Some(b) if head[b + 2..].chars().all(|c| c.is_ascii_digit()) => &head[..b],
                _ => head,
            }
        }
        None => label,
    }
}

fn profile_of(app: App, scale: Scale) -> Profile {
    // The calibration sim builds on the process-wide shared asset cache
    // (`experiment::build`), whose captures concurrent builders would
    // clobber; serialize calibrations and memoize the digest.
    static CACHE: Mutex<Option<HashMap<(App, Scale), Profile>>> = Mutex::new(None);
    let mut guard = CACHE.lock();
    let map = guard.get_or_insert_with(HashMap::new);
    if let Some(p) = map.get(&(app, scale)) {
        return p.clone();
    }
    let report = experiment::run_sim(
        AppConfig {
            app,
            scale,
            frames: CAL_FRAMES,
        },
        1,
    );
    let mut grouped: HashMap<String, (u64, u64)> = HashMap::new();
    let mut profile = Profile::default();
    let (mut total_cycles, mut total_jobs) = (0u64, 0u64);
    for (label, node) in &report.per_node {
        total_cycles += node.cycles;
        total_jobs += node.jobs;
        let base = base_of(label);
        if base == label {
            profile.exact.push((label.clone(), node.mean()));
        } else {
            let e = grouped.entry(base.to_string()).or_insert((0, 0));
            e.0 += node.cycles;
            e.1 += node.jobs;
        }
    }
    for (base, (cycles, jobs)) in grouped {
        let mean = if jobs == 0 {
            0.0
        } else {
            cycles as f64 / jobs as f64
        };
        profile.sliced.push((base, mean));
    }
    // Deterministic iteration order for anything that renders the db.
    profile.exact.sort_by(|a, b| a.0.cmp(&b.0));
    profile.sliced.sort_by(|a, b| a.0.cmp(&b.0));
    profile.fallback = if total_jobs == 0 {
        0.0
    } else {
        total_cycles as f64 / total_jobs as f64
    };
    map.insert((app, scale), profile.clone());
    profile
}

/// Cost database for a candidate slice count: unsliced nodes keep their
/// measured mean; a sliced copy's work shrinks linearly as copies grow
/// (`mean_ref * s_ref / s` — the group's total work is conserved).
fn scaled_db(profile: &Profile, s_ref: usize, s: usize) -> CostDb {
    let mut db = CostDb::new().with_default(profile.fallback);
    for (label, mean) in &profile.exact {
        db.set(label.clone(), *mean);
    }
    let scale = s_ref as f64 / s.max(1) as f64;
    for (base, mean) in &profile.sliced {
        db.set(base.clone(), mean * scale);
    }
    db
}

/// Rate the full lattice for `app` (reconfigurable: both quality modes
/// via its static counterparts; static: full quality only). Ratings are
/// memoized per (app, scale, lattice, cores): the underlying calibration
/// and candidate spec builds are deterministic, so the cache is
/// observationally pure.
pub fn rate_app(app: App, scale: Scale, lattice: &Lattice, cores: usize) -> Vec<RatedConfig> {
    type Key = (App, Scale, Vec<usize>, Vec<usize>, usize);
    static CACHE: Mutex<Option<HashMap<Key, Vec<RatedConfig>>>> = Mutex::new(None);
    let key = (
        app,
        scale,
        lattice.slices.clone(),
        lattice.depths.clone(),
        cores,
    );
    if let Some(hit) = CACHE
        .lock()
        .get_or_insert_with(HashMap::new)
        .get(&key)
        .cloned()
    {
        return hit;
    }
    let rated = rate_app_uncached(app, scale, lattice, cores);
    CACHE
        .lock()
        .get_or_insert_with(HashMap::new)
        .insert(key, rated.clone());
    rated
}

fn rate_app_uncached(app: App, scale: Scale, lattice: &Lattice, cores: usize) -> Vec<RatedConfig> {
    let counterparts = app.static_counterparts();
    let modes: Vec<(Quality, App)> = if counterparts.len() == 2 {
        vec![
            (Quality::Degraded, counterparts[0]),
            (Quality::Full, counterparts[1]),
        ]
    } else {
        vec![(Quality::Full, app)]
    };
    let mut rated = Vec::new();
    for (quality, proxy) in modes {
        let profile = profile_of(proxy, scale);
        let s_ref = experiment::default_slices(proxy, scale);
        for &s in &lattice.slices {
            let built = experiment::build_isolated_sliced(
                AppConfig {
                    app: proxy,
                    scale,
                    frames: CAL_FRAMES,
                },
                Some(s),
            );
            let db = scaled_db(&profile, s_ref, s);
            for &d in &lattice.depths {
                let mut cfg = PredictConfig::new(cores, CAL_FRAMES);
                cfg.pipeline_depth = d;
                let p = predict(&built.spec, &db, &cfg);
                rated.push(RatedConfig {
                    config: CandidateConfig {
                        quality,
                        slices: s,
                        pipeline_depth: d,
                    },
                    period: p.period,
                    feasible: false,
                });
            }
        }
    }
    rated
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_stripping_matches_costdb_semantics() {
        assert_eq!(base_of("main/w#3"), "main/w");
        assert_eq!(base_of("main/h.b0#2"), "main/h");
        assert_eq!(base_of("main/plain"), "main/plain");
        assert_eq!(base_of("m.entry"), "m.entry");
        assert_eq!(base_of("main/x.blend#1"), "main/x.blend");
    }

    #[test]
    fn planner_feasibility_tracks_deadline() {
        let mk = |q, s, d, period| RatedConfig {
            config: CandidateConfig {
                quality: q,
                slices: s,
                pipeline_depth: d,
            },
            period,
            feasible: false,
        };
        let planner = Planner::new(
            vec![
                mk(Quality::Full, 4, 1, 200.0),
                mk(Quality::Full, 4, 2, 120.0),
                mk(Quality::Degraded, 4, 2, 60.0),
            ],
            150.0,
        );
        assert!(!planner.feasible(&CandidateConfig {
            quality: Quality::Full,
            slices: 4,
            pipeline_depth: 1
        }));
        assert!(planner.feasible(&CandidateConfig {
            quality: Quality::Full,
            slices: 4,
            pipeline_depth: 2
        }));
        assert_eq!(planner.best_static_full().unwrap().period, 120.0);
        assert_eq!(
            planner.best_at(Quality::Degraded).unwrap().config.quality,
            Quality::Degraded
        );
    }

    #[test]
    fn rates_every_reconfig_app_lattice() {
        for app in App::RECONFIG {
            let lattice = Lattice::around_default(app, Scale::Small);
            let rated = rate_app(app, Scale::Small, &lattice, 4);
            assert_eq!(
                rated.len(),
                2 * lattice.slices.len() * lattice.depths.len(),
                "{}",
                app.label()
            );
            assert!(rated.iter().all(|r| r.period > 0.0), "{}", app.label());
            // Degraded quality must be predicted cheaper than full at the
            // same lattice point — that is what makes relief moves work.
            let planner = Planner::new(rated, f64::MAX);
            let full = planner.best_at(Quality::Full).unwrap().period;
            let degraded = planner.best_at(Quality::Degraded).unwrap().period;
            assert!(
                degraded < full,
                "{}: degraded {degraded} !< full {full}",
                app.label()
            );
        }
    }

    #[test]
    fn quality_relief_never_inverts_pointwise() {
        // Regression for the kernel/fusion cost recalibration: at *every*
        // lattice point (not just the per-quality best), dropping quality
        // must still be predicted cheaper. The controller's relief move
        // assumes this pointwise — a silent inversion would make a
        // degrade step look like a slowdown and wedge the feedback loop,
        // and the bench's adaptive_misses ≤ best_static_misses gate
        // depends on relief actually relieving.
        for app in App::RECONFIG {
            let lattice = Lattice::around_default(app, Scale::Small);
            let rated = rate_app(app, Scale::Small, &lattice, 4);
            let planner = Planner::new(rated, f64::MAX);
            for &s in &lattice.slices {
                for &d in &lattice.depths {
                    let at = |quality| {
                        planner
                            .lookup(&CandidateConfig {
                                quality,
                                slices: s,
                                pipeline_depth: d,
                            })
                            .unwrap_or_else(|| panic!("{} missing s={s} d={d}", app.label()))
                            .period
                    };
                    let (deg, full) = (at(Quality::Degraded), at(Quality::Full));
                    assert!(
                        deg < full,
                        "{} s={s} d={d}: degraded {deg} !< full {full}",
                        app.label()
                    );
                }
            }
        }
    }

    #[test]
    fn deeper_pipelines_never_predict_slower() {
        let lattice = Lattice {
            slices: vec![4],
            depths: vec![1, 2, 3],
        };
        let rated = rate_app(App::Pip12, Scale::Small, &lattice, 4);
        let planner = Planner::new(rated, f64::MAX);
        let period_at = |d| {
            planner
                .lookup(&CandidateConfig {
                    quality: Quality::Full,
                    slices: 4,
                    pipeline_depth: d,
                })
                .unwrap()
                .period
        };
        assert!(period_at(2) <= period_at(1));
        assert!(period_at(3) <= period_at(2));
    }
}
