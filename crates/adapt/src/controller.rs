//! The decision function: a pure, deterministic fold over observation
//! windows.
//!
//! Relief moves (overload) prefer the cheapest actuation first: a
//! quality toggle needs no drain, a depth step or slice resize costs a
//! drain + respawn. Recovery moves restore full quality first, then walk
//! depth and slices back towards the initial configuration. Every
//! proposal is pre-filtered by the [`Planner`]: the controller only
//! moves to configurations `predict::model` marks deadline-feasible, and
//! after any actuation it holds for the policy's cooldown.

use crate::plan::Planner;
use crate::policy::{Action, CandidateConfig, Decision, Quality, SloPolicy};
use insight::live::GraphWindow;

/// One distilled observation window (from `insight::live` live windows
/// or the virtual scenario simulator — the controller cannot tell).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowObs {
    /// Windowed p99 admission-to-retire latency (ns live, cycles in the
    /// simulator).
    pub p99_ns: u64,
    /// Frames completed in the window.
    pub completed: u64,
    /// Frames admitted but not yet retired (queued + in flight).
    pub backlog: u64,
}

impl WindowObs {
    /// Distill a live telemetry window.
    pub fn from_window(w: &GraphWindow) -> Self {
        Self {
            p99_ns: w.p99_ns,
            completed: w.completed,
            backlog: w.backlog,
        }
    }
}

/// Running totals per action kind, for telemetry exposition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecisionCounters {
    pub hold: u64,
    pub toggle: u64,
    pub resize: u64,
    pub step_depth: u64,
}

impl DecisionCounters {
    pub fn actuations(&self) -> u64 {
        self.toggle + self.resize + self.step_depth
    }
}

/// Closed-loop SLO controller for one graph.
#[derive(Debug, Clone)]
pub struct Controller {
    policy: SloPolicy,
    planner: Planner,
    initial: CandidateConfig,
    current: CandidateConfig,
    cooldown: u32,
    tick: u64,
    counters: DecisionCounters,
}

impl Controller {
    pub fn new(policy: SloPolicy, planner: Planner, initial: CandidateConfig) -> Self {
        Self {
            policy,
            planner,
            initial,
            current: initial,
            cooldown: 0,
            tick: 0,
            counters: DecisionCounters::default(),
        }
    }

    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The configuration currently in force (tracks decisions, not the
    /// actuation lag).
    pub fn current(&self) -> CandidateConfig {
        self.current
    }

    pub fn counters(&self) -> DecisionCounters {
        self.counters
    }

    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Feed one observation window; returns the decision for it. Pure in
    /// the controller state and `obs`: the same state and window always
    /// produce the same decision.
    pub fn observe(&mut self, obs: &WindowObs) -> Decision {
        self.tick += 1;
        let d = self.decide(obs);
        match d.action {
            Action::Hold => self.counters.hold += 1,
            Action::Toggle { to } => {
                self.counters.toggle += 1;
                self.current.quality = to;
                self.cooldown = self.policy.cooldown_ticks;
            }
            Action::Resize { slices } => {
                self.counters.resize += 1;
                self.current.slices = slices;
                self.cooldown = self.policy.cooldown_ticks;
            }
            Action::StepDepth { depth } => {
                self.counters.step_depth += 1;
                self.current.pipeline_depth = depth;
                self.cooldown = self.policy.cooldown_ticks;
            }
        }
        Decision {
            config_after: self.current,
            ..d
        }
    }

    fn decide(&mut self, obs: &WindowObs) -> Decision {
        let hold = |reason, current, tick| Decision {
            tick,
            action: Action::Hold,
            reason,
            config_after: current,
        };
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return hold("cooldown", self.current, self.tick);
        }
        let target = self.policy.target_p99_ns;
        let overloaded = obs.p99_ns > target || obs.backlog > self.policy.max_backlog;
        if overloaded {
            if let Some((action, reason)) = self.relief_move() {
                return Decision {
                    tick: self.tick,
                    action,
                    reason,
                    config_after: self.current,
                };
            }
            return hold("no-feasible-relief", self.current, self.tick);
        }
        if obs.completed < self.policy.min_samples {
            return hold("window-underfilled", self.current, self.tick);
        }
        // Backlog ≤ 1: at moderate utilization the in-service frame is
        // almost always outstanding; demanding an exactly-empty queue
        // would starve recovery.
        let low = (self.policy.low_watermark * target as f64) as u64;
        let underloaded = obs.p99_ns < low && obs.backlog <= 1;
        if underloaded {
            if let Some((action, reason)) = self.recovery_move() {
                return Decision {
                    tick: self.tick,
                    action,
                    reason,
                    config_after: self.current,
                };
            }
        }
        hold("steady", self.current, self.tick)
    }

    /// Cheapest feasible move that strictly lowers the predicted period.
    fn relief_move(&self) -> Option<(Action, &'static str)> {
        let here = self.planner.lookup(&self.current).map(|r| r.period);
        let improves = |c: &CandidateConfig| match (here, self.planner.lookup(c)) {
            (Some(h), Some(r)) => r.feasible && r.period < h,
            (None, Some(r)) => r.feasible,
            _ => false,
        };
        if self.current.quality == Quality::Full {
            let c = CandidateConfig {
                quality: Quality::Degraded,
                ..self.current
            };
            if improves(&c) {
                return Some((
                    Action::Toggle {
                        to: Quality::Degraded,
                    },
                    "slo-over:degrade",
                ));
            }
        }
        let deeper = CandidateConfig {
            pipeline_depth: self.current.pipeline_depth + 1,
            ..self.current
        };
        if improves(&deeper) {
            return Some((
                Action::StepDepth {
                    depth: deeper.pipeline_depth,
                },
                "slo-over:deepen",
            ));
        }
        // Widest feasible improving slice count, preferring more copies.
        let mut best: Option<&crate::plan::RatedConfig> = None;
        for r in self.planner.rated() {
            let c = &r.config;
            let better = match best {
                None => true,
                Some(b) => r.period < b.period,
            };
            if c.quality == self.current.quality
                && c.pipeline_depth == self.current.pipeline_depth
                && c.slices != self.current.slices
                && improves(c)
                && better
            {
                best = Some(r);
            }
        }
        best.map(|r| {
            (
                Action::Resize {
                    slices: r.config.slices,
                },
                "slo-over:resize",
            )
        })
    }

    /// Restore quality first, then walk depth/slices back towards the
    /// initial configuration — one axis per window, all feasible.
    fn recovery_move(&self) -> Option<(Action, &'static str)> {
        if self.current.quality == Quality::Degraded {
            let c = CandidateConfig {
                quality: Quality::Full,
                ..self.current
            };
            if self.planner.feasible(&c) {
                return Some((Action::Toggle { to: Quality::Full }, "slo-under:recover"));
            }
            return None;
        }
        if self.current.pipeline_depth != self.initial.pipeline_depth {
            let c = CandidateConfig {
                pipeline_depth: self.initial.pipeline_depth,
                ..self.current
            };
            if self.planner.feasible(&c) {
                return Some((
                    Action::StepDepth {
                        depth: self.initial.pipeline_depth,
                    },
                    "slo-under:relax-depth",
                ));
            }
        }
        if self.current.slices != self.initial.slices {
            let c = CandidateConfig {
                slices: self.initial.slices,
                ..self.current
            };
            if self.planner.feasible(&c) {
                return Some((
                    Action::Resize {
                        slices: self.initial.slices,
                    },
                    "slo-under:relax-slices",
                ));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::RatedConfig;

    fn cfg(q: Quality, s: usize, d: usize) -> CandidateConfig {
        CandidateConfig {
            quality: q,
            slices: s,
            pipeline_depth: d,
        }
    }

    fn planner() -> Planner {
        // Full quality: 120 at depth 2, 200 at depth 1; degraded: 60/100.
        let mk = |c, period| RatedConfig {
            config: c,
            period,
            feasible: false,
        };
        Planner::new(
            vec![
                mk(cfg(Quality::Full, 4, 1), 200.0),
                mk(cfg(Quality::Full, 4, 2), 120.0),
                mk(cfg(Quality::Full, 8, 2), 110.0),
                mk(cfg(Quality::Degraded, 4, 1), 100.0),
                mk(cfg(Quality::Degraded, 4, 2), 60.0),
            ],
            150.0,
        )
    }

    fn ctl() -> Controller {
        let mut policy = SloPolicy::new(1_000);
        policy.cooldown_ticks = 2;
        policy.min_samples = 1;
        Controller::new(policy, planner(), cfg(Quality::Full, 4, 2))
    }

    fn over() -> WindowObs {
        WindowObs {
            p99_ns: 5_000,
            completed: 10,
            backlog: 4,
        }
    }

    fn under() -> WindowObs {
        WindowObs {
            p99_ns: 100,
            completed: 10,
            backlog: 0,
        }
    }

    #[test]
    fn overload_degrades_then_cools_down() {
        let mut c = ctl();
        let d = c.observe(&over());
        assert_eq!(
            d.action,
            Action::Toggle {
                to: Quality::Degraded
            }
        );
        assert_eq!(c.current().quality, Quality::Degraded);
        // cooldown: two holds even though still overloaded
        assert_eq!(c.observe(&over()).action, Action::Hold);
        assert_eq!(c.observe(&over()).action, Action::Hold);
        // already degraded, no deeper/wider feasible improvement from
        // degraded/4/2 (60 is the floor) → hold
        assert_eq!(c.observe(&over()).reason, "no-feasible-relief");
    }

    #[test]
    fn recovery_restores_full_quality() {
        let mut c = ctl();
        c.observe(&over());
        c.observe(&under()); // cooldown
        c.observe(&under()); // cooldown
        let d = c.observe(&under());
        assert_eq!(d.action, Action::Toggle { to: Quality::Full });
        assert_eq!(c.current().quality, Quality::Full);
    }

    #[test]
    fn depth_step_when_already_degraded_at_depth_one() {
        let mut policy = SloPolicy::new(1_000);
        policy.cooldown_ticks = 0;
        policy.min_samples = 1;
        let mut c = Controller::new(policy, planner(), cfg(Quality::Degraded, 4, 1));
        let d = c.observe(&over());
        assert_eq!(d.action, Action::StepDepth { depth: 2 });
        assert_eq!(c.current().pipeline_depth, 2);
    }

    #[test]
    fn infeasible_targets_are_never_proposed() {
        // Deadline below every candidate: nothing is feasible, the
        // controller can only hold.
        let planner = Planner::new(planner().rated().to_vec(), 10.0);
        let mut policy = SloPolicy::new(1_000);
        policy.cooldown_ticks = 0;
        policy.min_samples = 1;
        let mut c = Controller::new(policy, planner, cfg(Quality::Full, 4, 2));
        for _ in 0..8 {
            assert_eq!(c.observe(&over()).action, Action::Hold);
        }
    }

    #[test]
    fn steady_windows_hold() {
        let mut c = ctl();
        let obs = WindowObs {
            p99_ns: 800,
            completed: 10,
            backlog: 0,
        };
        assert_eq!(c.observe(&obs).reason, "steady");
        assert_eq!(c.counters().actuations(), 0);
    }

    #[test]
    fn underfilled_windows_hold() {
        let mut c = ctl();
        let obs = WindowObs {
            p99_ns: 0,
            completed: 0,
            backlog: 0,
        };
        assert_eq!(c.observe(&obs).reason, "window-underfilled");
    }
}
