//! SLO policy and the configuration/action vocabulary of the controller.

/// Quality mode of a reconfigurable app: `Full` is the expensive variant
/// (both pictures / 5×5 kernel), `Degraded` the cheap one. Matches the
/// order of [`apps::App::static_counterparts`]: index 0 is the degraded
/// counterpart, index 1 the full one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quality {
    Degraded,
    Full,
}

impl Quality {
    pub fn label(&self) -> &'static str {
        match self {
            Quality::Degraded => "degraded",
            Quality::Full => "full",
        }
    }
}

/// One point of the candidate lattice: a quality mode, a data-parallel
/// slice count and a pipeline depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CandidateConfig {
    pub quality: Quality,
    pub slices: usize,
    pub pipeline_depth: usize,
}

impl CandidateConfig {
    pub fn label(&self) -> String {
        format!(
            "{}/s{}/d{}",
            self.quality.label(),
            self.slices,
            self.pipeline_depth
        )
    }
}

/// The latency service-level objective a controller holds for one graph.
///
/// Thresholds form a hysteresis band: relief moves trigger when the
/// windowed p99 exceeds `target_p99_ns` (or the backlog exceeds
/// `max_backlog`), recovery moves only when p99 falls below
/// `low_watermark * target_p99_ns` *and* the backlog is empty. After any
/// actuation the controller holds for `cooldown_ticks` observation
/// windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SloPolicy {
    /// Latency objective: windowed p99 admission-to-retire latency. In
    /// the live plane this is wall nanoseconds; in the virtual scenario
    /// simulator it is predicted cycles. The controller is agnostic.
    pub target_p99_ns: u64,
    /// Recovery watermark as a fraction of the target, in (0, 1].
    pub low_watermark: f64,
    /// Observation windows to hold after an actuation.
    pub cooldown_ticks: u32,
    /// Minimum completed frames in a window before acting on its p99.
    pub min_samples: u64,
    /// Backlog (queued + in-flight frames) that declares overload even
    /// when the latency window is under-filled.
    pub max_backlog: u64,
}

impl SloPolicy {
    pub fn new(target_p99_ns: u64) -> Self {
        Self {
            target_p99_ns,
            low_watermark: 0.5,
            cooldown_ticks: 2,
            min_samples: 4,
            max_backlog: 16,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.target_p99_ns == 0 {
            return Err("target_p99_ns must be positive".into());
        }
        if !(self.low_watermark > 0.0 && self.low_watermark <= 1.0) {
            return Err(format!(
                "low_watermark {} outside (0, 1]",
                self.low_watermark
            ));
        }
        Ok(())
    }
}

/// What the controller decided to do with one observation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// No actuation this window.
    Hold,
    /// Switch the quality option (live: a manager-queue event at
    /// quiescence; no drain required).
    Toggle { to: Quality },
    /// Rebuild the graph with a different slice count (drain + respawn).
    Resize { slices: usize },
    /// Rebuild the graph with a different pipeline depth (drain +
    /// respawn).
    StepDepth { depth: usize },
}

impl Action {
    pub fn label(&self) -> &'static str {
        match self {
            Action::Hold => "hold",
            Action::Toggle { .. } => "toggle",
            Action::Resize { .. } => "resize",
            Action::StepDepth { .. } => "step_depth",
        }
    }
}

/// One decision: the action plus why it was taken and the configuration
/// in force afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    pub tick: u64,
    pub action: Action,
    pub reason: &'static str,
    pub config_after: CandidateConfig,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_validates() {
        assert!(SloPolicy::new(1_000).validate().is_ok());
        assert!(SloPolicy::new(0).validate().is_err());
        let mut p = SloPolicy::new(1_000);
        p.low_watermark = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn labels_are_stable() {
        let c = CandidateConfig {
            quality: Quality::Full,
            slices: 4,
            pipeline_depth: 3,
        };
        assert_eq!(c.label(), "full/s4/d3");
        assert_eq!(
            Action::Toggle {
                to: Quality::Degraded
            }
            .label(),
            "toggle"
        );
    }
}
