//! Deterministic bursty-replay scenario: the controller's proof harness.
//!
//! The simulator replays a seeded Poisson arrival process with periodic
//! bursts against a single-server queue whose service period is the
//! planner's *predicted* period for the configuration in force — all in
//! virtual cycles, with no wall clock and no threads. The controller
//! ticks on a fixed virtual cadence, sees windowed p99/completed/backlog
//! exactly as it would from `insight::live`, and its decisions (with
//! actuation lag: a quality toggle waits for a pipeline flush, a
//! resize/depth step additionally pays a drain + respawn pause) steer
//! the service period. Deadline misses are counted per frame and
//! compared against every full-quality *static* configuration replayed
//! over the byte-identical arrival schedule.
//!
//! Everything — arrivals, windows, decisions, misses, the rendered
//! replay log — is a pure function of [`ScenarioSpec`]; two runs of the
//! same spec produce byte-identical [`ScenarioReport::render_replay`]
//! output. `serve::load` re-executes the decision schedule on the real
//! runtime to prove output admissibility is preserved.

use crate::controller::{Controller, DecisionCounters, WindowObs};
use crate::plan::{rate_app, Lattice, Planner};
use crate::policy::{Action, CandidateConfig, Decision, Quality, SloPolicy};
use apps::experiment::{App, Scale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// A seeded bursty-replay scenario. All time-like knobs are expressed in
/// *frames at the base rate*, so a spec is meaningful for every app
/// regardless of its absolute predicted period.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    pub app: App,
    pub scale: Scale,
    pub seed: u64,
    /// Arrivals to generate.
    pub frames: u64,
    /// Worker cores the planner predicts for.
    pub cores: usize,
    /// Base offered load as a fraction of the best full-quality
    /// configuration's capacity.
    pub utilization: f64,
    /// Rate multiplier inside a burst.
    pub burst_factor: f64,
    /// Burst cycle length / burst length, in base-rate frames.
    pub burst_period_frames: f64,
    pub burst_len_frames: f64,
    /// Latency SLO as a multiple of the best full-quality period.
    pub deadline_factor: f64,
    /// Controller tick cadence, in base-rate frames.
    pub tick_frames: f64,
    pub cooldown_ticks: u32,
    pub low_watermark: f64,
    pub min_samples: u64,
    pub lattice: Lattice,
    /// Start from the best full-quality config at this depth instead of
    /// the overall best (`None`). A handicapped start exercises the
    /// depth-step / resize relief moves and their drain + respawn
    /// recovery path.
    pub initial_depth: Option<usize>,
}

impl ScenarioSpec {
    /// The bounded scenario used by tests, CI and the bench gate: three
    /// overload→recovery burst cycles at small scale.
    pub fn small(app: App, seed: u64) -> Self {
        Self {
            app,
            scale: Scale::Small,
            seed,
            frames: 480,
            cores: 4,
            utilization: 0.7,
            burst_factor: 2.5,
            burst_period_frames: 160.0,
            burst_len_frames: 24.0,
            deadline_factor: 4.0,
            tick_frames: 8.0,
            cooldown_ticks: 2,
            low_watermark: 0.4,
            min_samples: 2,
            lattice: Lattice::around_default(app, Scale::Small),
            initial_depth: None,
        }
    }

    /// [`ScenarioSpec::small`] starting from a handicapped pipeline
    /// depth, so relief must step the depth (drain + respawn) as well as
    /// toggle quality.
    pub fn stepped(app: App, seed: u64) -> Self {
        Self {
            initial_depth: Some(1),
            ..Self::small(app, seed)
        }
    }
}

/// One static full-quality configuration replayed over the scenario's
/// arrival schedule.
#[derive(Debug, Clone)]
pub struct StaticRun {
    pub config: CandidateConfig,
    pub period: f64,
    pub misses: u64,
    pub miss_rate: f64,
    pub max_latency: u64,
}

/// The adaptive (controller-driven) replay.
#[derive(Debug, Clone)]
pub struct AdaptiveRun {
    pub misses: u64,
    pub miss_rate: f64,
    pub max_latency: u64,
    /// Frames served while quality was degraded.
    pub degraded_frames: u64,
    pub counters: DecisionCounters,
}

/// One non-hold controller decision, positioned for replay: the real
/// harness actuates it after `after_frames` retirements.
#[derive(Debug, Clone)]
pub struct DecisionRecord {
    pub tick: u64,
    /// Virtual time of the decision (cycles).
    pub time: u64,
    /// Frames completed when the decision fired.
    pub after_frames: u64,
    pub action: Action,
    pub reason: &'static str,
    pub config_after: CandidateConfig,
}

/// Everything a replay file needs.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    pub spec: ScenarioSpec,
    /// The SLO in cycles.
    pub deadline: u64,
    /// Best full-quality predicted period (capacity reference).
    pub period_full: f64,
    pub initial: CandidateConfig,
    pub arrivals: u64,
    pub adaptive: AdaptiveRun,
    /// Every full-quality lattice point, in lattice order.
    pub statics: Vec<StaticRun>,
    pub decisions: Vec<DecisionRecord>,
}

impl ScenarioReport {
    /// The best static full-quality configuration *measured on this
    /// scenario* (fewest misses; ties to the earlier lattice point).
    pub fn best_static(&self) -> &StaticRun {
        self.statics
            .iter()
            .min_by_key(|s| s.misses)
            .expect("non-empty static sweep")
    }

    /// Deterministic replay log: byte-identical across runs of the same
    /// spec.
    pub fn render_replay(&self) -> String {
        let mut out = String::new();
        let s = &self.spec;
        let _ = writeln!(
            out,
            "scenario app={} scale={:?} seed={} frames={} cores={} util={:.3} burst={:.2}x/{:.0}f/{:.0}f deadline={} tick_frames={:.0} cooldown={} low={:.2}",
            s.app.id(),
            s.scale,
            s.seed,
            s.frames,
            s.cores,
            s.utilization,
            s.burst_factor,
            s.burst_period_frames,
            s.burst_len_frames,
            self.deadline,
            s.tick_frames,
            s.cooldown_ticks,
            s.low_watermark,
        );
        let _ = writeln!(
            out,
            "plan period_full={:.1} initial={}",
            self.period_full,
            self.initial.label()
        );
        for d in &self.decisions {
            let _ = writeln!(
                out,
                "decision tick={} t={} after={} action={} reason={} config={}",
                d.tick,
                d.time,
                d.after_frames,
                action_detail(&d.action),
                d.reason,
                d.config_after.label()
            );
        }
        for st in &self.statics {
            let _ = writeln!(
                out,
                "static {} period={:.1} misses={} rate={:.4} max_latency={}",
                st.config.label(),
                st.period,
                st.misses,
                st.miss_rate,
                st.max_latency
            );
        }
        let a = &self.adaptive;
        let _ = writeln!(
            out,
            "adaptive misses={} rate={:.4} max_latency={} degraded_frames={} toggles={} resizes={} depth_steps={} holds={}",
            a.misses,
            a.miss_rate,
            a.max_latency,
            a.degraded_frames,
            a.counters.toggle,
            a.counters.resize,
            a.counters.step_depth,
            a.counters.hold
        );
        let best = self.best_static();
        let _ = writeln!(
            out,
            "verdict adaptive_rate={:.4} best_static={} best_static_rate={:.4}",
            a.miss_rate,
            best.config.label(),
            best.miss_rate
        );
        out
    }
}

fn action_detail(a: &Action) -> String {
    match a {
        Action::Hold => "hold".into(),
        Action::Toggle { to } => format!("toggle:{}", to.label()),
        Action::Resize { slices } => format!("resize:{slices}"),
        Action::StepDepth { depth } => format!("step_depth:{depth}"),
    }
}

/// Seeded Poisson arrival times (cycles) with periodic rate bursts —
/// the virtual-time twin of `serve::load`'s open-loop generator, fully
/// captured by the seed.
fn arrivals(spec: &ScenarioSpec, base_interval: f64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let burst_period = (spec.burst_period_frames * base_interval).max(1.0) as u64;
    let burst_len = (spec.burst_len_frames * base_interval).max(1.0) as u64;
    let mut t = 0u64;
    let mut out = Vec::with_capacity(spec.frames as usize);
    for _ in 0..spec.frames {
        let in_burst = burst_period > 0 && t % burst_period < burst_len;
        let mean = if in_burst {
            base_interval / spec.burst_factor
        } else {
            base_interval
        };
        let u: f64 = rng.gen_range(1e-12..1.0);
        t += (-u.ln() * mean).max(1.0) as u64;
        out.push(t);
    }
    out
}

/// Replay the arrival schedule through a fixed configuration.
fn run_static(arrivals: &[u64], period: u64, deadline: u64) -> (u64, u64) {
    let mut free_at = 0u64;
    let mut misses = 0u64;
    let mut max_latency = 0u64;
    for &a in arrivals {
        let start = a.max(free_at);
        let finish = start + period;
        free_at = finish;
        let latency = finish - a;
        max_latency = max_latency.max(latency);
        if latency > deadline {
            misses += 1;
        }
    }
    (misses, max_latency)
}

/// A decided actuation waiting for its effective time.
struct PendingActuation {
    effective_at: u64,
    config: CandidateConfig,
    /// Drain + respawn pause (0 for a live quality toggle).
    pause: u64,
}

/// Run the scenario: plan, replay the controller closed-loop, sweep the
/// full-quality statics over the same arrivals.
pub fn run_scenario(spec: &ScenarioSpec) -> ScenarioReport {
    assert!(spec.frames > 0 && spec.utilization > 0.0 && spec.burst_factor >= 1.0);
    let rated = rate_app(spec.app, spec.scale, &spec.lattice, spec.cores);
    // The frame budget is anchored on the best full-quality period: the
    // SLO is demanding but predicted-feasible at full quality.
    let period_full = Planner::new(rated.clone(), f64::MAX)
        .best_static_full()
        .expect("non-empty lattice")
        .period;
    let deadline = (spec.deadline_factor * period_full) as u64;
    let planner = Planner::new(rated, deadline as f64);
    let initial = match spec.initial_depth {
        Some(d) => {
            planner
                .rated()
                .iter()
                .filter(|r| r.config.quality == Quality::Full && r.config.pipeline_depth == d)
                .min_by(|a, b| a.period.total_cmp(&b.period))
                .expect("initial depth in lattice")
                .config
        }
        None => {
            planner
                .best_static_full()
                .expect("non-empty lattice")
                .config
        }
    };

    let base_interval = period_full / spec.utilization;
    let schedule = arrivals(spec, base_interval);
    let tick_cycles = ((spec.tick_frames * base_interval) as u64).max(1);

    let mut policy = SloPolicy::new(deadline);
    policy.low_watermark = spec.low_watermark;
    policy.cooldown_ticks = spec.cooldown_ticks;
    policy.min_samples = spec.min_samples;
    policy.max_backlog = 4 * spec.tick_frames as u64;
    let mut ctl = Controller::new(policy, planner.clone(), initial);

    let period_of = |c: &CandidateConfig| -> u64 {
        (planner.lookup(c).expect("config rated").period).max(1.0) as u64
    };

    let mut free_at = 0u64;
    let mut period = period_of(&initial);
    let mut live = initial; // configuration actually in force
    let mut pending: std::collections::VecDeque<PendingActuation> = Default::default();
    let mut next_tick = tick_cycles;
    let mut tick_windows = 0u64;

    let mut finishes: Vec<u64> = Vec::with_capacity(schedule.len());
    let mut latencies: Vec<u64> = Vec::with_capacity(schedule.len());
    let mut decisions: Vec<DecisionRecord> = Vec::new();
    let mut misses = 0u64;
    let mut max_latency = 0u64;
    let mut degraded_frames = 0u64;
    // Window cursor: completions already attributed to a past window.
    let mut win_done = 0usize;

    for (i, &a) in schedule.iter().enumerate() {
        let mut start = a.max(free_at);
        // Controller ticks due strictly before this service starts.
        while next_tick <= start {
            let t = next_tick;
            next_tick += tick_cycles;
            tick_windows += 1;
            // Completions inside this window (finish <= t, not yet seen).
            let mut upto = win_done;
            while upto < finishes.len() && finishes[upto] <= t {
                upto += 1;
            }
            let mut window: Vec<u64> = latencies[win_done..upto].to_vec();
            win_done = upto;
            window.sort_unstable();
            let p99 = if window.is_empty() {
                0
            } else {
                let rank = ((0.99 * window.len() as f64).ceil() as usize).max(1);
                window[rank - 1]
            };
            let arrived = schedule.partition_point(|&x| x <= t) as u64;
            let done = upto as u64;
            let obs = WindowObs {
                p99_ns: p99,
                completed: window.len() as u64,
                backlog: arrived.saturating_sub(done),
            };
            let d: Decision = ctl.observe(&obs);
            if d.action != Action::Hold {
                let lag = (live.pipeline_depth as u64) * period;
                let pause = match d.action {
                    Action::Toggle { .. } => 0,
                    _ => 2 * period_of(&d.config_after),
                };
                pending.push_back(PendingActuation {
                    effective_at: t + lag,
                    config: d.config_after,
                    pause,
                });
                decisions.push(DecisionRecord {
                    tick: d.tick,
                    time: t,
                    after_frames: done,
                    action: d.action,
                    reason: d.reason,
                    config_after: d.config_after,
                });
            }
        }
        while let Some(p) = pending.front() {
            if p.effective_at > start {
                break;
            }
            live = p.config;
            period = period_of(&live);
            free_at = free_at.max(p.effective_at) + p.pause;
            pending.pop_front();
            start = a.max(free_at);
        }
        let finish = start + period;
        free_at = finish;
        let latency = finish - a;
        max_latency = max_latency.max(latency);
        if latency > deadline {
            misses += 1;
        }
        if live.quality == Quality::Degraded {
            degraded_frames += 1;
        }
        finishes.push(finish);
        latencies.push(latency);
        let _ = i;
    }
    let _ = tick_windows;

    let statics: Vec<StaticRun> = planner
        .rated()
        .iter()
        .filter(|r| r.config.quality == Quality::Full)
        .map(|r| {
            let (m, maxl) = run_static(&schedule, r.period.max(1.0) as u64, deadline);
            StaticRun {
                config: r.config,
                period: r.period,
                misses: m,
                miss_rate: m as f64 / spec.frames as f64,
                max_latency: maxl,
            }
        })
        .collect();

    ScenarioReport {
        spec: spec.clone(),
        deadline,
        period_full,
        initial,
        arrivals: spec.frames,
        adaptive: AdaptiveRun {
            misses,
            miss_rate: misses as f64 / spec.frames as f64,
            max_latency,
            degraded_frames,
            counters: ctl.counters(),
        },
        statics,
        decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_deterministic_and_adaptive_beats_best_static() {
        let spec = ScenarioSpec::small(App::Pip12, 42);
        let a = run_scenario(&spec);
        let b = run_scenario(&spec);
        assert_eq!(a.render_replay(), b.render_replay());
        assert!(a.adaptive.counters.toggle >= 2, "bursts must drive toggles");
        assert!(a.adaptive.degraded_frames > 0);
        assert!(
            a.adaptive.degraded_frames < a.arrivals,
            "must recover quality between bursts"
        );
        let best = a.best_static();
        assert!(
            a.adaptive.misses <= best.misses,
            "adaptive {} misses vs best static {} ({})",
            a.adaptive.misses,
            best.misses,
            best.config.label()
        );
    }

    #[test]
    fn different_seeds_produce_different_schedules() {
        let a = run_scenario(&ScenarioSpec::small(App::Pip12, 1));
        let b = run_scenario(&ScenarioSpec::small(App::Pip12, 2));
        assert_ne!(a.render_replay(), b.render_replay());
    }

    #[test]
    fn every_reconfig_app_scenario_holds_the_gate() {
        for app in App::RECONFIG {
            let r = run_scenario(&ScenarioSpec::small(app, 42));
            let best = r.best_static();
            assert!(
                r.adaptive.misses <= best.misses,
                "{}: adaptive {} vs best static {}",
                app.label(),
                r.adaptive.misses,
                best.misses
            );
            assert!(r.adaptive.miss_rate <= 1.0);
        }
    }
}
