//! Closed-loop SLO adaptation for the serving runtime.
//!
//! The paper's reconfigurable applications (PiP-12, JPiP-12, Blur-35)
//! toggle quality options on a *scripted* schedule; this crate closes the
//! loop instead: a [`Controller`] watches windowed telemetry
//! ([`insight::live`] windows distilled into [`WindowObs`]) and decides —
//! with hysteresis and a cooldown — when to switch a quality option,
//! resize a data-parallel slice group, or step the pipeline depth so a
//! graph holds a configurable latency SLO. Candidate configurations are
//! rated up front by [`predict::model`]; the controller only ever
//! proposes configurations the model marks deadline-feasible.
//!
//! Everything here is deterministic by construction: the decision
//! function is a pure fold over observation windows, the
//! [`scenario`] module replays seeded bursty traffic in *virtual* time
//! (no wall clocks, no threads), and the planner's costs come from a
//! cycle-deterministic simulation profile. Two runs of the same seed
//! produce byte-identical replay logs — `scripts/ci.sh` diffs them.
//!
//! See `docs/ADAPTATION.md` for the control loop, policy format and
//! determinism guarantees.

pub mod controller;
pub mod plan;
pub mod policy;
pub mod scenario;

pub use controller::{Controller, DecisionCounters, WindowObs};
pub use plan::{Lattice, Planner, RatedConfig};
pub use policy::{Action, CandidateConfig, Decision, Quality, SloPolicy};
pub use scenario::{
    run_scenario, AdaptiveRun, DecisionRecord, ScenarioReport, ScenarioSpec, StaticRun,
};
