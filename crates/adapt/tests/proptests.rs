//! Property layer for the SLO controller and the scenario harness.
//!
//! Three controller properties over synthetic planners and random window
//! sequences — stability (same windows → same decisions), cooldown
//! discipline, and predict-feasibility of every proposal — plus a seeded
//! end-to-end property that the bursty-replay scenario renders
//! byte-identically across two runs in the same process. (The cross-
//! process two-run diff lives in `scripts/ci.sh`.)

use adapt::{
    Action, CandidateConfig, Controller, Planner, Quality, RatedConfig, ScenarioSpec, SloPolicy,
    WindowObs,
};
use apps::App;
use proptest::collection::vec;
use proptest::prelude::*;

/// The fixed config grid the synthetic planner rates: 2 qualities × 3
/// slice counts × 3 depths.
fn grid() -> Vec<CandidateConfig> {
    let mut out = Vec::new();
    for quality in [Quality::Degraded, Quality::Full] {
        for slices in [2usize, 4, 8] {
            for pipeline_depth in [1usize, 2, 3] {
                out.push(CandidateConfig {
                    quality,
                    slices,
                    pipeline_depth,
                });
            }
        }
    }
    out
}

/// Build a planner from sampled per-config periods and a deadline.
/// `Planner::new` recomputes feasibility from the deadline, so the
/// sampled `feasible` seed value is irrelevant.
fn planner_from(periods: &[u32], deadline: u32) -> Planner {
    let rated: Vec<RatedConfig> = grid()
        .into_iter()
        .zip(periods.iter())
        .map(|(config, &p)| RatedConfig {
            config,
            period: p as f64 + 1.0,
            feasible: false,
        })
        .collect();
    Planner::new(rated, deadline as f64 + 1.0)
}

fn policy_from(target: u64, cooldown: u32, min_samples: u64, max_backlog: u64) -> SloPolicy {
    let mut p = SloPolicy::new(target);
    p.cooldown_ticks = cooldown;
    p.min_samples = min_samples;
    p.max_backlog = max_backlog;
    p
}

fn obs_from(raw: &[(u64, u64, u64)]) -> Vec<WindowObs> {
    raw.iter()
        .map(|&(p99_ns, completed, backlog)| WindowObs {
            p99_ns,
            completed,
            backlog,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    // Same planner, same policy, same window sequence → the two
    // controllers emit identical decision sequences and end in
    // identical states. The decision function is a pure fold.
    #[test]
    fn decision_function_is_stable(
        periods in vec(1u32..5_000, 18..19),
        deadline in 1u32..5_000,
        target in 100u64..10_000,
        cooldown in 0u32..4,
        start in 0usize..18,
        raw in vec((0u64..20_000, 0u64..20, 0u64..12), 1..40),
    ) {
        let windows = obs_from(&raw);
        let initial = grid()[start];
        let mk = || Controller::new(
            policy_from(target, cooldown, 2, 8),
            planner_from(&periods, deadline),
            initial,
        );
        let (mut a, mut b) = (mk(), mk());
        for w in &windows {
            prop_assert_eq!(a.observe(w), b.observe(w));
        }
        prop_assert_eq!(a.current(), b.current());
        prop_assert_eq!(a.counters(), b.counters());
    }

    // After any actuation the next `cooldown_ticks` decisions are Hold,
    // whatever the windows look like.
    #[test]
    fn cooldown_is_respected(
        periods in vec(1u32..5_000, 18..19),
        deadline in 1u32..5_000,
        target in 100u64..10_000,
        cooldown in 1u32..5,
        start in 0usize..18,
        raw in vec((0u64..20_000, 0u64..20, 0u64..12), 1..60),
    ) {
        let windows = obs_from(&raw);
        let mut c = Controller::new(
            policy_from(target, cooldown, 2, 8),
            planner_from(&periods, deadline),
            grid()[start],
        );
        let mut quiet_until = 0u64; // ticks that must Hold
        for w in &windows {
            let d = c.observe(w);
            if quiet_until > 0 {
                prop_assert_eq!(
                    d.action, Action::Hold,
                    "actuated inside cooldown at tick {}", d.tick
                );
                quiet_until -= 1;
            } else if d.action != Action::Hold {
                quiet_until = cooldown as u64;
            }
        }
    }

    // Every non-Hold decision lands on a configuration the planner
    // marks deadline-feasible: the controller never proposes a config
    // `predict::model` rejects.
    #[test]
    fn only_feasible_configs_are_proposed(
        periods in vec(1u32..5_000, 18..19),
        deadline in 1u32..5_000,
        target in 100u64..10_000,
        start in 0usize..18,
        raw in vec((0u64..20_000, 0u64..20, 0u64..12), 1..60),
    ) {
        let windows = obs_from(&raw);
        let planner = planner_from(&periods, deadline);
        let mut c = Controller::new(
            policy_from(target, 0, 2, 8),
            planner.clone(),
            grid()[start],
        );
        for w in &windows {
            let d = c.observe(w);
            if d.action != Action::Hold {
                prop_assert!(
                    planner.feasible(&d.config_after),
                    "tick {}: proposed infeasible {}", d.tick, d.config_after.label()
                );
            }
        }
    }
}

proptest! {
    // The end-to-end scenario runs a calibration sim per (app, scale) —
    // cached — and a 480-frame virtual-time simulation per run; keep the
    // case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The bursty-replay scenario is byte-deterministic in its seed: two
    // runs render identical replay transcripts, decision for decision.
    #[test]
    fn scenario_replay_is_byte_deterministic(seed in 0u64..1 << 32) {
        let spec = ScenarioSpec::small(App::Pip12, seed);
        let a = adapt::run_scenario(&spec);
        let b = adapt::run_scenario(&spec);
        prop_assert_eq!(a.render_replay(), b.render_replay());
        prop_assert_eq!(a.decisions.len(), b.decisions.len());
        prop_assert_eq!(a.adaptive.misses, b.adaptive.misses);
    }
}
